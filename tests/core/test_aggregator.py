"""Tests for the Aggregator interface machinery."""

import numpy as np
import pytest

from repro.baselines.average import Average
from repro.core.aggregator import AggregationResult, Aggregator
from repro.core.krum import Krum
from repro.exceptions import ByzantineToleranceError, DimensionMismatchError


class TestAggregatorInterface:
    def test_call_is_aggregate(self, honest_cloud):
        rule = Average()
        np.testing.assert_array_equal(rule(honest_cloud), rule.aggregate(honest_cloud))

    def test_detailed_vector_matches_aggregate(self, honest_cloud):
        rule = Krum(f=3)
        detailed = rule.aggregate_detailed(honest_cloud)
        np.testing.assert_array_equal(detailed.vector, rule.aggregate(honest_cloud))

    def test_default_result_has_empty_selection(self, honest_cloud):
        result = Average().aggregate_detailed(honest_cloud)
        assert result.selected.size == 0
        assert result.scores is None

    def test_rejects_1d_input(self):
        with pytest.raises(DimensionMismatchError):
            Average().aggregate(np.ones(4))

    def test_repr_contains_name(self):
        assert "krum" in repr(Krum(f=1))

    def test_base_check_tolerance_rejects_zero(self):
        class Dummy(Aggregator):
            def aggregate_detailed(self, vectors):
                vectors = self._validated(vectors)
                return AggregationResult(vector=vectors[0])

        with pytest.raises(ByzantineToleranceError):
            Dummy().check_tolerance(0)


class TestAggregationResult:
    def test_defaults(self):
        result = AggregationResult(vector=np.ones(3))
        assert result.selected.size == 0
        assert result.scores is None
