"""The Figure 2 collusion attack against the "closest to all" rule.

The distance-based rule selects the proposal minimizing
``Σ_j ‖U − V_j‖²``, which algebraically equals
``n·‖U − barycenter‖² + const`` — so it always selects the proposal
*closest to the barycenter of all proposals*.  With f ≥ 2 colluders:
f − 1 of them park decoys in an arbitrarily remote area B, dragging the
barycenter toward B, and the remaining one proposes a "trojan" placed
exactly at the resulting barycenter.  The trojan wins the selection no
matter how far B is, so the adversary steers the server arbitrarily.

Krum defeats this because the decoys (and, for large displacement, the
trojan itself) are excluded from every correct proposal's n − f − 2
nearest neighbours.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.exceptions import ByzantineToleranceError, ConfigurationError
from repro.utils.rng import as_generator

__all__ = ["CollusionAttack"]


class CollusionAttack(Attack):
    """Figure 2: f − 1 remote decoys plus one barycenter trojan.

    Parameters
    ----------
    decoy_distance:
        How far (in units of the honest proposals' spread) the decoy
        cluster sits from the honest barycenter.  The lemma's point is
        that the attack works for *any* distance.
    direction_seed:
        The decoy direction is a fixed random unit vector so the attack
        is deterministic given the seed (colluders agree on it offline).
    against_gradient:
        When true, the colluders aim the decoys at the *negative* of the
        (estimated) true gradient instead of a random direction, so the
        selected trojan also reverses the descent direction — the
        strongest form of the Figure 2 attack.
    """

    def __init__(
        self,
        decoy_distance: float = 100.0,
        direction_seed: int = 7,
        *,
        against_gradient: bool = False,
    ):
        if decoy_distance <= 0:
            raise ConfigurationError(
                f"decoy_distance must be positive, got {decoy_distance}"
            )
        self.decoy_distance = float(decoy_distance)
        self.direction_seed = int(direction_seed)
        self.against_gradient = bool(against_gradient)
        self.name = f"collusion(R={self.decoy_distance:g})"

    def craft(self, context: AttackContext) -> np.ndarray:
        f = context.num_byzantine
        if f < 2:
            raise ByzantineToleranceError(
                f"the Figure 2 collusion needs f >= 2, got f={f}",
                n=context.num_workers,
                f=f,
            )
        if self.against_gradient:
            gradient = (
                context.true_gradient
                if context.true_gradient is not None
                else context.honest_mean
            )
            direction = -np.asarray(gradient, dtype=np.float64)
        else:
            direction_rng = as_generator(self.direction_seed)
            direction = direction_rng.standard_normal(context.dimension)
        norm = float(np.linalg.norm(direction))
        if norm < 1e-30:
            direction = np.zeros(context.dimension)
            direction[0] = 1.0
        else:
            direction = direction / norm

        honest = context.honest_gradients
        honest_mean = context.honest_mean
        spread = float(np.mean(np.linalg.norm(honest - honest_mean, axis=1)))
        scale = max(spread, 1e-12) * self.decoy_distance
        decoy = honest_mean + scale * direction

        n = context.num_workers
        # Trojan T solves T = (Σ honest + (f−1)·decoy + T) / n  restricted
        # to the candidate set: place it at the barycenter of the OTHER
        # n − 1 proposals; then T is strictly the proposal closest to the
        # overall barycenter, so closest-to-all must select it.
        others_sum = honest.sum(axis=0) + (f - 1) * decoy
        trojan = others_sum / (n - 1)

        proposals = np.tile(decoy, (f, 1))
        proposals[-1] = trojan
        return self._output(context, proposals)
