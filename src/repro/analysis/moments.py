"""Monte-Carlo moment estimation for condition (ii) of Definition 3.2."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError

__all__ = ["empirical_norm_moments"]


def empirical_norm_moments(
    samples: np.ndarray, orders: tuple[int, ...] = (2, 3, 4)
) -> dict[int, float]:
    """Estimate ``E‖X‖^r`` for each order r from an ``(m, d)`` sample stack.

    Definition 3.2's condition (ii) bounds the choice function's moments
    of orders 2–4 by homogeneous polynomials in the moments of the
    correct estimator G; the resilience checker compares the two sides
    estimated by this function.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2:
        raise DimensionMismatchError(
            f"samples must be (m, d), got shape {samples.shape}"
        )
    if samples.shape[0] < 1:
        raise ConfigurationError("need at least one sample")
    if any(r < 1 for r in orders):
        raise ConfigurationError(f"moment orders must be >= 1, got {orders}")
    norms = np.linalg.norm(samples, axis=1)
    return {int(r): float(np.mean(norms ** r)) for r in orders}
