"""The flawed distance-based rule of Figure 2.

Selecting the proposal that minimizes the sum of squared distances to
*all* other proposals looks robust but tolerates only one Byzantine
worker: f − 1 colluders park far-away decoys that drag the barycenter,
and a final Byzantine proposal sitting near that barycenter wins the
selection (Figure 2 of the paper).  Krum fixes this by summing only over
the n − f − 2 nearest neighbours.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregator import SelectionAggregator
from repro.utils.linalg import pairwise_sq_distances

__all__ = ["ClosestToAll"]


class ClosestToAll(SelectionAggregator):
    """Select ``argmin_i Σ_j ‖V_i − V_j‖²`` over all proposals."""

    name = "closest-to-all"

    def select(self, vectors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        distances = pairwise_sq_distances(vectors, nonfinite_as_inf=True)
        scores = distances.sum(axis=1)
        winner = int(np.argmin(scores))
        return np.array([winner], dtype=np.int64), scores
