"""Tests for the mini-batch gradient estimator."""

import numpy as np
import pytest

from repro.data.synthetic import make_linear_regression
from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.gradients.minibatch import MinibatchEstimator
from repro.models.linear import LinearRegressionModel


@pytest.fixture
def setup():
    dataset, _params = make_linear_regression(200, num_features=4, noise=0.1, seed=0)
    model = LinearRegressionModel(4)
    return model, dataset


class TestMinibatchEstimator:
    def test_dimension(self, setup):
        model, dataset = setup
        est = MinibatchEstimator(model, dataset.inputs, dataset.targets, batch_size=16)
        assert est.dimension == 5

    def test_unbiased_for_full_shard_gradient(self, setup, rng):
        model, dataset = setup
        est = MinibatchEstimator(model, dataset.inputs, dataset.targets, batch_size=8)
        params = rng.standard_normal(5)
        samples = np.stack([est.estimate(params, rng) for _ in range(3000)])
        np.testing.assert_allclose(
            samples.mean(axis=0), est.expected(params), atol=0.1
        )

    def test_full_batch_has_low_variance(self, setup, rng):
        model, dataset = setup
        small = MinibatchEstimator(model, dataset.inputs, dataset.targets, batch_size=4)
        large = MinibatchEstimator(
            model, dataset.inputs, dataset.targets, batch_size=128
        )
        params = rng.standard_normal(5)
        sigma_small = small.empirical_sigma(params, rng, num_samples=300)
        sigma_large = large.empirical_sigma(params, rng, num_samples=300)
        assert sigma_large < sigma_small

    def test_batch_variance_scales_inversely(self, setup, rng):
        # Var of a mean of B i.i.d. samples ~ 1/B.
        model, dataset = setup
        params = rng.standard_normal(5)
        sigmas = {}
        for batch in (4, 16, 64):
            est = MinibatchEstimator(
                model, dataset.inputs, dataset.targets, batch_size=batch
            )
            sigmas[batch] = est.empirical_sigma(params, rng, num_samples=400)
        assert sigmas[4] / sigmas[16] == pytest.approx(2.0, rel=0.35)
        assert sigmas[16] / sigmas[64] == pytest.approx(2.0, rel=0.35)

    def test_deterministic_given_rng(self, setup):
        model, dataset = setup
        est = MinibatchEstimator(model, dataset.inputs, dataset.targets, batch_size=8)
        params = np.zeros(5)
        a = est.estimate(params, np.random.default_rng(3))
        b = est.estimate(params, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_rejects_empty_shard(self, setup):
        model, _dataset = setup
        with pytest.raises(ConfigurationError):
            MinibatchEstimator(model, np.zeros((0, 4)), np.zeros(0), batch_size=4)

    def test_rejects_length_mismatch(self, setup):
        model, dataset = setup
        with pytest.raises(DimensionMismatchError):
            MinibatchEstimator(
                model, dataset.inputs, dataset.targets[:-1], batch_size=4
            )

    def test_rejects_bad_batch_size(self, setup):
        model, dataset = setup
        with pytest.raises(ConfigurationError):
            MinibatchEstimator(model, dataset.inputs, dataset.targets, batch_size=0)
