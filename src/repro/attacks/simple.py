"""Simple failure-mode attacks: sign flips, crashes, stragglers.

These model the non-malicious Byzantine sources the introduction lists —
"stalled processes, or biases in the way the data samples are
distributed" — plus the classic adversarial sign flip.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.exceptions import ConfigurationError

__all__ = ["SignFlipAttack", "CrashAttack", "StragglerAttack", "NonFiniteAttack"]


class SignFlipAttack(Attack):
    """Send ``−scale ×`` the (estimated) true gradient.

    Uses the exact gradient when the context exposes it, otherwise the
    honest barycenter — the omniscient adversary's best estimator.
    """

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.scale = float(scale)
        self.name = f"sign-flip(scale={self.scale:g})"

    def craft(self, context: AttackContext) -> np.ndarray:
        gradient = (
            context.true_gradient
            if context.true_gradient is not None
            else context.honest_mean
        )
        flipped = -self.scale * np.asarray(gradient, dtype=np.float64)
        return self._output(
            context, np.tile(flipped, (context.num_byzantine, 1))
        )


class CrashAttack(Attack):
    """Stalled process: the worker contributes an all-zero vector.

    In a synchronous parameter server a crashed worker's slot is either
    dropped or zero-filled; zero-filling is the adversarially *mildest*
    Byzantine behaviour and still biases a linear aggregate toward zero
    (slowing convergence by a factor n/(n−f)).
    """

    name = "crash"

    def craft(self, context: AttackContext) -> np.ndarray:
        return self._output(
            context,
            np.zeros((context.num_byzantine, context.dimension)),
        )


class NonFiniteAttack(Attack):
    """Computation error: the worker sends NaN/Inf coordinates.

    The crudest real-world Byzantine failure (bit flips, overflow bugs,
    uninitialized buffers).  A linear aggregate is destroyed instantly —
    one NaN poisons the mean — while distance-filtering rules treat the
    proposal as infinitely far and ignore it.
    """

    def __init__(self, value: float = float("nan")):
        if np.isfinite(value):
            raise ConfigurationError(
                f"NonFiniteAttack needs NaN or +/-Inf, got {value}"
            )
        self.value = float(value)
        self.name = f"non-finite({self.value})"

    def craft(self, context: AttackContext) -> np.ndarray:
        return self._output(
            context,
            np.full((context.num_byzantine, context.dimension), self.value),
        )


class StragglerAttack(Attack):
    """Stale gradients: replay the honest barycenter from ``delay`` rounds ago.

    Models workers that lag behind the broadcast round counter.  The
    replayed vector is stale but not adversarial, so robust rules should
    tolerate it; plain averaging merely slows down.
    """

    stateful = True

    def __init__(self, delay: int = 5):
        if delay < 1:
            raise ConfigurationError(f"delay must be >= 1, got {delay}")
        self.delay = int(delay)
        self.name = f"straggler(delay={self.delay})"
        self._history: list[np.ndarray] = []

    def craft(self, context: AttackContext) -> np.ndarray:
        self._history.append(context.honest_mean.copy())
        if len(self._history) > self.delay + 1:
            self._history.pop(0)
        stale = self._history[0]
        return self._output(context, np.tile(stale, (context.num_byzantine, 1)))

    def reset(self) -> None:
        """Clear replay history (call between independent runs)."""
        self._history.clear()
