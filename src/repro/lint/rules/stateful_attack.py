"""stateful-attack-declaration: per-round attack state must be declared.

The PR 6 reuse bug: an attack that accumulates instance state inside
``craft`` (a round counter, a learned amplitude, cached observations)
silently poisons the next run when the same instance is reused — unless
it declares ``stateful = True`` (so the batched engine can refuse to
share one instance across scenarios) and overrides ``reset()`` (so
sequential reuse starts clean).  This rule finds ``Attack`` and
``ServerAttack`` subclasses (worker-side and server-side attacks share
the contract) that write ``self.*`` outside ``__init__``/``reset`` and
checks both declarations are present — on the class or an in-module
ancestor.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.base import LintRule, ModuleContext
from repro.lint.findings import Finding

__all__ = ["StatefulAttackRule"]

#: Methods whose ``self.*`` writes are per-run *setup*, not per-round
#: state: construction and the sanctioned reset hook itself.
_SETUP_METHODS = frozenset({"__init__", "__post_init__", "reset"})


def _base_names(node: ast.ClassDef) -> set[str]:
    names = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


#: Root classes whose subclasses carry the stateful/reset contract:
#: worker-side attacks and server-side broadcast attacks.
_ATTACK_ROOTS = frozenset({"Attack", "ServerAttack"})


def _attack_classes(tree: ast.Module) -> dict[str, ast.ClassDef]:
    """Classes deriving (transitively, by name, within the module) from
    ``Attack`` or ``ServerAttack``."""
    classes = {
        node.name: node
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    }
    attacks: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, node in classes.items():
            if name in attacks:
                continue
            bases = _base_names(node)
            if bases & _ATTACK_ROOTS or bases & attacks:
                attacks.add(name)
                changed = True
    return {name: classes[name] for name in attacks}


def _self_writes(method: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Instance attributes the method assigns (plain, augmented or
    annotated assignment, including tuple-unpacking targets)."""
    written: set[str] = set()

    def collect(target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect(element)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            written.add(target.attr)

    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                collect(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            collect(node.target)
    return written


def _declares_stateful(node: ast.ClassDef) -> bool:
    for statement in node.body:
        targets: list[ast.expr] = []
        value = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign):
            targets, value = [statement.target], statement.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "stateful"
                and isinstance(value, ast.Constant)
                and value.value is True
            ):
                return True
    return False


def _defines_reset(node: ast.ClassDef) -> bool:
    return any(
        isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        and statement.name == "reset"
        for statement in node.body
    )


def _ancestry(
    node: ast.ClassDef, classes: dict[str, ast.ClassDef]
) -> list[ast.ClassDef]:
    """The class plus its in-module ancestors (name-resolved, cycle-safe)."""
    chain: list[ast.ClassDef] = []
    seen: set[str] = set()
    frontier = [node]
    while frontier:
        current = frontier.pop()
        if current.name in seen:
            continue
        seen.add(current.name)
        chain.append(current)
        for base in _base_names(current):
            if base in classes:
                frontier.append(classes[base])
    return chain


class StatefulAttackRule(LintRule):
    """Attacks with craft-time instance state declare stateful + reset."""

    name = "stateful-attack-declaration"
    description = (
        "Attack/ServerAttack subclasses that write instance state outside "
        "__init__/reset must set stateful = True and override reset()"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        attacks = _attack_classes(module.tree)
        for node in attacks.values():
            writes: dict[str, set[str]] = {}
            for statement in node.body:
                if (
                    isinstance(
                        statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    and statement.name not in _SETUP_METHODS
                ):
                    written = _self_writes(statement)
                    if written:
                        writes[statement.name] = written
            if not writes:
                continue
            chain = _ancestry(node, attacks)
            has_stateful = any(_declares_stateful(cls) for cls in chain)
            has_reset = any(_defines_reset(cls) for cls in chain)
            detail = "; ".join(
                f"{method} writes self.{{{', '.join(sorted(attrs))}}}"
                for method, attrs in sorted(writes.items())
            )
            if not has_stateful:
                yield self.finding(
                    module,
                    node,
                    f"attack {node.name!r} carries per-round instance state "
                    f"({detail}) but does not declare stateful = True — "
                    f"reused instances would leak state across runs "
                    f"(the PR 6 reuse bug)",
                )
            if not has_reset:
                yield self.finding(
                    module,
                    node,
                    f"attack {node.name!r} carries per-round instance state "
                    f"({detail}) but does not override reset() — "
                    f"sequential reuse cannot start clean",
                )
