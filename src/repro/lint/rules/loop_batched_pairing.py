"""loop-batched-pairing: paired kernels share masked linalg primitives.

The batched executor is only trusted because every native
``BatchedAggregator`` kernel is bit-for-bit equivalent to its
per-scenario rule.  That equivalence is not an accident of testing — it
is engineered by routing both sides through the *same* masked primitive
in ``repro/utils/linalg.py`` (``pairwise_sq_distances`` /
``batched_pairwise_sq_distances``, ``batched_weiszfeld``'s masked
helpers, ...).  A kernel that reimplements its math inline can drift
from its rule one refactor later and the differential tests become the
only line of defense.

For each ``register_batched_kernel(RuleCls, KernelCls)`` pairing this
rule walks the project call graph from all methods of both classes
(ancestors included, so shared mixin helpers count) and collects the
``repro/utils/linalg.py`` functions each side reaches.  Primitive names
are folded into *families* by stripping the ``batched_`` prefix, so
``pairwise_sq_distances`` and ``batched_pairwise_sq_distances`` pair up.
A pairing passes when both sides reach no linalg primitive at all
(pure-``xp`` kernels like the mean/median family) or when their family
sets intersect; reaching disjoint families is a finding at the
registration call.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.base import ProjectRule
from repro.lint.findings import Finding
from repro.lint.project import ProjectContext, SymbolKey

__all__ = ["LoopBatchedPairingRule"]

_PRIMITIVE_MODULE = "repro/utils/linalg.py"
_REGISTER = "register_batched_kernel"
_BATCHED_PREFIX = "batched_"


def _family(primitive: str) -> str:
    if primitive.startswith(_BATCHED_PREFIX):
        return primitive[len(_BATCHED_PREFIX) :]
    return primitive


class LoopBatchedPairingRule(ProjectRule):
    """Paired loop rules and batched kernels share linalg primitives."""

    name = "loop-batched-pairing"
    description = (
        "every register_batched_kernel(RuleCls, KernelCls) pairing "
        "reaches a shared masked primitive family in utils/linalg.py "
        "from both sides (or neither side uses linalg at all)"
    )

    def __init__(
        self,
        primitive_module: str = _PRIMITIVE_MODULE,
        register_name: str = _REGISTER,
    ):
        self.primitive_module = primitive_module
        self.register_name = register_name

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            module_name = project.module_name(module)
            for call in ast.walk(module.tree):
                if not (
                    isinstance(call, ast.Call)
                    and self._is_register(call.func)
                    and len(call.args) >= 2
                ):
                    continue
                pair = [
                    self._resolve_class(project, module_name, arg)
                    for arg in call.args[:2]
                ]
                if pair[0] is None or pair[1] is None:
                    continue  # dynamic registration: nothing provable
                rule_key, kernel_key = pair
                rule_fams = self._reached_families(project, rule_key)
                kernel_fams = self._reached_families(project, kernel_key)
                if not rule_fams and not kernel_fams:
                    continue  # pure array-API pair (mean/median family)
                if rule_fams & kernel_fams:
                    continue
                findings.append(
                    self.project_finding(
                        module.path,
                        call,
                        f"{rule_key[1]} and {kernel_key[1]} are registered "
                        f"as a loop/batched pair but reach no shared "
                        f"linalg primitive family: the rule reaches "
                        f"{self._describe(rule_fams)} while the kernel "
                        f"reaches {self._describe(kernel_fams)} — route "
                        f"both through the same masked primitive in "
                        f"utils/linalg.py so they cannot drift apart",
                    )
                )
        return sorted(findings, key=Finding.sort_key)

    def _is_register(self, func: ast.expr) -> bool:
        if isinstance(func, ast.Name):
            return func.id == self.register_name
        if isinstance(func, ast.Attribute):
            return func.attr == self.register_name
        return False

    def _resolve_class(
        self, project: ProjectContext, module_name: str, arg: ast.expr
    ) -> SymbolKey | None:
        if not isinstance(arg, ast.Name):
            return None
        resolved = project.resolve(module_name, arg.id)
        if resolved is None or resolved[0] != "class":
            return None
        return resolved[1]

    def _reached_families(
        self, project: ProjectContext, class_key: SymbolKey
    ) -> set[str]:
        starts: list[SymbolKey] = list(
            project.methods_of(class_key, include_ancestors=True)
        )
        starts.append(class_key)  # constructors via class-node expansion
        families: set[str] = set()
        for key in project.reachable_from(starts):
            info = project.functions.get(key)
            if info is None:
                continue
            if info.module.is_module(self.primitive_module):
                families.add(_family(key[1].rsplit(".", 1)[-1]))
        return families

    @staticmethod
    def _describe(families: set[str]) -> str:
        if not families:
            return "no linalg primitive"
        return "{" + ", ".join(sorted(families)) + "}"
