"""Hypothesis property tests for the linear-algebra kernel."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.linalg import (
    flatten_arrays,
    pairwise_sq_distances,
    unflatten_array,
)

matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 10), st.integers(1, 8)),
    elements=st.floats(min_value=-1e8, max_value=1e8, allow_nan=False),
)


class TestPairwiseDistanceProperties:
    @given(matrices)
    @settings(max_examples=60, deadline=None)
    def test_non_negative_symmetric_zero_diagonal(self, vectors):
        distances = pairwise_sq_distances(vectors)
        assert np.all(distances >= 0)
        np.testing.assert_allclose(distances, distances.T, rtol=1e-7, atol=1e-4)
        np.testing.assert_array_equal(np.diag(distances), 0.0)

    @given(matrices)
    @settings(max_examples=40, deadline=None)
    def test_matches_norm_definition(self, vectors):
        distances = pairwise_sq_distances(vectors)
        n = len(vectors)
        i, j = 0, n - 1
        expected = float(np.sum((vectors[i] - vectors[j]) ** 2))
        # The GEMM formulation loses precision at large magnitudes;
        # tolerance scales with the squared magnitudes involved.
        scale = max(1.0, np.max(np.abs(vectors)) ** 2)
        assert abs(distances[i, j] - expected) <= 1e-7 * scale

    @given(matrices, st.floats(min_value=-1e3, max_value=1e3, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_translation_invariance(self, vectors, shift):
        original = pairwise_sq_distances(vectors)
        translated = pairwise_sq_distances(vectors + shift)
        scale = max(1.0, np.max(np.abs(vectors)) ** 2, shift**2)
        np.testing.assert_allclose(
            original, translated, atol=1e-6 * scale, rtol=1e-6
        )


class TestFlattenProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(1, 4)),
            min_size=1,
            max_size=5,
        ),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_any_shapes(self, shapes, pyrandom):
        rng = np.random.default_rng(pyrandom.randint(0, 2**31))
        arrays = [rng.standard_normal(s) for s in shapes]
        flat, recorded = flatten_arrays(arrays)
        restored = unflatten_array(flat, recorded)
        assert len(restored) == len(arrays)
        for original, back in zip(arrays, restored):
            np.testing.assert_array_equal(original, back)
