"""Tests for the post-2017 extension attacks."""

import numpy as np
import pytest

from repro.attacks.modern import InnerProductAttack, LittleIsEnoughAttack
from repro.core.krum import Krum
from repro.exceptions import ConfigurationError
from tests.attacks.test_base import make_context


class TestLittleIsEnough:
    def test_explicit_z(self, rng):
        ctx = make_context(rng, num_honest=20, num_byzantine=5)
        out = LittleIsEnoughAttack(z=1.5).craft(ctx)
        expected = ctx.honest_mean - 1.5 * ctx.honest_gradients.std(axis=0)
        np.testing.assert_allclose(out, np.tile(expected, (5, 1)))

    def test_auto_z_positive(self, rng):
        ctx = make_context(rng, num_honest=20, num_byzantine=5)
        out = LittleIsEnoughAttack().craft(ctx)
        assert np.all(np.isfinite(out))

    def test_stays_near_honest_cloud(self, rng):
        """The attack's point: the crafted vector is NOT an outlier."""
        ctx = make_context(rng, num_honest=20, num_byzantine=5)
        out = LittleIsEnoughAttack(z=1.0).craft(ctx)
        spread = np.linalg.norm(ctx.honest_gradients - ctx.honest_mean, axis=1).max()
        assert np.linalg.norm(out[0] - ctx.honest_mean) < 3 * spread

    def test_can_fool_krum_selection(self):
        """With enough colluders, the crafted point wins Krum's score —
        the known limitation this attack exploits."""
        wins = 0
        trials = 20
        for t in range(trials):
            trial_rng = np.random.default_rng(t)
            ctx = make_context(
                trial_rng, num_honest=15, num_byzantine=7, dimension=10
            )
            out = LittleIsEnoughAttack(z=0.3).craft(ctx)
            stack = np.vstack([ctx.honest_gradients, out])
            result = Krum(f=7).aggregate_detailed(stack)
            if int(result.selected[0]) >= 15:
                wins += 1
        # f identical colluding vectors distance 0 from each other: they
        # dominate the score ranking in most trials.
        assert wins > trials // 2

    def test_rejects_bad_z(self):
        with pytest.raises(ConfigurationError):
            LittleIsEnoughAttack(z=-1.0)


class TestInnerProduct:
    def test_negative_epsilon_mean(self, rng):
        ctx = make_context(rng)
        out = InnerProductAttack(epsilon=0.5).craft(ctx)
        np.testing.assert_allclose(out[0], -0.5 * ctx.honest_mean)

    def test_norm_comparable_to_honest(self, rng):
        ctx = make_context(rng)
        out = InnerProductAttack(epsilon=1.0).craft(ctx)
        honest_norm = np.linalg.norm(ctx.honest_mean)
        assert np.linalg.norm(out[0]) == pytest.approx(honest_norm, rel=1e-9)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            InnerProductAttack(epsilon=0.0)
