"""Engine bench — batched scenario-grid vs per-scenario loop.

Runs the same 128-cell grid (4 seeds × 2 attacks × 8 aggregators × 2 f
values; n = 20 workers, d = 1000, 100 rounds — the scale of the paper's
figure grids) through both executors:

* ``loop``    — one :class:`~repro.distributed.TrainingSimulation` per
  cell, the seed code's execution model;
* ``batched`` — all cells stacked into ``(B, n, d)`` tensors by
  :class:`~repro.engine.BatchedSimulation`.

The aggregator axis covers every rule with a vectorized kernel,
including the two that used to take the per-scenario loop fallback
inside the engine: Bulyan (iterated committee selection) and the
geometric median (batched Weiszfeld).  The f sweep is (3, 4) because
Bulyan requires ``n >= 4f + 3`` and the grid runs n = 20.

Asserts the batched engine is ≥ 3× faster, trajectory-identical
(bit-for-bit final parameters and per-round records for every cell),
and fully native (no cell silently regressed to the loop fallback),
then writes the measurement to ``BENCH_engine.json`` at the repo root.

Standalone usage (CI smoke / regenerating the JSON)::

    PYTHONPATH=src python benchmarks/bench_engine_grid.py          # full grid
    PYTHONPATH=src python benchmarks/bench_engine_grid.py --smoke  # tiny grid
    PYTHONPATH=src python benchmarks/bench_engine_grid.py --smoke \\
        --output BENCH_engine.smoke.json   # CI artifact
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

from repro.engine import ScenarioGrid, run_grid
from repro.experiments.reporting import format_table

try:
    from benchmarks.conftest import emit, run_once
except ImportError:  # executed as a script: python benchmarks/bench_engine_grid.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import emit, run_once

MIN_SPEEDUP = 3.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _grid(
    *, seeds=(0, 1, 2, 3), num_rounds=100, dimension=1000
) -> ScenarioGrid:
    return ScenarioGrid(
        seeds=seeds,
        attacks=(
            ("gaussian", {"sigma": 200.0}),
            ("omniscient", {"scale": 10.0}),
        ),
        aggregators=(
            ("krum", {}),
            ("multi-krum", {"m": 5}),
            ("average", {}),
            ("closest-to-all", {}),
            ("coordinate-median", {}),
            ("trimmed-mean", {}),
            ("bulyan", {}),
            ("geometric-median", {}),
        ),
        f_values=(3, 4),  # bulyan needs n >= 4f + 3 with n = 20
        num_workers=20,
        dimension=dimension,
        sigma=0.5,
        num_rounds=num_rounds,
        learning_rate=0.1,
        lr_timescale=100.0,
    )


def _identical_trajectories(loop_result, batched_result) -> bool:
    for label in loop_result.histories:
        if (
            loop_result.final_params[label].tobytes()
            != batched_result.final_params[label].tobytes()
        ):
            return False
        loop_history = loop_result.histories[label]
        batched_history = batched_result.histories[label]
        if len(loop_history) != len(batched_history):
            return False
        if any(a != b for a, b in zip(loop_history, batched_history)):
            return False
    return True


def _native_kernels(grid: ScenarioGrid) -> dict[str, bool]:
    """Whether each aggregator axis entry runs through a vectorized
    kernel — the reference grid is expected to be fully native, so any
    ``False`` here is a batched-path regression.  Rules are rebuilt from
    the grid's resolved cells, so every (rule, f) configuration the grid
    actually runs is checked."""
    from repro.core.batched import make_batched_aggregator
    from repro.core.registry import make_aggregator

    out: dict[str, bool] = {}
    for spec in grid.scenarios():
        rule = make_aggregator(spec.aggregator, **spec.aggregator_kwargs)
        native = make_batched_aggregator(rule).is_native
        out[spec.aggregator] = out.get(spec.aggregator, True) and native
    return out


def _torch_column(grid: ScenarioGrid, loop_result) -> dict | None:
    """Run the batched grid on the torch backend when it is importable.

    Returns ``None`` on a torch-less install — the JSON then simply has
    no torch column.  Parity is reported as the max final-parameter
    deviation from the loop trajectories (the torch backend promises
    float64-tolerance agreement, not bit-for-bit identity).
    """
    from repro.backend import backend_installed

    if not backend_installed("torch"):
        return None
    torch_result = run_grid(grid, mode="batched", eval_every=25, backend="torch")
    deviation = max(
        float(
            abs(
                loop_result.final_params[label]
                - torch_result.final_params[label]
            ).max()
        )
        for label in loop_result.histories
    )
    return {
        "backend": torch_result.backend,
        "batched_seconds": round(torch_result.wall_time, 4),
        "speedup_vs_loop": round(
            loop_result.wall_time / max(torch_result.wall_time, 1e-12), 2
        ),
        "native_fraction": torch_result.native_fraction,
        "max_final_param_deviation": deviation,
    }


def run_comparison(grid: ScenarioGrid) -> dict:
    """Execute the grid in both modes and summarize the comparison."""
    loop_result = run_grid(grid, mode="loop", eval_every=25)
    batched_result = run_grid(grid, mode="batched", eval_every=25)
    speedup = loop_result.wall_time / max(batched_result.wall_time, 1e-12)
    torch_column = _torch_column(grid, loop_result)
    return {
        "grid": {
            "cells": len(grid),
            "num_workers": grid.num_workers,
            "dimension": grid.dimension,
            "num_rounds": grid.num_rounds,
            "seeds": list(grid.seeds),
            "f_values": list(grid.f_values),
            "attacks": [name for name, _ in grid.attacks],
            "aggregators": [name for name, _ in grid.aggregators],
        },
        # The resolved array backend (name[dtype]) the batched kernels
        # computed through — "numpy[float64]" is the bit-for-bit
        # reference configuration.
        "backend": batched_result.backend,
        "loop_seconds": round(loop_result.wall_time, 4),
        "batched_seconds": round(batched_result.wall_time, 4),
        "speedup": round(speedup, 2),
        "trajectories_identical": _identical_trajectories(
            loop_result, batched_result
        ),
        "native_fraction": batched_result.native_fraction,
        "native_kernels": _native_kernels(grid),
        # Present only when torch is importable in the benchmarking
        # environment; absent otherwise.
        **({"torch": torch_column} if torch_column is not None else {}),
        "python": platform.python_version(),
    }


def _emit_summary(summary: dict) -> None:
    emit(
        format_table(
            [
                "cells", "n", "d", "rounds", "backend", "loop s",
                "batched s", "speedup", "identical", "native",
            ],
            [
                [
                    summary["grid"]["cells"],
                    summary["grid"]["num_workers"],
                    summary["grid"]["dimension"],
                    summary["grid"]["num_rounds"],
                    summary["backend"],
                    summary["loop_seconds"],
                    summary["batched_seconds"],
                    f"{summary['speedup']}x",
                    summary["trajectories_identical"],
                    summary["native_fraction"],
                ]
            ],
            title="Engine — batched grid vs per-scenario loop",
        )
    )


def bench_engine_batched_vs_loop(benchmark):
    summary = run_once(benchmark, lambda: run_comparison(_grid()))
    _emit_summary(summary)
    RESULT_PATH.write_text(json.dumps(summary, indent=1) + "\n")

    assert summary["trajectories_identical"], (
        "batched engine diverged from the per-scenario loop"
    )
    assert summary["native_fraction"] == 1.0, (
        f"reference grid regressed to the loop fallback: "
        f"{summary['native_kernels']}"
    )
    assert summary["speedup"] >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x speedup, got {summary['speedup']}x"
    )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run a small grid (32 cells, 10 rounds, d=50) without "
        "writing BENCH_engine.json — the CI sanity check",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the summary JSON to this path (used by CI to "
        "upload the smoke measurement as a workflow artifact)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        grid = _grid(seeds=(0,), num_rounds=10, dimension=50)
    else:
        grid = _grid()
    summary = run_comparison(grid)
    print(json.dumps(summary, indent=1))
    if args.output is not None:
        args.output.write_text(json.dumps(summary, indent=1) + "\n")
        print(f"wrote {args.output}")
    if not summary["trajectories_identical"]:
        print("FAIL: batched engine diverged from the per-scenario loop")
        return 1
    if summary["native_fraction"] != 1.0:
        print(
            "FAIL: a reference-grid rule regressed to the loop fallback: "
            f"{summary['native_kernels']}"
        )
        return 1
    if not args.smoke:
        if summary["speedup"] < MIN_SPEEDUP:
            print(f"FAIL: speedup {summary['speedup']}x < {MIN_SPEEDUP}x")
            return 1
        RESULT_PATH.write_text(json.dumps(summary, indent=1) + "\n")
        print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
