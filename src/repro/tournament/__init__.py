"""Attack × defense tournament — the robustness league.

:class:`TournamentRunner` measures every registered attack against
every registered defense over a declarative slate and condenses each
pairing into a :class:`LeagueRow`; ``benchmarks/bench_tournament.py``
persists the league to ``BENCH_tournament.json`` and
:func:`repro.experiments.reporting.format_league_table` renders it.
"""

from repro.tournament.runner import (
    AsyncCell,
    LeagueRow,
    TournamentResult,
    TournamentRunner,
    default_attack_slate,
    default_defense_slate,
)

__all__ = [
    "AsyncCell",
    "LeagueRow",
    "TournamentResult",
    "TournamentRunner",
    "default_attack_slate",
    "default_defense_slate",
]
