"""Tests for repro.utils.linalg."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.utils.linalg import (
    batched_pairwise_sq_distances,
    flatten_arrays,
    masked_coordinate_median,
    masked_inverse_distance_weights,
    masked_krum_scores,
    masked_unit_direction_sum,
    pairwise_sq_distances,
    stack_vectors,
    unflatten_array,
)


class TestPairwiseSqDistances:
    def test_matches_naive(self, rng):
        vectors = rng.standard_normal((7, 5))
        fast = pairwise_sq_distances(vectors)
        naive = np.array(
            [
                [np.sum((vectors[i] - vectors[j]) ** 2) for j in range(7)]
                for i in range(7)
            ]
        )
        np.testing.assert_allclose(fast, naive, atol=1e-10)

    def test_diagonal_zero(self, rng):
        vectors = rng.standard_normal((4, 3)) * 1e6
        distances = pairwise_sq_distances(vectors)
        np.testing.assert_array_equal(np.diag(distances), np.zeros(4))

    def test_symmetry(self, rng):
        vectors = rng.standard_normal((6, 4))
        distances = pairwise_sq_distances(vectors)
        np.testing.assert_allclose(distances, distances.T, atol=1e-12)

    def test_non_negative_despite_cancellation(self):
        # Nearly identical large vectors trigger catastrophic cancellation.
        base = np.full(10, 1e8)
        vectors = np.stack([base, base + 1e-8])
        distances = pairwise_sq_distances(vectors)
        assert np.all(distances >= 0.0)

    def test_single_vector(self):
        distances = pairwise_sq_distances(np.array([[1.0, 2.0]]))
        assert distances.shape == (1, 1)
        assert distances[0, 0] == 0.0

    def test_rejects_1d(self):
        with pytest.raises(DimensionMismatchError):
            pairwise_sq_distances(np.ones(3))

    def test_known_values(self):
        vectors = np.array([[0.0, 0.0], [3.0, 4.0]])
        distances = pairwise_sq_distances(vectors)
        assert distances[0, 1] == pytest.approx(25.0)


class TestMaskedKrumScores:
    def test_full_mask_matches_krum_scores(self, rng):
        from repro.core.krum import krum_scores

        batch = rng.standard_normal((3, 9, 4))
        distances = batched_pairwise_sq_distances(batch, nonfinite_as_inf=True)
        active = np.ones((3, 9), dtype=bool)
        f = 2
        scores = masked_krum_scores(distances, active, 9 - f - 2)
        for b in range(3):
            np.testing.assert_array_equal(scores[b], krum_scores(batch[b], f))

    def test_subset_matches_compacted_pool(self, rng):
        # Scoring the masked pool must rank candidates like scoring the
        # compacted pool (same neighbour multisets per candidate).
        batch = rng.standard_normal((1, 10, 3))
        distances = batched_pairwise_sq_distances(batch)
        active = np.ones((1, 10), dtype=bool)
        active[0, [2, 5, 7]] = False
        pool = [i for i in range(10) if active[0, i]]
        scores = masked_krum_scores(distances, active, 3)
        assert np.all(np.isinf(scores[0, [2, 5, 7]]))
        for i in pool:
            neighbour = sorted(distances[0, i, j] for j in pool if j != i)
            np.testing.assert_allclose(scores[0, i], np.sum(neighbour[:3]))

    def test_rejects_bad_num_neighbors(self, rng):
        distances = batched_pairwise_sq_distances(rng.standard_normal((2, 5, 3)))
        active = np.ones((2, 5), dtype=bool)
        for bad in (0, -1, 5):
            with pytest.raises(DimensionMismatchError, match="num_neighbors"):
                masked_krum_scores(distances, active, bad)

    def test_rejects_num_neighbors_exceeding_active_pool(self, rng):
        # More neighbours than any active row has would sum masked +inf
        # entries into every score — an error, not garbage output.
        distances = batched_pairwise_sq_distances(rng.standard_normal((1, 6, 3)))
        active = np.ones((1, 6), dtype=bool)
        active[0, :3] = False  # 3 active rows -> at most 2 neighbours
        with pytest.raises(DimensionMismatchError, match="active_count"):
            masked_krum_scores(distances, active, 4)
        assert np.all(np.isfinite(masked_krum_scores(distances, active, 2)[0, 3:]))


class TestMaskedCoordinateMedian:
    def test_full_mask_matches_numpy(self, rng):
        batch = rng.standard_normal((4, 7, 5))
        active = np.ones((4, 7), dtype=bool)
        np.testing.assert_array_equal(
            masked_coordinate_median(batch, active), np.median(batch, axis=1)
        )

    @pytest.mark.parametrize("drop", [1, 2, 3])
    def test_subset_matches_numpy_on_subset(self, rng, drop):
        batch = rng.standard_normal((3, 8, 4))
        active = np.ones((3, 8), dtype=bool)
        active[:, :drop] = False  # uniform count per scenario
        got = masked_coordinate_median(batch, active)
        for b in range(3):
            np.testing.assert_allclose(got[b], np.median(batch[b, drop:], axis=0))

    def test_rejects_nonuniform_counts(self, rng):
        batch = rng.standard_normal((2, 5, 3))
        active = np.ones((2, 5), dtype=bool)
        active[0, 0] = False
        with pytest.raises(DimensionMismatchError, match="same number"):
            masked_coordinate_median(batch, active)


class TestMaskedWeiszfeldPrimitives:
    def test_unit_direction_sum_matches_compacted(self, rng):
        values = rng.standard_normal((2, 6, 3))
        anchors = rng.standard_normal((2, 3))
        offsets = values - anchors[:, None, :]
        distances = np.linalg.norm(offsets, axis=2)
        active = np.ones((2, 6), dtype=bool)
        active[:, 0] = False
        got = masked_unit_direction_sum(values, anchors, distances, active)
        for b in range(2):
            manual = (offsets[b, 1:] / distances[b, 1:, None]).sum(axis=0)
            np.testing.assert_allclose(got[b], manual, rtol=1e-12, atol=1e-12)

    def test_inactive_zero_distances_are_safe(self, rng):
        values = rng.standard_normal((1, 4, 2))
        anchors = values[:, 0].copy()
        distances = np.array([[0.0, 1.0, 2.0, 3.0]])
        active = np.array([[False, True, True, True]])
        out = masked_unit_direction_sum(values, anchors, distances, active)
        assert np.all(np.isfinite(out))

    def test_inverse_distance_weights(self, rng):
        distances = np.array([[0.5, 2.0, 0.0, 4.0]])
        active = np.array([[True, True, False, True]])
        got = masked_inverse_distance_weights(distances, active)
        np.testing.assert_array_equal(got, [[2.0, 0.5, 0.0, 0.25]])

    def test_precomputed_offsets_match(self, rng):
        values = rng.standard_normal((2, 6, 3))
        anchors = rng.standard_normal((2, 3))
        offsets = values - anchors[:, None, :]
        distances = np.linalg.norm(offsets, axis=2)
        active = np.ones((2, 6), dtype=bool)
        plain = masked_unit_direction_sum(values, anchors, distances, active)
        reused = masked_unit_direction_sum(
            values, anchors, distances, active, offsets=offsets
        )
        np.testing.assert_array_equal(plain, reused)

    def test_shape_validation(self, rng):
        values = rng.standard_normal((2, 5, 3))
        anchors = rng.standard_normal((2, 3))
        with pytest.raises(DimensionMismatchError):
            masked_unit_direction_sum(
                values, anchors, np.ones((2, 4)), np.ones((2, 5), bool)
            )
        with pytest.raises(DimensionMismatchError):
            masked_unit_direction_sum(
                values, np.ones((2, 4)), np.ones((2, 5)), np.ones((2, 5), bool)
            )


class TestStackVectors:
    def test_stacks(self):
        stack = stack_vectors([np.array([1.0, 2.0]), np.array([3.0, 4.0])])
        assert stack.shape == (2, 2)

    def test_rejects_empty(self):
        with pytest.raises(DimensionMismatchError):
            stack_vectors([])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(DimensionMismatchError, match="inconsistent"):
            stack_vectors([np.ones(2), np.ones(3)])

    def test_rejects_2d_elements(self):
        with pytest.raises(DimensionMismatchError):
            stack_vectors([np.ones((2, 2))])


class TestFlattenRoundTrip:
    def test_round_trip(self, rng):
        arrays = [rng.standard_normal(s) for s in [(3, 4), (4,), (2, 2, 2)]]
        flat, shapes = flatten_arrays(arrays)
        assert flat.shape == (12 + 4 + 8,)
        restored = unflatten_array(flat, shapes)
        for original, back in zip(arrays, restored):
            np.testing.assert_allclose(original, back)

    def test_scalar_shape(self):
        flat, shapes = flatten_arrays([np.array(5.0)])
        assert flat.shape == (1,)
        restored = unflatten_array(flat, shapes)
        assert restored[0].shape == ()

    def test_rejects_empty_list(self):
        with pytest.raises(DimensionMismatchError):
            flatten_arrays([])

    def test_unflatten_rejects_wrong_size(self):
        with pytest.raises(DimensionMismatchError, match="entries"):
            unflatten_array(np.ones(5), [(2, 2)])

    def test_unflatten_rejects_2d_input(self):
        with pytest.raises(DimensionMismatchError):
            unflatten_array(np.ones((2, 2)), [(4,)])
