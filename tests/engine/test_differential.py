"""Differential harness: batched kernels vs the per-scenario path.

Every batched kernel must match the existing per-scenario implementation
**bit-for-bit** — not approximately — on randomized grids, including the
adversarial corners: f = 0, tie-heavy duplicate proposals, and NaN/Inf
Byzantine inputs.  This identity is what makes the engine a safe
substitute for the seed code's loop execution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.average import Average
from repro.baselines.distance_based import ClosestToAll
from repro.baselines.majority import MinimalDiameterSubset
from repro.baselines.medians import (
    CoordinateWiseMedian,
    GeometricMedian,
    TrimmedMean,
)
from repro.core.batched import (
    batched_average,
    batched_coordinate_median,
    batched_krum_scores,
    batched_trimmed_mean,
    has_batched_kernel,
    make_batched_aggregator,
)
from repro.core.bulyan import Bulyan
from repro.core.krum import Krum, MultiKrum, krum_scores, krum_scores_reference
from repro.engine import ScenarioGrid, run_grid
from repro.exceptions import ConvergenceError
from repro.utils.linalg import (
    batched_pairwise_sq_distances,
    pairwise_sq_distances,
)


def bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact equality including NaN payloads and signed zeros."""
    a, b = np.asarray(a), np.asarray(b)
    return a.shape == b.shape and a.tobytes() == b.tobytes()


def float_bitwise_equal(a: float | None, b: float | None) -> bool:
    if a is None or b is None:
        return a is b
    return np.float64(a).tobytes() == np.float64(b).tobytes()


def records_equal(ra, rb) -> bool:
    """RoundRecord equality with bitwise float semantics (NaN == NaN)."""
    scalar_fields = (
        "learning_rate",
        "aggregate_norm",
        "params_norm",
        "loss",
        "accuracy",
        "grad_norm",
    )
    return (
        ra.round_index == rb.round_index
        and ra.selected == rb.selected
        and ra.byzantine_selected == rb.byzantine_selected
        and all(
            float_bitwise_equal(getattr(ra, name), getattr(rb, name))
            for name in scalar_fields
        )
        and ra.extras.keys() == rb.extras.keys()
        and all(
            float_bitwise_equal(ra.extras[k], rb.extras[k]) for k in ra.extras
        )
    )


def make_batches(seed: int = 0) -> list[np.ndarray]:
    """Randomized (B, n, d) batches covering the adversarial corners."""
    rng = np.random.default_rng(seed)
    batches = []

    # Plain random clouds at several scales.
    batches.append(rng.standard_normal((6, 9, 5)))
    batches.append(1e4 * rng.standard_normal((4, 13, 3)))

    # Tie-heavy: duplicated proposals (identical rows → equal distances
    # and equal Krum scores, exercising the smallest-identifier
    # tie-break in every kernel).
    tied = np.repeat(rng.standard_normal((5, 3, 4)), 3, axis=1)  # n = 9
    batches.append(tied)
    batches.append(np.zeros((3, 8, 4)))  # all proposals identical

    # NaN/Inf Byzantine rows mixed into honest clouds.
    poisoned = rng.standard_normal((4, 10, 6))
    poisoned[0, 0] = np.nan
    poisoned[1, -1] = np.inf
    poisoned[2, 3] = -np.inf
    poisoned[3, 1, ::2] = np.nan
    batches.append(poisoned)
    return batches


def valid_f_values(n: int) -> list[int]:
    """f values valid for Krum scoring (n − f − 2 ≥ 1), always incl. 0."""
    return sorted({0, 1, (n - 3) // 2} & set(range(0, n - 2)))


class TestBatchedDistanceKernel:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_per_scenario_bitwise(self, seed):
        for batch in make_batches(seed):
            for nonfinite_as_inf in (False, True):
                got = batched_pairwise_sq_distances(
                    batch, nonfinite_as_inf=nonfinite_as_inf
                )
                for b in range(batch.shape[0]):
                    want = pairwise_sq_distances(
                        batch[b], nonfinite_as_inf=nonfinite_as_inf
                    )
                    assert bitwise_equal(got[b], want)

    def test_chunking_matches_unchunked(self):
        batch = make_batches(3)[0]
        whole = batched_pairwise_sq_distances(batch)
        for chunk_size in (1, 2, 3, batch.shape[0], batch.shape[0] + 7):
            chunked = batched_pairwise_sq_distances(batch, chunk_size=chunk_size)
            assert bitwise_equal(whole, chunked)


class TestBatchedKrumScores:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_three_way_agreement(self, seed):
        """batched == fast (bit-for-bit) and both ≈ the naive reference."""
        for batch in make_batches(seed):
            n = batch.shape[1]
            for f in valid_f_values(n):
                got = batched_krum_scores(batch, f)
                for b in range(batch.shape[0]):
                    fast = krum_scores(batch[b], f)
                    assert bitwise_equal(got[b], fast)
                    if np.all(np.isfinite(batch[b])):
                        reference = krum_scores_reference(batch[b], f)
                        scale = max(1.0, float(np.max(np.abs(batch[b]))) ** 2)
                        np.testing.assert_allclose(
                            fast,
                            reference,
                            rtol=1e-7,
                            atol=1e-10 * scale * n,
                        )

    def test_chunk_size_does_not_change_scores(self):
        batch = make_batches(4)[0]
        whole = batched_krum_scores(batch, 1)
        for chunk_size in (1, 2, 5):
            assert bitwise_equal(
                whole, batched_krum_scores(batch, 1, chunk_size=chunk_size)
            )


def _rules_for(n: int) -> list:
    f = max(1, min((n - 3) // 2, (n - 1) // 2))
    rules = [
        Average(),
        CoordinateWiseMedian(),
        TrimmedMean(f=min(f, (n - 1) // 2)),
        ClosestToAll(),
    ]
    if n - f - 2 >= 1:
        rules.append(Krum(f=f, strict=False))
        m = min(3, n - f - 2)
        rules.append(MultiKrum(f=f, m=m, strict=False))
    return rules


class TestBatchedAdapters:
    """Every adapter (native or fallback) replicates aggregate_detailed."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_native_kernels_bitwise(self, seed):
        for batch in make_batches(seed):
            n = batch.shape[1]
            for rule in _rules_for(n):
                assert has_batched_kernel(rule), rule.name
                adapter = make_batched_aggregator(rule)
                result = adapter.aggregate_batch(batch)
                for b in range(batch.shape[0]):
                    want = rule.aggregate_detailed(batch[b])
                    assert bitwise_equal(result.vectors[b], want.vector), (
                        f"{rule.name} diverged on slice {b}"
                    )
                    np.testing.assert_array_equal(
                        result.selected[b], want.selected
                    )
                    if want.scores is not None:
                        assert bitwise_equal(result.scores[b], want.scores)

    def test_loop_fallback_bitwise(self, rng):
        batch = rng.standard_normal((5, 11, 4))
        rule = MinimalDiameterSubset(f=2)
        assert not has_batched_kernel(rule)
        adapter = make_batched_aggregator(rule)
        assert not adapter.is_native
        result = adapter.aggregate_batch(batch)
        for b in range(batch.shape[0]):
            want = rule.aggregate_detailed(batch[b])
            assert bitwise_equal(result.vectors[b], want.vector)
            np.testing.assert_array_equal(result.selected[b], want.selected)


def bulyan_f_values(n: int) -> list[int]:
    """f values valid for Bulyan (n >= 4f + 3), always including 0."""
    return sorted({0, 1, (n - 3) // 4} & {f for f in range(n) if n >= 4 * f + 3})


class TestBatchedBulyan:
    """The Bulyan kernel: iterated committee selection, bit-for-bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_per_scenario_bitwise(self, seed):
        """All corners: f = 0, tie-heavy duplicates, NaN/Inf rows."""
        for batch in make_batches(seed):
            n = batch.shape[1]
            for f in bulyan_f_values(n):
                rule = Bulyan(f=f)
                assert has_batched_kernel(rule)
                adapter = make_batched_aggregator(rule)
                assert adapter.is_native
                result = adapter.aggregate_batch(batch)
                for b in range(batch.shape[0]):
                    want = rule.aggregate_detailed(batch[b])
                    assert bitwise_equal(result.vectors[b], want.vector), (
                        f"bulyan(f={f}) diverged on slice {b}"
                    )
                    np.testing.assert_array_equal(
                        result.selected[b], want.selected
                    )

    def test_committee_is_sorted_and_sized(self, rng):
        batch = rng.standard_normal((4, 11, 5))
        result = make_batched_aggregator(Bulyan(f=2)).aggregate_batch(batch)
        for committee in result.selected:
            assert committee.shape == (11 - 2 * 2,)
            assert np.all(np.diff(committee) > 0)  # sorted, no duplicates

    def test_chunking_matches_unchunked(self, rng):
        batch = rng.standard_normal((7, 9, 4))
        whole = make_batched_aggregator(Bulyan(f=1)).aggregate_batch(batch)
        for chunk_size in (1, 2, 3, 7, 19):
            chunked = make_batched_aggregator(
                Bulyan(f=1), chunk_size=chunk_size
            ).aggregate_batch(batch)
            assert bitwise_equal(chunked.vectors, whole.vectors)
            for a, b in zip(chunked.selected, whole.selected):
                np.testing.assert_array_equal(a, b)


class TestBatchedGeometricMedian:
    """The Weiszfeld kernel: per-scenario convergence masking, bit-for-bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_per_scenario_bitwise(self, seed):
        rule = GeometricMedian()
        assert has_batched_kernel(rule)
        adapter = make_batched_aggregator(rule)
        assert adapter.is_native
        for batch in make_batches(seed):
            if not np.all(np.isfinite(batch)):
                continue  # non-finite parity covered separately below
            result = adapter.aggregate_batch(batch)
            for b in range(batch.shape[0]):
                want = rule.aggregate_detailed(batch[b])
                assert bitwise_equal(result.vectors[b], want.vector), (
                    f"geometric median diverged on slice {b}"
                )
                assert result.selected[b].size == 0

    def test_tight_tolerance_matches(self, rng):
        """Non-default configuration flows through the kernel."""
        rule = GeometricMedian(tolerance=1e-12, max_iterations=5000)
        batch = rng.standard_normal((5, 12, 6))
        result = make_batched_aggregator(rule).aggregate_batch(batch)
        for b in range(batch.shape[0]):
            want = rule.aggregate_detailed(batch[b])
            assert bitwise_equal(result.vectors[b], want.vector)

    def test_nonfinite_scenarios_raise_consistently(self):
        """NaN proposals never satisfy a convergence predicate; the loop
        path raises for such a scenario, so the batched path must raise
        for any batch containing one — and slices that do converge must
        still match bit-for-bit."""
        rule = GeometricMedian(max_iterations=60)
        adapter = make_batched_aggregator(rule)
        batch = make_batches(0)[-1]  # the NaN/Inf-poisoned batch
        loop_outcomes: list[np.ndarray | None] = []
        for b in range(batch.shape[0]):
            try:
                loop_outcomes.append(rule.aggregate_detailed(batch[b]).vector)
            except ConvergenceError:
                loop_outcomes.append(None)
        assert any(v is None for v in loop_outcomes)
        with pytest.raises(ConvergenceError, match="did not converge"):
            adapter.aggregate_batch(batch)
        converging = [b for b, v in enumerate(loop_outcomes) if v is not None]
        if converging:
            result = adapter.aggregate_batch(batch[converging])
            for i, b in enumerate(converging):
                assert bitwise_equal(result.vectors[i], loop_outcomes[b])

    def test_chunking_matches_unchunked(self, rng):
        batch = rng.standard_normal((6, 10, 3))
        rule = GeometricMedian()
        whole = make_batched_aggregator(rule).aggregate_batch(batch)
        for chunk_size in (1, 2, 4, 6, 11):
            chunked = make_batched_aggregator(
                rule, chunk_size=chunk_size
            ).aggregate_batch(batch)
            assert bitwise_equal(chunked.vectors, whole.vectors)


class TestGridTrajectories:
    """Full-trajectory identity: run_grid(loop) vs run_grid(batched)."""

    @staticmethod
    def _assert_identical(grid: ScenarioGrid, **kwargs) -> None:
        loop = run_grid(grid, mode="loop", eval_every=5)
        batched = run_grid(grid, mode="batched", eval_every=5, **kwargs)
        assert set(loop.histories) == set(batched.histories)
        for label in loop.histories:
            assert bitwise_equal(
                loop.final_params[label], batched.final_params[label]
            ), f"final params diverged for {label}"
            loop_records = loop.histories[label].records
            batched_records = batched.histories[label].records
            assert len(loop_records) == len(batched_records)
            assert all(
                records_equal(a, b)
                for a, b in zip(loop_records, batched_records)
            ), f"history diverged for {label}"

    @pytest.mark.parametrize("seed", [0, 17])
    def test_randomized_grid(self, seed):
        grid = ScenarioGrid(
            seeds=(seed, seed + 1),
            attacks=(
                ("gaussian", {"sigma": 100.0}),
                ("omniscient", {"scale": 5.0}),
            ),
            aggregators=(
                ("krum", {}),
                ("multi-krum", {"m": 3}),
                ("average", {}),
                ("trimmed-mean", {}),
            ),
            f_values=(0, 3),  # f = 0 cells run attack-free
            num_workers=13,
            dimension=9,
            sigma=0.4,
            num_rounds=12,
        )
        self._assert_identical(grid, chunk_size=3)

    def test_nonfinite_byzantine_inputs(self):
        """NaN proposals flow through both executors identically."""
        grid = ScenarioGrid(
            seeds=(2,),
            attacks=(("non-finite", {}),),
            aggregators=(("krum", {}), ("coordinate-median", {})),
            f_values=(2,),
            num_workers=9,
            dimension=6,
            sigma=0.3,
            num_rounds=8,
        )
        self._assert_identical(grid)

    def test_loop_fallback_rules_in_grid(self):
        """Grids mixing kernel-backed and fallback rules stay identical."""
        grid = ScenarioGrid(
            seeds=(5,),
            attacks=(("sign-flip", {"scale": 3.0}),),
            aggregators=(("krum", {}), ("minimal-diameter", {})),
            f_values=(2,),
            num_workers=11,
            dimension=7,
            sigma=0.2,
            num_rounds=10,
        )
        self._assert_identical(grid)

    def test_mixed_workload_grid(self):
        """Acceptance criterion of the workload redesign: a grid mixing
        the quadratic bowl with two dataset-backed workloads stays
        bit-for-bit identical between the loop and batched executors
        (the batched mode groups cells per parameter dimension)."""
        grid = ScenarioGrid(
            seeds=(0, 1),
            workloads=(
                ("quadratic", {"dimension": 8, "sigma": 0.3}),
                (
                    "logistic-spambase",
                    {"num_train": 96, "num_eval": 48, "batch_size": 8},
                ),
                (
                    "softmax-mnist",
                    {"num_train": 64, "num_eval": 32, "batch_size": 8},
                ),
            ),
            attacks=(("sign-flip", {"scale": 4.0}),),
            aggregators=(("krum", {}), ("average", {})),
            f_values=(0, 2),
            num_workers=9,
            num_rounds=6,
            learning_rate=0.1,
            lr_timescale=None,
        )
        assert len(grid) == 2 * 3 * 2 * 2
        self._assert_identical(grid, chunk_size=2)

    def test_bulyan_and_geometric_median_kernels_in_grid(self):
        """The two rules that used to take the loop fallback now run
        native — and must stay trajectory-identical through full runs."""
        grid = ScenarioGrid(
            seeds=(3, 4),
            attacks=(("gaussian", {"sigma": 80.0}),),
            aggregators=(
                ("bulyan", {}),
                ("geometric-median", {}),
                ("krum", {}),
            ),
            f_values=(0, 2),  # bulyan needs n >= 4f + 3 = 11
            num_workers=11,
            dimension=6,
            sigma=0.3,
            num_rounds=10,
        )
        self._assert_identical(grid, chunk_size=2)

    def test_adaptive_attacks_in_grid(self):
        """Acceptance criterion of the adaptive adversary suite: the
        stateful adaptive attacks — and the ``selected_last_round``
        feedback the probe consumes — thread identically through the
        loop and batched executors, synchronous and stale arms alike.
        (kardam wraps ``average`` here: the Lipschitz filter can drop
        enough rows to break an inner krum's ``2f + 2 < n`` bound.)"""
        grid = ScenarioGrid(
            seeds=(0, 11),
            attacks=(
                ("staleness-gaming", {"scale": 2.0}),
                ("lipschitz-mimicry", {}),
                ("probe", {"inner": "sign-flip"}),
                ("probe", {"inner": "little-is-enough"}),
            ),
            aggregators=(
                ("krum", {}),
                ("multi-krum", {"m": 3}),
                ("average", {}),
                ("kardam", {"inner": "average", "lipschitz_quantile": 0.9}),
            ),
            f_values=(2,),
            max_staleness_values=(0, 3),
            delay_schedules=(
                (None, {}),
                ("periodic", {"tau": 2, "period": 3}),
            ),
            num_workers=9,
            dimension=6,
            sigma=0.3,
            num_rounds=10,
        )
        self._assert_identical(grid, chunk_size=4)


class TestCompareAggregatorsEngine:
    """The rewired compare_aggregators: batched == loop on dataset SGD."""

    def test_engines_agree(self):
        from repro.data.synthetic import make_blobs
        from repro.experiments.config import SGDExperimentConfig
        from repro.experiments.runner import compare_aggregators
        from repro.models.softmax import SoftmaxRegressionModel

        blobs = make_blobs(120, num_classes=3, num_features=4, spread=0.5, seed=0)
        base = SGDExperimentConfig(
            num_workers=9,
            num_byzantine=2,
            num_rounds=15,
            aggregator="krum",
            aggregator_kwargs={"f": 2},
            attack="gaussian",
            attack_kwargs={"sigma": 50.0},
            learning_rate=0.3,
            batch_size=16,
            eval_every=5,
            seed=0,
        )
        specs = {
            "krum": ("krum", {"f": 2}),
            "average": ("average", {}),
            "geom-median": ("geometric-median", {}),
        }
        factory = lambda: SoftmaxRegressionModel(4, 3)  # noqa: E731
        batched = compare_aggregators(base, specs, factory, blobs, engine="batched")
        loop = compare_aggregators(base, specs, factory, blobs, engine="loop")
        assert set(batched) == set(loop)
        for label in specs:
            assert batched[label].records == loop[label].records, label
