"""Name-based backend factory — the library's fourth registry.

Mirrors the aggregator (:mod:`repro.core.registry`), attack
(:mod:`repro.attacks.registry`) and workload
(:mod:`repro.engine.workloads`) registries: a caller names a backend
("numpy", "torch") plus keyword arguments and gets an
:class:`~repro.backend.base.ArrayBackend`, with the shared
:class:`ConfigurationError` contract — unknown names list the available
backends, and kwargs that do not fit the factory's signature raise a
readable error naming the backend and its accepted parameters.

``"torch"`` is always *registered*; whether it is *installed* is a
property of the environment, surfaced by :func:`backend_installed` (the
CI torch leg and the engine benchmarks key off it) and by the
ConfigurationError ``make_backend("torch")`` raises on a torch-less
install.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.backend.base import ArrayBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.exceptions import ConfigurationError
from repro.utils.validation import check_factory_kwargs

__all__ = [
    "register_backend",
    "available_backends",
    "backend_factory",
    "backend_installed",
    "make_backend",
    "resolve_backend",
    "default_backend",
]

_REGISTRY: dict[str, Callable[..., ArrayBackend]] = {}


def register_backend(name: str, factory: Callable[..., ArrayBackend]) -> None:
    """Register an array backend under ``name``; later registrations
    override (so a deployment can swap in its own tuned backend)."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"backend name must be a non-empty string, got {name!r}"
        )
    _REGISTRY[name] = factory


def available_backends() -> list[str]:
    """Sorted list of registered backend names (registered, not
    necessarily importable — see :func:`backend_installed`)."""
    return sorted(_REGISTRY)


def backend_factory(name: str) -> Callable[..., ArrayBackend]:
    """The registered factory for ``name`` (for signature introspection)."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {available_backends()}"
        )
    return _REGISTRY[name]


def backend_installed(name: str) -> bool:
    """Whether ``name``'s default configuration can actually be built in
    this environment (False e.g. for "torch" without the ``[torch]``
    extra installed).  Unknown names still raise
    :class:`ConfigurationError` — not knowing a name is a caller bug,
    not an environment property."""
    factory = backend_factory(name)
    try:
        factory()
    except ConfigurationError:
        return False
    return True


def make_backend(
    name: str, kwargs: Mapping[str, object] | None = None
) -> ArrayBackend:
    """Build a backend by name, e.g. ``make_backend("torch", {"device": "cuda"})``.

    Keyword arguments that do not fit the factory's signature (unknown
    names, missing required parameters) raise
    :class:`ConfigurationError` naming the backend and the parameters it
    accepts — the same contract as
    :func:`~repro.attacks.registry.make_attack` and
    :func:`~repro.engine.workloads.make_workload`.
    """
    factory = backend_factory(name)
    resolved = dict(kwargs or {})
    check_factory_kwargs("backend", name, factory, resolved)
    return factory(**resolved)


# The engine's default: the reference numpy backend at float64 — the
# configuration the bit-for-bit differential guarantee is stated in.
# One shared instance (backends are stateless) so the hot paths skip
# re-construction.
_DEFAULT: NumpyBackend = NumpyBackend()


def default_backend() -> ArrayBackend:
    """The process-wide default backend (numpy, float64)."""
    return _DEFAULT


def resolve_backend(
    backend: ArrayBackend | str | None,
) -> ArrayBackend:
    """Normalize the ``backend=`` argument every kernel entry point takes.

    ``None`` → the default numpy/float64 backend; a string → the
    registry (default configuration); an :class:`ArrayBackend` instance
    passes through — so callers can thread a configured backend (e.g.
    ``TorchBackend(device="cuda:1")``) once and forget about it.
    """
    if backend is None:
        return _DEFAULT
    if isinstance(backend, ArrayBackend):
        return backend
    if isinstance(backend, str):
        return make_backend(backend)
    raise ConfigurationError(
        f"backend must be None, a registered backend name, or an "
        f"ArrayBackend instance, got {backend!r}"
    )


def _torch_factory(dtype: str = "float64", device: str = "cpu") -> ArrayBackend:
    """Lazy ``"torch"`` factory: the torch import happens here, not at
    library load, so a numpy-only install never pays for (or breaks on)
    the optional dependency."""
    try:
        from repro.backend.torch_backend import TorchBackend
    except ImportError as error:
        raise ConfigurationError(
            "backend 'torch' requires the optional torch dependency "
            "(install the '[torch]' extra, e.g. pip install "
            "'repro-byzantine-sgd[torch]'); registered backends: "
            f"{available_backends()}"
        ) from error
    return TorchBackend(dtype=dtype, device=device)


register_backend("numpy", NumpyBackend)
register_backend("torch", _torch_factory)
