"""Engine bench — batched scenario-grid vs per-scenario loop.

Runs the same 64-cell grid (4 seeds × 2 attacks × 4 aggregators × 2 f
values; n = 20 workers, d = 1000, 100 rounds — the scale of the paper's
figure grids) through both executors:

* ``loop``    — one :class:`~repro.distributed.TrainingSimulation` per
  cell, the seed code's execution model;
* ``batched`` — all cells stacked into ``(B, n, d)`` tensors by
  :class:`~repro.engine.BatchedSimulation`.

Asserts the batched engine is ≥ 3× faster AND trajectory-identical
(bit-for-bit final parameters and per-round records for every cell),
then writes the measurement to ``BENCH_engine.json`` at the repo root.

Standalone usage (CI smoke / regenerating the JSON)::

    PYTHONPATH=src python benchmarks/bench_engine_grid.py          # full grid
    PYTHONPATH=src python benchmarks/bench_engine_grid.py --smoke  # tiny grid
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

from repro.engine import ScenarioGrid, run_grid
from repro.experiments.reporting import format_table

try:
    from benchmarks.conftest import emit, run_once
except ImportError:  # executed as a script: python benchmarks/bench_engine_grid.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import emit, run_once

MIN_SPEEDUP = 3.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _grid(
    *, seeds=(0, 1, 2, 3), num_rounds=100, dimension=1000
) -> ScenarioGrid:
    return ScenarioGrid(
        seeds=seeds,
        attacks=(
            ("gaussian", {"sigma": 200.0}),
            ("omniscient", {"scale": 10.0}),
        ),
        aggregators=(
            ("krum", {}),
            ("multi-krum", {"m": 5}),
            ("coordinate-median", {}),
            ("trimmed-mean", {}),
        ),
        f_values=(3, 6),
        num_workers=20,
        dimension=dimension,
        sigma=0.5,
        num_rounds=num_rounds,
        learning_rate=0.1,
        lr_timescale=100.0,
    )


def _identical_trajectories(loop_result, batched_result) -> bool:
    for label in loop_result.histories:
        if (
            loop_result.final_params[label].tobytes()
            != batched_result.final_params[label].tobytes()
        ):
            return False
        loop_history = loop_result.histories[label]
        batched_history = batched_result.histories[label]
        if len(loop_history) != len(batched_history):
            return False
        if any(a != b for a, b in zip(loop_history, batched_history)):
            return False
    return True


def run_comparison(grid: ScenarioGrid) -> dict:
    """Execute the grid in both modes and summarize the comparison."""
    loop_result = run_grid(grid, mode="loop", eval_every=25)
    batched_result = run_grid(grid, mode="batched", eval_every=25)
    speedup = loop_result.wall_time / max(batched_result.wall_time, 1e-12)
    return {
        "grid": {
            "cells": len(grid),
            "num_workers": grid.num_workers,
            "dimension": grid.dimension,
            "num_rounds": grid.num_rounds,
            "seeds": list(grid.seeds),
            "f_values": list(grid.f_values),
            "attacks": [name for name, _ in grid.attacks],
            "aggregators": [name for name, _ in grid.aggregators],
        },
        "loop_seconds": round(loop_result.wall_time, 4),
        "batched_seconds": round(batched_result.wall_time, 4),
        "speedup": round(speedup, 2),
        "trajectories_identical": _identical_trajectories(
            loop_result, batched_result
        ),
        "python": platform.python_version(),
    }


def _emit_summary(summary: dict) -> None:
    emit(
        format_table(
            ["cells", "n", "d", "rounds", "loop s", "batched s", "speedup", "identical"],
            [
                [
                    summary["grid"]["cells"],
                    summary["grid"]["num_workers"],
                    summary["grid"]["dimension"],
                    summary["grid"]["num_rounds"],
                    summary["loop_seconds"],
                    summary["batched_seconds"],
                    f"{summary['speedup']}x",
                    summary["trajectories_identical"],
                ]
            ],
            title="Engine — batched grid vs per-scenario loop",
        )
    )


def bench_engine_batched_vs_loop(benchmark):
    summary = run_once(benchmark, lambda: run_comparison(_grid()))
    _emit_summary(summary)
    RESULT_PATH.write_text(json.dumps(summary, indent=1) + "\n")

    assert summary["trajectories_identical"], (
        "batched engine diverged from the per-scenario loop"
    )
    assert summary["speedup"] >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x speedup, got {summary['speedup']}x"
    )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run a small grid (16 cells, 10 rounds, d=50) without "
        "writing BENCH_engine.json — the CI sanity check",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        grid = _grid(seeds=(0,), num_rounds=10, dimension=50)
    else:
        grid = _grid()
    summary = run_comparison(grid)
    print(json.dumps(summary, indent=1))
    if not summary["trajectories_identical"]:
        print("FAIL: batched engine diverged from the per-scenario loop")
        return 1
    if not args.smoke:
        if summary["speedup"] < MIN_SPEEDUP:
            print(f"FAIL: speedup {summary['speedup']}x < {MIN_SPEEDUP}x")
            return 1
        RESULT_PATH.write_text(json.dumps(summary, indent=1) + "\n")
        print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
