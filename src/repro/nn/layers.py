"""Neural-network layers with exact backpropagation.

Each layer implements ``forward`` (caching whatever the backward pass
needs) and ``backward`` (returning the gradient with respect to its input
and writing parameter gradients into ``Parameter.grad``).  The contract is
one ``backward`` per ``forward``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    DimensionMismatchError,
    LifecycleError,
)
from repro.nn.initializers import he_normal, zeros
from repro.nn.parameter import Parameter

__all__ = ["Layer", "Dense", "ReLU", "LeakyReLU", "Tanh", "Sigmoid", "Dropout"]

Initializer = Callable[..., np.ndarray]


class Layer(ABC):
    """Base class for all layers."""

    @abstractmethod
    def forward(self, inputs: np.ndarray, *, training: bool = False) -> np.ndarray:
        """Compute the layer output for a ``(batch, ...)`` input."""

    @abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``dL/d(output)`` and return ``dL/d(input)``."""

    @property
    def parameters(self) -> list[Parameter]:
        """Trainable parameters of this layer (empty for stateless layers)."""
        return []


class Dense(Layer):
    """Affine layer ``y = x W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        rng: np.random.Generator,
        weight_init: Initializer = he_normal,
        bias: bool = True,
    ):
        if in_features < 1 or out_features < 1:
            raise ConfigurationError(
                f"Dense needs positive sizes, got ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight_init((in_features, out_features), rng), name="W")
        self.bias = Parameter(zeros((out_features,), rng), name="b") if bias else None
        self._inputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, *, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise DimensionMismatchError(
                f"Dense({self.in_features}, {self.out_features}) got input "
                f"shape {inputs.shape}"
            )
        self._inputs = inputs
        out = inputs @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise LifecycleError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.weight.grad = self._inputs.T @ grad_output
        if self.bias is not None:
            self.bias.grad = grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    @property
    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params


class ReLU(Layer):
    """Rectified linear unit, elementwise ``max(0, x)``."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, *, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._mask = inputs > 0.0
        return np.where(self._mask, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise LifecycleError("backward called before forward")
        return np.where(self._mask, grad_output, 0.0)


class LeakyReLU(Layer):
    """Leaky ReLU: ``x`` for positive inputs, ``slope * x`` otherwise."""

    def __init__(self, slope: float = 0.01):
        if slope < 0:
            raise ConfigurationError(f"slope must be non-negative, got {slope}")
        self.slope = float(slope)
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, *, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._mask = inputs > 0.0
        return np.where(self._mask, inputs, self.slope * inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise LifecycleError("backward called before forward")
        return np.where(self._mask, grad_output, self.slope * grad_output)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, *, training: bool = False) -> np.ndarray:
        self._output = np.tanh(np.asarray(inputs, dtype=np.float64))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise LifecycleError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


class Sigmoid(Layer):
    """Logistic sigmoid activation, computed stably for large |x|."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, *, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        out = np.empty_like(inputs)
        positive = inputs >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-inputs[positive]))
        exp_x = np.exp(inputs[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise LifecycleError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Dropout(Layer):
    """Inverted dropout: active only when ``training=True``.

    During training each unit is zeroed with probability ``p`` and the
    survivors are scaled by ``1/(1-p)`` so the expected activation is
    unchanged; at evaluation time the layer is the identity.
    """

    def __init__(self, p: float, *, rng: np.random.Generator):
        if not 0.0 <= p < 1.0:
            raise ConfigurationError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, *, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if not training or self.p == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.p
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return np.asarray(grad_output, dtype=np.float64)
        return grad_output * self._mask
