"""Hypothesis property tests for the batched engine kernels.

Two structural invariants of batching:

* **Batch-axis permutation equivariance** — scenarios in a batch are
  independent, so permuting the batch axis must permute the outputs and
  nothing else (bit-for-bit; any cross-scenario leakage would break it).
* **Chunk-size invariance** — chunking only partitions the batch axis,
  so every chunk size must produce the identical result.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines.average import Average
from repro.baselines.medians import (
    CoordinateWiseMedian,
    GeometricMedian,
    TrimmedMean,
    batched_weiszfeld,
)
from repro.core.batched import (
    batched_krum_scores,
    make_batched_aggregator,
)
from repro.core.bulyan import Bulyan, batched_bulyan
from repro.core.krum import Krum, MultiKrum
from repro.exceptions import ConvergenceError
from repro.utils.linalg import batched_pairwise_sq_distances


def batches(min_b=2, max_b=6, min_n=5, max_n=10, min_d=1, max_d=6):
    """Strategy producing (batch, f) with valid Krum parameters."""

    @st.composite
    def build(draw):
        b = draw(st.integers(min_b, max_b))
        n = draw(st.integers(min_n, max_n))
        d = draw(st.integers(min_d, max_d))
        f_max = n - 3
        f = draw(st.integers(0, max(0, min(f_max, (n - 1) // 2))))
        batch = draw(
            hnp.arrays(
                dtype=np.float64,
                shape=(b, n, d),
                elements=st.floats(
                    min_value=-1e6, max_value=1e6, allow_nan=False
                ),
            )
        )
        return batch, f

    return build()


def bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return a.shape == b.shape and a.tobytes() == b.tobytes()


class TestBatchPermutationEquivariance:
    @given(batches(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_krum_scores(self, case, pyrandom):
        batch, f = case
        perm = list(range(batch.shape[0]))
        pyrandom.shuffle(perm)
        perm = np.asarray(perm)
        scores = batched_krum_scores(batch, f)
        permuted_scores = batched_krum_scores(batch[perm], f)
        assert bitwise_equal(permuted_scores, scores[perm])

    @given(batches(), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_adapters(self, case, pyrandom):
        batch, f = case
        n = batch.shape[1]
        perm = list(range(batch.shape[0]))
        pyrandom.shuffle(perm)
        perm = np.asarray(perm)
        rules = [Average(), CoordinateWiseMedian(), TrimmedMean(f=f)]
        if n - f - 2 >= 1:
            rules.append(Krum(f=f, strict=False))
            rules.append(
                MultiKrum(f=f, m=min(2, n - f - 2), strict=False)
            )
        for rule in rules:
            adapter = make_batched_aggregator(rule)
            straight = adapter.aggregate_batch(batch)
            shuffled = adapter.aggregate_batch(batch[perm])
            assert bitwise_equal(shuffled.vectors, straight.vectors[perm]), (
                rule.name
            )
            for out_slot, in_slot in enumerate(perm):
                np.testing.assert_array_equal(
                    shuffled.selected[out_slot], straight.selected[in_slot]
                )


    @given(batches(min_n=7), st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_bulyan(self, case, pyrandom):
        batch, _f = case
        n = batch.shape[1]
        f = (n - 3) // 4  # largest f with n >= 4f + 3
        perm = list(range(batch.shape[0]))
        pyrandom.shuffle(perm)
        perm = np.asarray(perm)
        vectors, committees = batched_bulyan(batch, f)
        shuffled_vectors, shuffled_committees = batched_bulyan(batch[perm], f)
        assert bitwise_equal(shuffled_vectors, vectors[perm])
        assert bitwise_equal(shuffled_committees, committees[perm])

    @given(batches(), st.randoms(use_true_random=False))
    @settings(max_examples=20, deadline=None)
    def test_geometric_median(self, case, pyrandom):
        # Adversarially tied configurations can legitimately exhaust the
        # iteration budget (a pre-existing Weiszfeld limitation, identical
        # in the loop path); the property is that the *outcome* — result
        # or raise — is equivariant under batch permutation.
        batch, _f = case
        perm = list(range(batch.shape[0]))
        pyrandom.shuffle(perm)
        perm = np.asarray(perm)
        try:
            straight = batched_weiszfeld(batch)
        except ConvergenceError:
            with pytest.raises(ConvergenceError):
                batched_weiszfeld(batch[perm])
            return
        shuffled = batched_weiszfeld(batch[perm])
        assert bitwise_equal(shuffled, straight[perm])


class TestChunkInvariance:
    @given(batches(), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_distances_invariant_to_chunk_size(self, case, chunk_size):
        batch, _f = case
        whole = batched_pairwise_sq_distances(batch)
        chunked = batched_pairwise_sq_distances(batch, chunk_size=chunk_size)
        assert bitwise_equal(whole, chunked)

    @given(batches(), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_krum_scores_invariant_to_chunk_size(self, case, chunk_size):
        batch, f = case
        whole = batched_krum_scores(batch, f)
        chunked = batched_krum_scores(batch, f, chunk_size=chunk_size)
        assert bitwise_equal(whole, chunked)

    @given(batches(min_n=7), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_bulyan_invariant_to_chunk_size(self, case, chunk_size):
        batch, _f = case
        f = (batch.shape[1] - 3) // 4
        whole = make_batched_aggregator(Bulyan(f=f)).aggregate_batch(batch)
        chunked = make_batched_aggregator(
            Bulyan(f=f), chunk_size=chunk_size
        ).aggregate_batch(batch)
        assert bitwise_equal(whole.vectors, chunked.vectors)
        for a, b in zip(whole.selected, chunked.selected):
            assert bitwise_equal(a, b)

    @given(batches(), st.integers(1, 8))
    @settings(max_examples=15, deadline=None)
    def test_geometric_median_invariant_to_chunk_size(self, case, chunk_size):
        batch, _f = case
        rule = GeometricMedian()
        try:
            whole = make_batched_aggregator(rule).aggregate_batch(batch)
        except ConvergenceError:
            with pytest.raises(ConvergenceError):
                make_batched_aggregator(
                    rule, chunk_size=chunk_size
                ).aggregate_batch(batch)
            return
        chunked = make_batched_aggregator(
            rule, chunk_size=chunk_size
        ).aggregate_batch(batch)
        assert bitwise_equal(whole.vectors, chunked.vectors)
