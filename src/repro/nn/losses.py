"""Loss functions with exact gradients.

Each loss implements ``forward(predictions, targets) -> float`` and
``backward() -> dL/d(predictions)``; classification losses fuse the final
softmax/sigmoid with the cross-entropy for numerical stability.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import DimensionMismatchError, LifecycleError

__all__ = [
    "Loss",
    "MeanSquaredError",
    "SoftmaxCrossEntropy",
    "BinaryCrossEntropyWithLogits",
]


class Loss(ABC):
    """Base class for losses; the contract is one backward per forward."""

    @abstractmethod
    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Return the scalar loss averaged over the batch."""

    @abstractmethod
    def backward(self) -> np.ndarray:
        """Return ``dL/d(predictions)`` for the last ``forward`` call."""


class MeanSquaredError(Loss):
    """``L = (1/2B) Σ_b ||pred_b - target_b||²`` over a batch of size B."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None
        self._batch: int = 0

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise DimensionMismatchError(
                f"predictions {predictions.shape} vs targets {targets.shape}"
            )
        self._batch = predictions.shape[0] if predictions.ndim > 0 else 1
        self._diff = predictions - targets
        return float(0.5 * np.sum(self._diff**2) / self._batch)

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise LifecycleError("backward called before forward")
        return self._diff / self._batch


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy on integer class labels, fused and stable.

    ``forward`` takes raw logits of shape ``(B, C)`` and integer targets of
    shape ``(B,)``; the gradient is ``(softmax(logits) - onehot) / B``.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets)
        if logits.ndim != 2:
            raise DimensionMismatchError(f"logits must be (B, C), got {logits.shape}")
        if targets.shape != (logits.shape[0],):
            raise DimensionMismatchError(
                f"targets must be (B,) integer labels, got shape {targets.shape}"
            )
        targets = targets.astype(np.int64)
        if targets.min(initial=0) < 0 or targets.max(initial=0) >= logits.shape[1]:
            raise DimensionMismatchError(
                f"labels must lie in [0, {logits.shape[1]}), got range "
                f"[{targets.min()}, {targets.max()}]"
            )
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        self._probs = exp / exp.sum(axis=1, keepdims=True)
        self._targets = targets
        batch = logits.shape[0]
        log_likelihood = shifted[np.arange(batch), targets] - np.log(
            exp.sum(axis=1)
        )
        return float(-log_likelihood.mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise LifecycleError("backward called before forward")
        batch = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(batch), self._targets] -= 1.0
        return grad / batch

    @property
    def last_probabilities(self) -> np.ndarray:
        """Class probabilities from the most recent forward pass."""
        if self._probs is None:
            raise LifecycleError("no forward pass has been run")
        return self._probs


class BinaryCrossEntropyWithLogits(Loss):
    """Sigmoid + binary cross-entropy on {0,1} targets, fused and stable.

    Uses ``log(1 + e^z) = max(z, 0) + log(1 + e^{-|z|})`` to avoid
    overflow; gradient is ``(sigmoid(z) - t) / B``.
    """

    def __init__(self) -> None:
        self._grad: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if logits.shape != targets.shape:
            raise DimensionMismatchError(
                f"logits {logits.shape} vs targets {targets.shape}"
            )
        batch = logits.shape[0] if logits.ndim > 0 else 1
        softplus = np.maximum(logits, 0.0) + np.log1p(np.exp(-np.abs(logits)))
        loss = softplus - targets * logits
        sigmoid = np.where(
            logits >= 0,
            1.0 / (1.0 + np.exp(-np.clip(logits, -500, None))),
            np.exp(np.clip(logits, None, 500)) / (1.0 + np.exp(np.clip(logits, None, 500))),
        )
        self._grad = (sigmoid - targets) / batch
        return float(loss.sum() / batch)

    def backward(self) -> np.ndarray:
        if self._grad is None:
            raise LifecycleError("backward called before forward")
        return self._grad
