"""Tests for the Sequential container and its flat-parameter view."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.nn.layers import Dense, ReLU, Tanh
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy
from repro.nn.network import Sequential
from tests.helpers import assert_gradients_close, numerical_gradient


@pytest.fixture
def small_net(rng):
    return Sequential([Dense(4, 8, rng=rng), Tanh(), Dense(8, 3, rng=rng)])


class TestSequentialBasics:
    def test_forward_shape(self, small_net, rng):
        out = small_net.forward(rng.standard_normal((5, 4)))
        assert out.shape == (5, 3)

    def test_call_alias(self, small_net, rng):
        x = rng.standard_normal((2, 4))
        np.testing.assert_array_equal(small_net(x), small_net.forward(x))

    def test_num_parameters(self, small_net):
        assert small_net.num_parameters == 4 * 8 + 8 + 8 * 3 + 3

    def test_rejects_empty(self):
        with pytest.raises(DimensionMismatchError):
            Sequential([])

    def test_zero_grad(self, small_net, rng):
        loss = MeanSquaredError()
        small_net.loss_and_flat_gradient(
            rng.standard_normal((2, 4)), rng.standard_normal((2, 3)), loss
        )
        assert np.any(small_net.get_flat_gradient() != 0)
        small_net.zero_grad()
        np.testing.assert_array_equal(
            small_net.get_flat_gradient(), np.zeros(small_net.num_parameters)
        )


class TestFlatParameterView:
    def test_round_trip(self, small_net, rng):
        flat = rng.standard_normal(small_net.num_parameters)
        small_net.set_flat_parameters(flat)
        np.testing.assert_allclose(small_net.get_flat_parameters(), flat)

    def test_set_changes_forward(self, small_net, rng):
        x = rng.standard_normal((3, 4))
        before = small_net.forward(x).copy()
        small_net.set_flat_parameters(
            rng.standard_normal(small_net.num_parameters)
        )
        after = small_net.forward(x)
        assert not np.allclose(before, after)

    def test_rejects_wrong_size(self, small_net):
        with pytest.raises(DimensionMismatchError):
            small_net.set_flat_parameters(np.ones(small_net.num_parameters + 1))


class TestEndToEndGradient:
    def test_flat_gradient_matches_numeric_mse(self, rng):
        net = Sequential([Dense(3, 5, rng=rng), Tanh(), Dense(5, 2, rng=rng)])
        loss = MeanSquaredError()
        x = rng.standard_normal((4, 3))
        y = rng.standard_normal((4, 2))
        _value, analytic = net.loss_and_flat_gradient(x, y, loss)

        def scalar(flat):
            net.set_flat_parameters(flat)
            return loss.forward(net.forward(x), y)

        numeric = numerical_gradient(scalar, net.get_flat_parameters())
        assert_gradients_close(analytic, numeric, rtol=1e-4, atol=1e-7)

    def test_flat_gradient_matches_numeric_softmax(self, rng):
        net = Sequential([Dense(4, 6, rng=rng), ReLU(), Dense(6, 3, rng=rng)])
        loss = SoftmaxCrossEntropy()
        x = rng.standard_normal((5, 4)) + 0.5
        y = rng.integers(0, 3, size=5)
        _value, analytic = net.loss_and_flat_gradient(x, y, loss)

        def scalar(flat):
            net.set_flat_parameters(flat)
            return loss.forward(net.forward(x), y)

        numeric = numerical_gradient(scalar, net.get_flat_parameters())
        assert_gradients_close(analytic, numeric, rtol=1e-3, atol=1e-6)

    def test_gradient_descent_reduces_loss(self, rng):
        net = Sequential([Dense(2, 16, rng=rng), Tanh(), Dense(16, 1, rng=rng)])
        loss = MeanSquaredError()
        x = rng.standard_normal((64, 2))
        y = (x[:, :1] ** 2 + x[:, 1:]) * 0.5
        first = None
        for _step in range(200):
            value, grad = net.loss_and_flat_gradient(x, y, loss)
            if first is None:
                first = value
            net.set_flat_parameters(net.get_flat_parameters() - 0.05 * grad)
        assert value < first * 0.5
