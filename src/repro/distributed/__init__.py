"""Synchronous parameter-server simulation (Section 2's model).

Each round: the server broadcasts ``x_t``; every correct worker returns
``G(x_t, ξ)``; the Byzantine workers — given full knowledge of the honest
proposals — return whatever their :class:`~repro.attacks.Attack` crafts;
the server applies ``x_{t+1} = x_t − γ_t · F(V_1, ..., V_n)``.
"""

from repro.distributed.messages import GradientMessage, ParameterBroadcast
from repro.distributed.metrics import RoundRecord, TrainingHistory
from repro.distributed.schedules import (
    ConstantSchedule,
    InverseTimeSchedule,
    LearningRateSchedule,
    StepDecaySchedule,
)
from repro.distributed.server import ParameterServer
from repro.distributed.simulator import TrainingSimulation
from repro.distributed.worker import ByzantineWorker, HonestWorker, Worker

__all__ = [
    "ParameterBroadcast",
    "GradientMessage",
    "LearningRateSchedule",
    "ConstantSchedule",
    "InverseTimeSchedule",
    "StepDecaySchedule",
    "ParameterServer",
    "Worker",
    "HonestWorker",
    "ByzantineWorker",
    "TrainingSimulation",
    "RoundRecord",
    "TrainingHistory",
]
