"""Baseline choice functions.

* :class:`Average` / :class:`WeightedAverage` — the linear rules that
  Lemma 3.1 proves non-robust.
* :class:`ClosestToAll` — the distance-based rule of Figure 2, defeated
  by two colluding Byzantine workers.
* :class:`MinimalDiameterSubset` — the majority-based rule the paper
  mentions as robust but exponentially expensive.
* :class:`CoordinateWiseMedian`, :class:`TrimmedMean`,
  :class:`GeometricMedian` — classical robust statistics used by
  follow-up work, included for the ablation benches.
"""

from repro.baselines.average import Average, WeightedAverage
from repro.baselines.distance_based import ClosestToAll
from repro.baselines.majority import MinimalDiameterSubset
from repro.baselines.medians import (
    CoordinateWiseMedian,
    GeometricMedian,
    TrimmedMean,
)

__all__ = [
    "Average",
    "WeightedAverage",
    "ClosestToAll",
    "MinimalDiameterSubset",
    "CoordinateWiseMedian",
    "TrimmedMean",
    "GeometricMedian",
]
