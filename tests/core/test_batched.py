"""Tests for the batched-kernel registry plumbing and its validation.

The bit-for-bit kernel/loop identity lives in
``tests/engine/test_differential.py``; this module covers the registry
surface itself — native-kernel coverage, chunk-size validation, and the
grouping rules.
"""

import numpy as np
import pytest

from repro.baselines.medians import GeometricMedian
from repro.core.batched import (
    batched_kernel_names,
    batched_krum_scores,
    has_batched_kernel,
    make_batched_aggregator,
)
from repro.core.bulyan import Bulyan
from repro.core.krum import Krum
from repro.exceptions import ConfigurationError, DimensionMismatchError


class TestNativeKernelCoverage:
    def test_bulyan_and_geometric_median_are_native(self):
        for rule in (Bulyan(f=1), GeometricMedian()):
            assert has_batched_kernel(rule), rule.name
            adapter = make_batched_aggregator(rule)
            assert adapter.is_native, rule.name

    def test_kernel_names_list_new_rules(self):
        names = batched_kernel_names()
        assert "Bulyan" in names
        assert "GeometricMedian" in names

    def test_differently_configured_medians_do_not_group(self):
        # GeometricMedian's name encodes non-default parameters, so the
        # (type, name) group key keeps configurations apart.
        with pytest.raises(ConfigurationError, match="differently-configured"):
            make_batched_aggregator(
                [GeometricMedian(), GeometricMedian(tolerance=1e-12)]
            )


class TestChunkSizeValidation:
    """Regression: a non-positive chunk size used to die with a bare
    ``ValueError`` from ``range()`` (or silently return garbage for
    negative values)."""

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_batched_krum_scores_rejects_nonpositive(self, bad, rng):
        batch = rng.standard_normal((4, 9, 3))
        with pytest.raises(DimensionMismatchError, match="chunk_size"):
            batched_krum_scores(batch, 1, chunk_size=bad)

    @pytest.mark.parametrize("bad", [0, -2])
    @pytest.mark.parametrize(
        "rule_factory", [lambda: Krum(f=1), lambda: Bulyan(f=1), GeometricMedian]
    )
    def test_kernels_reject_nonpositive_chunk(self, bad, rule_factory, rng):
        batch = rng.standard_normal((3, 9, 4))
        adapter = make_batched_aggregator(rule_factory(), chunk_size=bad)
        with pytest.raises(DimensionMismatchError, match="chunk_size"):
            adapter.aggregate_batch(batch)

    def test_oversized_chunk_is_fine(self, rng):
        batch = rng.standard_normal((3, 9, 4))
        scores = batched_krum_scores(batch, 1, chunk_size=1000)
        np.testing.assert_array_equal(scores, batched_krum_scores(batch, 1))
