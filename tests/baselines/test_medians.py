"""Tests for coordinate median, trimmed mean and geometric median."""

import numpy as np
import pytest

from repro.baselines.medians import (
    CoordinateWiseMedian,
    GeometricMedian,
    TrimmedMean,
)
from repro.exceptions import ByzantineToleranceError


class TestCoordinateWiseMedian:
    def test_matches_numpy(self, rng):
        vectors = rng.standard_normal((9, 5))
        np.testing.assert_allclose(
            CoordinateWiseMedian().aggregate(vectors), np.median(vectors, axis=0)
        )

    def test_resists_minority_outliers(self, honest_cloud):
        byzantine = 1e9 * np.ones((4, 8))
        stack = np.vstack([honest_cloud, byzantine])
        out = CoordinateWiseMedian().aggregate(stack)
        np.testing.assert_allclose(out, np.full(8, 2.0), atol=0.5)


class TestTrimmedMean:
    def test_f_zero_is_average(self, rng):
        vectors = rng.standard_normal((5, 3))
        np.testing.assert_allclose(
            TrimmedMean(f=0).aggregate(vectors), vectors.mean(axis=0)
        )

    def test_trims_extremes_per_coordinate(self):
        vectors = np.array([[0.0], [1.0], [2.0], [100.0], [-100.0]])
        out = TrimmedMean(f=1).aggregate(vectors)
        np.testing.assert_allclose(out, [1.0])

    def test_output_within_honest_range_when_f_correct(self, honest_cloud, rng):
        byzantine = 1e6 * rng.standard_normal((3, 8))
        stack = np.vstack([honest_cloud, byzantine])
        out = TrimmedMean(f=3).aggregate(stack)
        assert np.all(out >= honest_cloud.min(axis=0) - 1e-9)
        assert np.all(out <= honest_cloud.max(axis=0) + 1e-9)

    def test_requires_n_greater_than_2f(self):
        with pytest.raises(ByzantineToleranceError, match="n > 2f"):
            TrimmedMean(f=2).aggregate(np.zeros((4, 2)))


class TestGeometricMedian:
    def test_collinear_median(self):
        vectors = np.array([[0.0], [1.0], [10.0]])
        out = GeometricMedian().aggregate(vectors)
        assert out[0] == pytest.approx(1.0, abs=1e-6)

    def test_symmetric_configuration(self):
        # Vertices of an equilateral-ish symmetric set: median at centroid.
        vectors = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        out = GeometricMedian().aggregate(vectors)
        np.testing.assert_allclose(out, [0.0, 0.0], atol=1e-7)

    def test_single_point(self):
        out = GeometricMedian().aggregate(np.array([[3.0, 4.0]]))
        np.testing.assert_array_equal(out, [3.0, 4.0])

    def test_two_points_median_between(self):
        # Any point on the segment minimizes; Weiszfeld returns the midpoint
        # by symmetry of its initialization.
        vectors = np.array([[0.0, 0.0], [2.0, 0.0]])
        out = GeometricMedian().aggregate(vectors)
        assert 0.0 <= out[0] <= 2.0
        assert out[1] == pytest.approx(0.0, abs=1e-9)

    def test_majority_at_point_pins_median(self):
        # With > n/2 points at the same location, the geometric median IS
        # that location (breakdown-point property).
        vectors = np.vstack([np.tile([5.0, 5.0], (6, 1)), [[100.0, -3.0]], [[-40.0, 7.0]]])
        out = GeometricMedian().aggregate(vectors)
        np.testing.assert_allclose(out, [5.0, 5.0], atol=1e-6)

    def test_resists_far_outliers_better_than_mean(self, honest_cloud):
        byzantine = 1e6 * np.ones((4, 8))
        stack = np.vstack([honest_cloud, byzantine])
        gm = GeometricMedian().aggregate(stack)
        mean = stack.mean(axis=0)
        truth = np.full(8, 2.0)
        assert np.linalg.norm(gm - truth) < np.linalg.norm(mean - truth) / 1e3

    def test_gradient_optimality(self, rng):
        # At the optimum the sum of unit vectors toward the points ~ 0.
        vectors = rng.standard_normal((15, 3))
        out = GeometricMedian(tolerance=1e-12).aggregate(vectors)
        diffs = vectors - out
        norms = np.linalg.norm(diffs, axis=1)
        residual = (diffs / norms[:, None]).sum(axis=0)
        assert np.linalg.norm(residual) < 1e-4
