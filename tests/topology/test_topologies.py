"""Topology registry and graph-family invariants.

Every built-in must produce symmetric, self-loop-free, sorted
neighborhoods; seeded families must round-trip deterministically across
fresh binds; and the structured families must satisfy their defining
properties (circulant shift-invariance for the ring, exact degree for
k-regular, the p = 0 / p = 1 extremes for Erdős–Rényi, block constancy
for the time-varying graph).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.topology import (
    CompleteTopology,
    RingTopology,
    Topology,
    available_topologies,
    counter_uniform,
    make_topology,
    register_topology,
    topology_factory,
)

ALL_TOPOLOGIES = [
    ("complete", {}),
    ("ring", {}),
    ("ring", {"degree": 4}),
    ("k-regular", {"degree": 4}),
    ("erdos-renyi", {"edge_prob": 0.4}),
    ("time-varying", {"edge_prob": 0.4, "rewire_period": 3}),
]


def bound(name, kwargs, num_nodes=12, seed=7) -> Topology:
    return make_topology(name, kwargs).bind(
        num_nodes, np.random.default_rng(seed)
    )


class TestRegistry:
    def test_builtins_registered(self):
        assert available_topologies() == [
            "complete",
            "erdos-renyi",
            "k-regular",
            "ring",
            "time-varying",
        ]

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ConfigurationError, match="available"):
            make_topology("torus")
        with pytest.raises(ConfigurationError, match="available"):
            topology_factory("torus")

    def test_bad_kwargs_name_the_factory_parameters(self):
        with pytest.raises(ConfigurationError, match="degree"):
            make_topology("complete", {"degree": 4})

    def test_register_rejects_bad_names(self):
        for bad in ("", None, 3):
            with pytest.raises(ConfigurationError):
                register_topology(bad, CompleteTopology)

    def test_factory_round_trip(self):
        topo = make_topology("ring", {"degree": 4})
        assert isinstance(topo, RingTopology)
        assert topo.degree == 4

    def test_odd_or_tiny_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            make_topology("ring", {"degree": 3})
        with pytest.raises(ConfigurationError):
            make_topology("ring", {"degree": 0})
        with pytest.raises(ConfigurationError):
            make_topology("k-regular", {"degree": 5})

    def test_bad_edge_prob_rejected(self):
        for p in (-0.1, 1.5):
            with pytest.raises(ConfigurationError):
                make_topology("erdos-renyi", {"edge_prob": p})

    def test_bad_rewire_period_rejected(self):
        with pytest.raises(ConfigurationError):
            make_topology("time-varying", {"rewire_period": 0})


class TestGraphInvariants:
    @pytest.mark.parametrize("name,kwargs", ALL_TOPOLOGIES)
    def test_neighbors_sorted_in_range_no_self_loop(self, name, kwargs):
        topo = bound(name, kwargs)
        for t in range(4):
            for v in range(12):
                nb = topo.neighbors(v, t)
                assert nb.dtype == np.int64
                assert np.array_equal(nb, np.unique(nb))  # sorted, distinct
                assert v not in nb
                assert np.all((nb >= 0) & (nb < 12))

    @pytest.mark.parametrize("name,kwargs", ALL_TOPOLOGIES)
    def test_undirected_symmetry(self, name, kwargs):
        topo = bound(name, kwargs)
        for t in range(4):
            for v in range(12):
                for u in topo.neighbors(v, t):
                    assert v in topo.neighbors(int(u), t), (name, v, u, t)

    @pytest.mark.parametrize("name,kwargs", ALL_TOPOLOGIES)
    def test_seeded_determinism_round_trip(self, name, kwargs):
        """Fresh binds from equal seeds give identical graphs, and the
        query order never matters (pure neighbors functions)."""
        a = bound(name, kwargs, seed=99)
        b = bound(name, kwargs, seed=99)
        forward = [a.neighbors(v, t) for t in range(3) for v in range(12)]
        backward = [
            b.neighbors(v, t)
            for t in reversed(range(3))
            for v in reversed(range(12))
        ]
        for nb_a, nb_b in zip(forward, reversed(backward)):
            assert np.array_equal(nb_a, nb_b)

    @pytest.mark.parametrize("name,kwargs", ALL_TOPOLOGIES)
    def test_repeated_queries_are_pure(self, name, kwargs):
        topo = bound(name, kwargs)
        first = topo.neighbors(5, 2)
        for _ in range(3):
            assert np.array_equal(topo.neighbors(5, 2), first)

    def test_unbound_topology_refuses_queries(self):
        with pytest.raises(ConfigurationError, match="bind"):
            make_topology("ring").neighbors(0, 0)

    def test_out_of_range_node_rejected(self):
        topo = bound("ring", {})
        for v in (-1, 12):
            with pytest.raises(ConfigurationError):
                topo.neighbors(v, 0)


class TestFamilies:
    def test_complete_is_everyone_else(self):
        topo = bound("complete", {})
        for v in range(12):
            expected = np.asarray(
                [u for u in range(12) if u != v], dtype=np.int64
            )
            assert np.array_equal(topo.neighbors(v, 0), expected)

    def test_ring_rotation_relabeling_property(self):
        """Circulant graphs are shift-invariant: relabeling every node
        by +1 (mod n) maps neighborhoods onto neighborhoods."""
        topo = bound("ring", {"degree": 4}, num_nodes=11)
        for v in range(11):
            rotated = np.sort((topo.neighbors(v, 0) + 1) % 11)
            assert np.array_equal(rotated, topo.neighbors((v + 1) % 11, 0))

    def test_k_regular_has_exact_degree(self):
        topo = bound("k-regular", {"degree": 6}, num_nodes=13)
        for v in range(13):
            assert len(topo.neighbors(v, 0)) == 6

    def test_k_regular_degree_needs_enough_nodes(self):
        with pytest.raises(ConfigurationError, match="nodes"):
            make_topology("k-regular", {"degree": 8}).bind(
                8, np.random.default_rng(0)
            )

    def test_ring_degree_needs_enough_nodes(self):
        with pytest.raises(ConfigurationError, match="nodes"):
            make_topology("ring", {"degree": 6}).bind(
                6, np.random.default_rng(0)
            )

    def test_erdos_renyi_extremes(self):
        full = bound("erdos-renyi", {"edge_prob": 1.0})
        empty = bound("erdos-renyi", {"edge_prob": 0.0})
        complete = bound("complete", {})
        for v in range(12):
            assert np.array_equal(
                full.neighbors(v, 0), complete.neighbors(v, 0)
            )
            assert empty.neighbors(v, 0).size == 0

    def test_erdos_renyi_static_across_rounds(self):
        topo = bound("erdos-renyi", {"edge_prob": 0.5})
        for v in range(12):
            nb = topo.neighbors(v, 0)
            for t in range(1, 5):
                assert np.array_equal(topo.neighbors(v, t), nb)

    def test_time_varying_constant_within_block_changes_across(self):
        topo = bound("time-varying", {"edge_prob": 0.5, "rewire_period": 3})
        block0 = [topo.neighbors(v, 0) for v in range(12)]
        for t in (1, 2):
            for v in range(12):
                assert np.array_equal(topo.neighbors(v, t), block0[v])
        changed = any(
            not np.array_equal(topo.neighbors(v, 3), block0[v])
            for v in range(12)
        )
        assert changed, "rewiring should change some neighborhood"

    def test_bind_returns_fresh_instance(self):
        unbound = make_topology("ring")
        a = unbound.bind(8, np.random.default_rng(0))
        b = unbound.bind(10, np.random.default_rng(0))
        assert a is not unbound and b is not a
        assert a.num_nodes == 8 and b.num_nodes == 10
        assert unbound.num_nodes is None


class TestCounterUniform:
    def test_deterministic_and_uniform_range(self):
        keys = np.arange(10_000, dtype=np.uint64)
        a = counter_uniform(123, keys)
        b = counter_uniform(123, keys)
        assert np.array_equal(a, b)
        assert np.all((a >= 0.0) & (a < 1.0))
        # splitmix64 output should look uniform at this sample size
        assert abs(a.mean() - 0.5) < 0.02

    def test_entropy_decorrelates(self):
        keys = np.arange(1000, dtype=np.uint64)
        a = counter_uniform(1, keys)
        b = counter_uniform(2, keys)
        assert not np.array_equal(a, b)

    def test_vector_matches_scalar_queries(self):
        """Batched and one-at-a-time evaluation agree — the property the
        loop/batched executors rely on."""
        keys = np.arange(64, dtype=np.uint64)
        batched = counter_uniform(7, keys)
        for i, key in enumerate(keys):
            single = counter_uniform(7, np.asarray([key], dtype=np.uint64))
            assert single[0] == batched[i]
