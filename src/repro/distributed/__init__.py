"""Parameter-server simulation (Section 2's model, plus bounded staleness).

Each round: the server broadcasts ``x_t``; every correct worker returns
``G(x_t, ξ)``; the Byzantine workers — given full knowledge of the honest
proposals — return whatever their :class:`~repro.attacks.Attack` crafts;
the server applies ``x_{t+1} = x_t − γ_t · F(V_1, ..., V_n)``.

The asynchronous extension (:mod:`repro.distributed.delays`) relaxes the
synchronous barrier: a :class:`DelaySchedule` models per-worker lag, the
server accepts bounded-stale messages (``max_staleness``), and the
round-t proposal of a worker lagging τ is the gradient it computed at
``x_{t−τ}``.
"""

from repro.distributed.delays import (
    ConstantDelay,
    DelaySchedule,
    PeriodicDelay,
    SeededRandomDelay,
    ZeroDelay,
    available_delay_schedules,
    delay_schedule_factory,
    make_delay_schedule,
    register_delay_schedule,
)
from repro.distributed.messages import GradientMessage, ParameterBroadcast
from repro.distributed.metrics import RoundRecord, TrainingHistory
from repro.distributed.schedules import (
    ConstantSchedule,
    InverseTimeSchedule,
    LearningRateSchedule,
    StepDecaySchedule,
)
from repro.distributed.server import ParameterServer
from repro.distributed.simulator import TrainingSimulation
from repro.distributed.worker import ByzantineWorker, HonestWorker, Worker

__all__ = [
    "ParameterBroadcast",
    "GradientMessage",
    "DelaySchedule",
    "ZeroDelay",
    "ConstantDelay",
    "PeriodicDelay",
    "SeededRandomDelay",
    "register_delay_schedule",
    "available_delay_schedules",
    "delay_schedule_factory",
    "make_delay_schedule",
    "LearningRateSchedule",
    "ConstantSchedule",
    "InverseTimeSchedule",
    "StepDecaySchedule",
    "ParameterServer",
    "Worker",
    "HonestWorker",
    "ByzantineWorker",
    "TrainingSimulation",
    "RoundRecord",
    "TrainingHistory",
]
