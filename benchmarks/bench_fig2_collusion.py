"""E2 — Figure 2: colluders defeat the "closest to all" rule, not Krum.

Reproduces the paper's Figure 2 as a selection-rate measurement: over a
grid of (n, f) and decoy distances, f − 1 colluders park remote decoys
and one trojan sits at the induced barycenter.  The flawed distance-based
rule selects the trojan essentially always once f ≥ 2; Krum never does.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.attacks.base import AttackContext
from repro.attacks.collusion import CollusionAttack
from repro.baselines.distance_based import ClosestToAll
from repro.core.krum import Krum
from repro.experiments.reporting import format_table

TRIALS = 200
DIMENSION = 10


def _selection_rates(n, f, decoy_distance, seed=0):
    """Fraction of trials in which each rule selects a Byzantine vector."""
    rng = np.random.default_rng(seed)
    attack = CollusionAttack(decoy_distance=decoy_distance)
    flawed_rule = ClosestToAll()
    krum_rule = Krum(f=f)
    flawed_hits = krum_hits = 0
    num_honest = n - f
    for trial in range(TRIALS):
        honest = 1.0 + 0.2 * rng.standard_normal((num_honest, DIMENSION))
        context = AttackContext(
            round_index=trial,
            params=np.zeros(DIMENSION),
            honest_gradients=honest,
            byzantine_indices=np.arange(num_honest, n),
            honest_indices=np.arange(num_honest),
            num_workers=n,
            rng=rng,
        )
        stack = np.vstack([honest, attack.craft(context)])
        if int(flawed_rule.aggregate_detailed(stack).selected[0]) >= num_honest:
            flawed_hits += 1
        if int(krum_rule.aggregate_detailed(stack).selected[0]) >= num_honest:
            krum_hits += 1
    return flawed_hits / TRIALS, krum_hits / TRIALS


def bench_fig2_collusion_selection_rates(benchmark):
    grid = [
        (9, 2, 100.0),
        (15, 4, 100.0),
        (21, 6, 100.0),
        (15, 4, 10.0),
        (15, 4, 1e6),
    ]

    def run():
        return [
            (n, f, dist, *_selection_rates(n, f, dist, seed=i))
            for i, (n, f, dist) in enumerate(grid)
        ]

    rows = run_once(benchmark, run)
    emit(
        format_table(
            ["n", "f", "decoy dist", "closest-to-all byz-sel%", "krum byz-sel%"],
            [
                [n, f, dist, 100 * flawed, 100 * krum]
                for n, f, dist, flawed, krum in rows
            ],
            title="Figure 2 — Byzantine selection rate under collusion (f >= 2)",
        )
    )
    for _n, _f, _dist, flawed_rate, krum_rate in rows:
        assert flawed_rate > 0.95, "collusion must defeat closest-to-all"
        assert krum_rate < 0.05, "Krum must reject the colluders"


def bench_fig2_single_byzantine_is_tolerated(benchmark):
    """Control: with f = 1 (no colluders) the distance-based rule is fine —
    that is exactly why the paper needs f >= 2 in Figure 2."""

    def run():
        rng = np.random.default_rng(7)
        hits = 0
        n, num_honest = 10, 9
        for trial in range(TRIALS):
            honest = 1.0 + 0.2 * rng.standard_normal((num_honest, DIMENSION))
            outlier = 1e5 * np.ones((1, DIMENSION))
            stack = np.vstack([honest, outlier])
            if int(ClosestToAll().aggregate_detailed(stack).selected[0]) >= num_honest:
                hits += 1
        del n
        return hits / TRIALS

    rate = run_once(benchmark, run)
    emit(
        format_table(
            ["f", "closest-to-all byz-sel%"],
            [[1, 100 * rate]],
            title="Figure 2 control — one lone outlier never wins",
        )
    )
    assert rate == 0.0
