"""End-to-end integration tests reproducing the paper's headline claims
at small scale (the benches reproduce them at figure scale)."""

import numpy as np
import pytest

from repro.attacks.collusion import CollusionAttack
from repro.attacks.hijack import LinearHijackAttack
from repro.attacks.omniscient import OmniscientAttack
from repro.attacks.random_noise import GaussianAttack
from repro.baselines.average import Average
from repro.baselines.distance_based import ClosestToAll
from repro.core.krum import Krum, MultiKrum
from repro.core.theory import krum_variance_bound
from repro.data.synthetic import make_blobs
from repro.experiments.builders import (
    build_dataset_simulation,
    build_quadratic_simulation,
)
from repro.models.quadratic import QuadraticBowl
from repro.models.softmax import SoftmaxRegressionModel


class TestLemma31EndToEnd:
    def test_hijacked_average_converges_to_attacker_target(self):
        """One Byzantine worker steers averaging-SGD to its chosen point."""
        bowl = QuadraticBowl(8, optimum=np.zeros(8))
        attacker_optimum = np.full(8, 5.0)

        class PullToTarget(LinearHijackAttack):
            def craft(self, context):
                # U = gradient of a bowl centered at the attacker's point,
                # evaluated at x_t: forces SGD toward attacker_optimum.
                self.target = context.params - attacker_optimum
                return super().craft(context)

        sim = build_quadratic_simulation(
            bowl,
            aggregator=Average(),
            num_workers=11,
            num_byzantine=1,
            sigma=0.1,
            attack=PullToTarget(np.zeros(8)),
            learning_rate=0.2,
            lr_timescale=None,
            seed=0,
        )
        sim.run(300)
        assert np.linalg.norm(sim.params - attacker_optimum) < 0.5
        assert bowl.distance_to_optimum(sim.params) > 4.0

    def test_krum_under_same_attack_still_converges(self):
        bowl = QuadraticBowl(8, optimum=np.zeros(8))

        class PullAway(LinearHijackAttack):
            def craft(self, context):
                self.target = context.params - np.full(8, 5.0)
                return super().craft(context)

        sim = build_quadratic_simulation(
            bowl,
            aggregator=Krum(f=1),
            num_workers=11,
            num_byzantine=1,
            sigma=0.1,
            attack=PullAway(np.zeros(8)),
            learning_rate=0.2,
            lr_timescale=None,
            seed=0,
        )
        sim.run(300)
        assert bowl.distance_to_optimum(sim.params) < 1.0


class TestProposition43EndToEnd:
    def test_gradient_norm_enters_theory_basin(self):
        """SGD+Krum drives ‖∇Q‖ into the η·√d·σ basin (Prop. 4.3)."""
        dimension, sigma = 10, 0.05
        n, f = 15, 3
        bowl = QuadraticBowl(dimension)
        sim = build_quadratic_simulation(
            bowl,
            aggregator=Krum(f=f),
            num_workers=n,
            num_byzantine=f,
            sigma=sigma,
            attack=OmniscientAttack(scale=5.0),
            learning_rate=0.3,
            lr_timescale=200.0,
            seed=1,
        )
        history = sim.run(400, eval_every=20)
        basin = krum_variance_bound(n, f, dimension, sigma)
        _rounds, grad_norms = history.series("grad_norm")
        assert grad_norms[-1] <= basin, (
            f"final ‖∇Q‖={grad_norms[-1]:.4f} above basin {basin:.4f}"
        )

    def test_average_fails_same_setting(self):
        bowl = QuadraticBowl(10)
        sim = build_quadratic_simulation(
            bowl,
            aggregator=Average(),
            num_workers=15,
            num_byzantine=3,
            sigma=0.05,
            attack=OmniscientAttack(scale=5.0),
            learning_rate=0.3,
            lr_timescale=200.0,
            seed=1,
        )
        history = sim.run(400, eval_every=20)
        _rounds, grad_norms = history.series("grad_norm")
        basin = krum_variance_bound(15, 3, 10, 0.05)
        assert grad_norms[-1] > basin


class TestDatasetTrainingUnderAttack:
    @pytest.fixture
    def blobs(self):
        return make_blobs(300, num_classes=3, num_features=5, spread=0.6, seed=0)

    def test_krum_trains_through_gaussian_attack(self, blobs):
        model = SoftmaxRegressionModel(5, 3)
        sim = build_dataset_simulation(
            model,
            blobs,
            aggregator=Krum(f=3),
            num_workers=12,
            num_byzantine=3,
            attack=GaussianAttack(sigma=100.0),
            batch_size=16,
            learning_rate=0.3,
            seed=0,
        )
        history = sim.run(80, eval_every=20)
        assert history.final_accuracy > 0.85
        assert history.byzantine_selection_rate() < 0.05

    def test_average_collapses_under_gaussian_attack(self, blobs):
        model = SoftmaxRegressionModel(5, 3)
        sim = build_dataset_simulation(
            model,
            blobs,
            aggregator=Average(),
            num_workers=12,
            num_byzantine=3,
            attack=GaussianAttack(sigma=100.0),
            batch_size=16,
            learning_rate=0.3,
            seed=0,
        )
        history = sim.run(80, eval_every=20)
        assert history.final_accuracy < 0.8

    def test_multikrum_interpolates(self, blobs):
        """Multi-Krum retains robustness while averaging m proposals."""
        model = SoftmaxRegressionModel(5, 3)
        sim = build_dataset_simulation(
            model,
            blobs,
            aggregator=MultiKrum(f=3, m=5),
            num_workers=12,
            num_byzantine=3,
            attack=GaussianAttack(sigma=100.0),
            batch_size=16,
            learning_rate=0.3,
            seed=0,
        )
        history = sim.run(80, eval_every=20)
        assert history.final_accuracy > 0.85


class TestFigure2EndToEnd:
    def test_collusion_poisons_closest_to_all_training(self):
        """Training with the flawed rule under collusion diverges; Krum
        under the identical attack converges."""
        bowl = QuadraticBowl(6, optimum=np.zeros(6))

        def build(rule):
            return build_quadratic_simulation(
                bowl,
                aggregator=rule,
                num_workers=11,
                num_byzantine=3,
                sigma=0.1,
                attack=CollusionAttack(decoy_distance=50.0),
                learning_rate=0.2,
                lr_timescale=None,
                seed=3,
            )

        flawed = build(ClosestToAll())
        flawed_history = flawed.run(150)
        krum = build(Krum(f=3))
        krum.run(150)

        assert bowl.distance_to_optimum(krum.params) < 1.0
        # The flawed rule selected Byzantine proposals routinely.
        assert flawed_history.byzantine_selection_rate() > 0.9
        assert bowl.distance_to_optimum(flawed.params) > 1.0
