"""Robust statistical aggregators: medians and trimmed means.

These postdate or parallel the paper (coordinate-wise median and trimmed
mean were analyzed by Yin et al. 2018; the geometric median is the
classical robust estimator the paper's proof technique is "reminiscent
of").  They are included as ablation baselines: they behave differently
from Krum because they synthesize a new vector instead of selecting a
proposed one.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.core.aggregator import AggregationResult, Aggregator
from repro.exceptions import (
    ByzantineToleranceError,
    ConfigurationError,
    ConvergenceError,
    DimensionMismatchError,
)
from repro.utils.linalg import (
    masked_inverse_distance_weights,
    masked_unit_direction_sum,
)
from repro.utils.validation import check_positive_int

__all__ = [
    "CoordinateWiseMedian",
    "TrimmedMean",
    "GeometricMedian",
    "batched_weiszfeld",
]


class CoordinateWiseMedian(Aggregator):
    """Per-coordinate median of the proposals."""

    name = "coordinate-median"

    def aggregate_detailed(self, vectors: np.ndarray) -> AggregationResult:
        vectors = self._validated(vectors)
        return AggregationResult(vector=np.median(vectors, axis=0))


class TrimmedMean(Aggregator):
    """Per-coordinate mean after dropping the f smallest and f largest.

    Requires ``n > 2f`` so at least one value per coordinate survives the
    trim.
    """

    def __init__(self, f: int):
        self.f = check_positive_int(f, "f", minimum=0)
        self.name = f"trimmed-mean(f={self.f})"

    def check_tolerance(self, num_workers: int) -> None:
        if num_workers <= 2 * self.f:
            raise ByzantineToleranceError(
                f"trimmed mean needs n > 2f, got n={num_workers}, f={self.f}",
                n=num_workers,
                f=self.f,
            )

    def aggregate_detailed(self, vectors: np.ndarray) -> AggregationResult:
        vectors = self._validated(vectors)
        if self.f == 0:
            return AggregationResult(vector=vectors.mean(axis=0))
        ordered = np.sort(vectors, axis=0)
        trimmed = ordered[self.f : -self.f]
        return AggregationResult(vector=trimmed.mean(axis=0))


# Coincidence threshold of the Weiszfeld singularity handling, relative
# to the spread of the current distance profile (with a floor of 1.0 so
# near-zero clouds do not divide by vanishing scales).  An absolute
# threshold would silently never fire for large-magnitude inputs and
# could fire spuriously for tiny ones.
_COINCIDENCE_RTOL = 1e-12

# Objective stagnation below this relative level counts as a stall; see
# the stall-strike commentary in batched_weiszfeld.
_STALL_RTOL = 1e-12

# Weiszfeld defaults, shared by batched_weiszfeld, GeometricMedian's
# constructor, and the default-name check (which must agree with the
# constructor, or identically-configured instances would land in
# different engine batch groups).
_DEFAULT_TOLERANCE = 1e-9
_DEFAULT_MAX_ITERATIONS = 1000

# Relative slack on the Vardi–Zhang comparison ``‖R‖ <= multiplicity``.
# When the residual exceeds the multiplicity by rounding dust only, the
# true median is within float resolution of the data point (the
# objective is flat to first order there) but the strict comparison
# rejects it — and Weiszfeld then crawls sublinearly across a near-flat
# objective until the iteration budget runs out.  A 1e-12 relative
# margin certifies such marginal points while staying far below any
# statistically meaningful difference.
_VZ_SLACK = 1e-12


def _row_norms(vectors, xp: ArrayBackend):
    """Per-row euclidean norms along the last axis, NaN/Inf passed through."""
    with xp.errstate():
        return xp.sqrt(xp.einsum("...d,...d->...", vectors, vectors))


def _point_optimality(values, anchors, xp: ArrayBackend):
    """Vardi–Zhang verdict for per-scenario anchor data points.

    ``optimal[b]`` certifies ``anchors[b]`` as scenario b's geometric
    median: the residual norm of the unit vectors from the anchor to the
    points outside its coincidence cluster is within the cluster
    multiplicity (including the degenerate case of every row coinciding
    with the anchor).  The verdict depends only on the fixed data
    points, never on the current iterate — the Weiszfeld loop caches it
    per (scenario, nearest point) instead of re-deriving it every
    iteration.  Point distances come from direct row differences (no
    GEMM expansion — its cancellation error at large offsets would
    corrupt the scale-relative coincidence test).
    """
    with xp.errstate():
        offsets = values - anchors[:, None, :]
        point_distances = xp.sqrt(xp.einsum("bnd,bnd->bn", offsets, offsets))
    r_norm, multiplicity, others = _vardi_zhang_residual(
        values, anchors, point_distances, xp, offsets=offsets
    )
    return ~xp.any(others, axis=1) | (r_norm <= multiplicity * (1.0 + _VZ_SLACK))


def _vardi_zhang_residual(
    values,
    anchors,
    distances,
    xp: ArrayBackend,
    *,
    offsets=None,
):
    """Vardi–Zhang residual around per-scenario anchor points.

    Rows within ``_COINCIDENCE_RTOL`` of the anchor (relative to the
    scenario's distance spread) form the anchor's cluster; the residual
    ``R`` is the summed unit vector from the anchor to the *other* rows
    (``offsets`` forwards a precomputed ``values - anchors`` tensor).
    Returns ``(r_norm (B,), multiplicity (B,), others (B, n))``.
    """
    scale = xp.fmax(1.0, xp.max(distances, axis=1))
    coincident = distances <= _COINCIDENCE_RTOL * scale[:, None]
    others = ~coincident
    residual = masked_unit_direction_sum(
        values, anchors, distances, others, offsets=offsets, backend=xp
    )
    r_norm = _row_norms(residual, xp)
    multiplicity = xp.astype(
        xp.count_nonzero(coincident, axis=1), xp.float_dtype
    )
    return r_norm, multiplicity, others


@dataclass
class _LaneState:
    """Per-lane state of the lock-step Weiszfeld iteration.

    Everything that must stay aligned across the loop's two compaction
    points lives here: :meth:`compact` filters *every* field, so adding
    a new per-lane array cannot silently desynchronize one of the
    compaction sites.  (Arrays local to a single pass — ``diffs``,
    step residuals, ... — are filtered at their own site instead.)
    """

    indices: np.ndarray  # output slots of the still-active lanes
    values: np.ndarray  # (A, n, d) data points
    estimates: np.ndarray  # (A, d) current iterates
    cached_nearest: np.ndarray  # (A,) nearest point of the cached verdict
    cached_optimal: np.ndarray  # (A,) cached Vardi–Zhang verdict
    objectives: np.ndarray  # (A,) running best objective
    strikes: np.ndarray  # (A,) consecutive stall count
    shifts: np.ndarray  # (A,) last step's shift

    def compact(self, keep: np.ndarray) -> None:
        """Drop finished lanes from every per-lane array."""
        for field in fields(self):
            setattr(self, field.name, getattr(self, field.name)[keep])


def batched_weiszfeld(
    stacks,
    *,
    tolerance: float = _DEFAULT_TOLERANCE,
    max_iterations: int = _DEFAULT_MAX_ITERATIONS,
    backend: ArrayBackend | str | None = None,
):
    """Geometric medians of a ``(B, n, d)`` batch via Weiszfeld iteration.

    Runs every scenario's fixed-point iteration in lock-step with
    per-scenario convergence masking: scenarios that terminate are
    committed to the output and dropped from the working batch, the rest
    keep iterating.  Every arithmetic step is a per-scenario (lane-wise)
    tensor operation, so slice ``b`` of the result is bit-for-bit what a
    batch of the single scenario ``stacks[b]`` produces — which is
    exactly how :class:`GeometricMedian` runs it (``B = 1``).  The
    whole solve speaks the :class:`~repro.backend.ArrayBackend`
    namespace (``backend=`` selects it; numpy by default, where results
    are bit-for-bit what the pre-seam implementation produced).

    A scenario terminates when (in priority order per iteration):

    1. the Vardi–Zhang optimality test certifies the data point nearest
       to the iterate as the median (Weiszfeld converges only
       sublinearly toward an optimal *data* point, so testing the
       condition directly is what makes termination fast);
    2. the iterate coincides with a data-point cluster whose residual
       certifies the current estimate (the classical singularity case);
    3. the iterate's shift drops below ``tolerance`` (relative to the
       estimate's magnitude), or the objective stalls for three
       consecutive iterations — near a multiplicity-> 1 data point the
       iteration becomes sublinear: the shift plateaus while the
       objective improves only at floating-point-noise scale, and the
       estimate is positionally converged far below any statistically
       meaningful precision by then (the stall-strike rule).

    Raises :class:`~repro.exceptions.ConvergenceError` when any scenario
    exhausts ``max_iterations`` (e.g. NaN proposals, which never satisfy
    any convergence predicate).
    """
    xp = resolve_backend(backend)
    stacks = xp.asarray(stacks)
    if stacks.ndim != 3:
        raise DimensionMismatchError(
            f"batched Weiszfeld expects shape (B, n, d), "
            f"got {tuple(stacks.shape)}"
        )
    if 0 in tuple(stacks.shape):
        raise DimensionMismatchError(
            f"batch must be non-empty in every axis, got {tuple(stacks.shape)}"
        )
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
    if max_iterations < 1:
        raise ConfigurationError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )
    batch, n, dimension = stacks.shape
    results = xp.empty((batch, dimension))
    if n == 1:
        results[:] = stacks[:, 0]
        return results

    lanes = _LaneState(
        indices=xp.arange(batch),  # output slots of still-active lanes
        values=stacks,
        estimates=xp.mean(stacks, axis=1),
        # Lazy per-lane cache of the nearest point's optimality verdict:
        # the verdict is estimate-independent, and the nearest point
        # rarely changes once the iterate homes in, so most iterations
        # reuse it.
        cached_nearest=xp.full((batch,), -1, dtype=xp.int_dtype),
        cached_optimal=xp.zeros((batch,), dtype=xp.bool_dtype),
        objectives=xp.empty((batch,)),
        strikes=xp.zeros((batch,), dtype=xp.int_dtype),
        shifts=xp.full((batch,), float("nan")),
    )

    # The loop runs max_iterations Weiszfeld steps; the shift/stall
    # verdict on step t is evaluated at the top of pass t + 1, where the
    # freshly computed estimate distances double as step t's objective —
    # one distance pass per iteration instead of two.  The committed
    # values and the check order (previous step's shift/stall, then the
    # optimality test, then cluster certification) are unchanged.
    for pass_index in range(max_iterations + 1):
        with xp.errstate():
            diffs = lanes.values - lanes.estimates[:, None, :]
        distances = _row_norms(diffs, xp)
        current_objectives = xp.sum(distances, axis=1)

        if pass_index > 0:
            # 3. Stall strikes and the shift tolerance for the previous
            #    step (``lanes.estimates`` is that step's result).
            stalled = (
                current_objectives
                >= lanes.objectives - _STALL_RTOL * xp.fmax(1.0, lanes.objectives)
            )
            lanes.strikes = xp.where(stalled, lanes.strikes + 1, 0)
            converged = lanes.shifts <= tolerance * xp.fmax(
                1.0, _row_norms(lanes.estimates, xp)
            )
            finished = converged | (lanes.strikes >= 3)
            lanes.objectives = xp.minimum(lanes.objectives, current_objectives)
            if xp.any(finished):
                results[lanes.indices[finished]] = lanes.estimates[finished]
                keep = ~finished
                if not xp.any(keep):
                    return results
                lanes.compact(keep)
                diffs = diffs[keep]
                distances = distances[keep]
        else:
            lanes.objectives = current_objectives

        if pass_index == max_iterations:
            break  # final pass only settles the last step's verdict

        rows = xp.arange(lanes.values.shape[0])

        # 1. Optimality test at the nearest data point, served from the
        #    per-lane cache and recomputed only where `nearest` moved.
        nearest = xp.argmin(distances, axis=1)
        points = lanes.values[rows, nearest]
        stale = nearest != lanes.cached_nearest
        if xp.any(stale):
            lanes.cached_optimal[stale] = _point_optimality(
                lanes.values[stale], points[stale], xp
            )
            lanes.cached_nearest[stale] = nearest[stale]
        optimal = xp.copy(lanes.cached_optimal)

        # 2. Singularity handling at the current iterate.  Lanes whose
        #    iterate sits on a data-point cluster either stop (residual
        #    within the cluster multiplicity) or will take the dampened
        #    Vardi–Zhang step; clean lanes take the plain step.  The
        #    residual reuses the already-computed ``diffs`` and doubles
        #    as the step direction below.
        step_scale = xp.fmax(1.0, xp.max(distances, axis=1))
        at_point = distances <= _COINCIDENCE_RTOL * step_scale[:, None]
        step_others = ~at_point
        at_cluster = xp.any(at_point, axis=1)
        all_coincident = at_cluster & ~xp.any(step_others, axis=1)
        weights = masked_inverse_distance_weights(
            distances, step_others, backend=xp
        )
        weight_sum = xp.sum(weights, axis=1)
        step_r = masked_unit_direction_sum(
            lanes.values,
            lanes.estimates,
            distances,
            step_others,
            offsets=diffs,
            backend=xp,
        )
        step_r_norm = _row_norms(step_r, xp)
        step_mult = xp.astype(
            xp.count_nonzero(at_point, axis=1), xp.float_dtype
        )
        certified = at_cluster & xp.any(step_others, axis=1) & (
            step_r_norm <= step_mult * (1.0 + _VZ_SLACK)
        )

        # Commit lanes finishing before the step, in priority order.
        done = xp.copy(optimal)
        results[lanes.indices[optimal]] = points[optimal]
        stop_current = (all_coincident | certified) & ~done
        results[lanes.indices[stop_current]] = lanes.estimates[stop_current]
        done |= stop_current
        if xp.any(done):
            keep = ~done
            if not xp.any(keep):
                return results
            lanes.compact(keep)
            step_r = step_r[keep]
            weight_sum = weight_sum[keep]
            step_r_norm = step_r_norm[keep]
            step_mult = step_mult[keep]
            at_cluster = at_cluster[keep]

        # The Weiszfeld step itself: the fixed-point target is the
        # estimate displaced by the weighted residual,
        # ``T = e + R / Σw`` (one small correction instead of a second
        # full-size weighted sum).
        with xp.errstate():
            tentative = lanes.estimates + step_r / weight_sum[:, None]
            dampening = (step_r_norm - step_mult) / xp.where(
                step_r_norm > 0.0, step_r_norm, 1.0
            )
            corrected = (
                (1.0 - dampening)[:, None] * lanes.estimates
                + dampening[:, None] * tentative
            )
            new_estimates = xp.where(at_cluster[:, None], corrected, tentative)
            lanes.shifts = _row_norms(new_estimates - lanes.estimates, xp)
        lanes.estimates = new_estimates

    raise ConvergenceError(
        f"Weiszfeld iteration did not converge in {max_iterations} steps "
        f"for {len(lanes.indices)} of {batch} scenario(s) "
        f"(last shift {float(xp.max(lanes.shifts)):.3g})"
    )


class GeometricMedian(Aggregator):
    """Geometric median via the Weiszfeld fixed-point iteration.

    Minimizes ``Σ_i ‖z − V_i‖`` (unsquared — the squared version is the
    barycenter and not robust).  When an iterate lands on an input point
    the standard singularity fix is applied (treat that point as its own
    cluster and test optimality before continuing); coincidence is
    detected relative to the scenario's distance spread, so the rule is
    translation-invariant for large-magnitude inputs.

    The solve itself is :func:`batched_weiszfeld` with a batch of one —
    the same code path the engine's vectorized kernel runs, which keeps
    the two bit-for-bit identical.
    """

    def __init__(
        self,
        *,
        tolerance: float = _DEFAULT_TOLERANCE,
        max_iterations: int = _DEFAULT_MAX_ITERATIONS,
    ):
        if tolerance <= 0:
            # A bad constructor parameter is a configuration mistake, not
            # a runtime convergence failure.
            raise ConfigurationError(
                f"tolerance must be positive, got {tolerance}"
            )
        self.tolerance = float(tolerance)
        self.max_iterations = check_positive_int(
            max_iterations, "max_iterations", minimum=1
        )
        # Non-default parameters must show up in the name: the engine
        # groups scenarios by (type, name) for batched aggregation, so
        # the name has to distinguish differently-configured instances.
        if (
            self.tolerance == _DEFAULT_TOLERANCE
            and self.max_iterations == _DEFAULT_MAX_ITERATIONS
        ):
            self.name = "geometric-median"
        else:
            # repr round-trips the exact float, so distinct tolerances
            # can never collide to one name (equal names mean equal
            # behavior — the grouping contract).
            self.name = (
                f"geometric-median(tol={self.tolerance!r},"
                f"max_iter={self.max_iterations})"
            )

    def aggregate_detailed(self, vectors: np.ndarray) -> AggregationResult:
        vectors = self._validated(vectors)
        return AggregationResult(vector=self._weiszfeld(vectors))

    def _weiszfeld(self, vectors: np.ndarray) -> np.ndarray:
        return batched_weiszfeld(
            vectors[None, :, :],
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
        )[0]
