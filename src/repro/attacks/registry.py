"""Name-based attack factory shared by configs, the CLI and the engine.

Mirrors :mod:`repro.core.registry` for attacks: a scenario names a
strategy ("gaussian", "omniscient", ...) plus keyword arguments, and the
registry builds the :class:`~repro.attacks.base.Attack`.  Only attacks
expressible from plain data are registered — scalars, or for
``"composite"`` a sequence of ``(name, kwargs, count)`` triples resolved
recursively — while strategies that need runtime objects (models, data
shards) are built directly by the benches that use them.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.attacks.base import Attack
from repro.exceptions import ConfigurationError
from repro.utils.validation import check_factory_kwargs

__all__ = [
    "register_attack",
    "available_attacks",
    "attack_factory",
    "make_attack",
]

_REGISTRY: dict[str, Callable[..., Attack]] = {}


def register_attack(name: str, factory: Callable[..., Attack]) -> None:
    """Register a strategy under ``name``; later registrations override."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"attack name must be a non-empty string, got {name!r}"
        )
    _REGISTRY[name] = factory


def available_attacks() -> list[str]:
    """Sorted list of registered strategy names."""
    return sorted(_REGISTRY)


def attack_factory(name: str) -> Callable[..., Attack]:
    """The registered factory for ``name`` (for signature introspection)."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown attack {name!r}; available: {available_attacks()}"
        )
    return _REGISTRY[name]


def make_attack(
    name: str | None, kwargs: Mapping[str, object] | None = None
) -> Attack | None:
    """Build a strategy by name, e.g. ``make_attack("gaussian", {"sigma": 50})``.

    ``name=None`` returns ``None`` (the attack-free arm), so callers can
    thread an optional attack spec straight through.  Keyword arguments
    that do not fit the factory's signature (unknown names, missing
    required parameters) raise :class:`ConfigurationError` naming the
    attack and the parameters it accepts, instead of leaking the
    factory's raw ``TypeError`` — a bad scenario spec is a configuration
    mistake, and callers catching library errors should see it as one.
    """
    if name is None:
        return None
    factory = attack_factory(name)
    resolved = dict(kwargs or {})
    check_factory_kwargs("attack", name, factory, resolved)
    return factory(**resolved)


def _composite_attack(parts) -> Attack:
    """Registry adapter for :class:`~repro.attacks.composite.CompositeAttack`.

    ``parts`` is a sequence of ``(attack_name, kwargs, count)`` triples,
    each resolved through this registry — so declarative scenario specs
    can express mixed failure modes, e.g.::

        ("composite", {"parts": (("crash", {}, 2),
                                 ("sign-flip", {"scale": 8.0}, 2))})
    """
    from repro.attacks.composite import CompositeAttack

    try:
        part_list = list(parts)
    except TypeError as error:
        raise ConfigurationError(
            f"composite parts must be a sequence of (name, kwargs, count) "
            f"triples, got {parts!r}"
        ) from error
    built: list[tuple[Attack, int]] = []
    for part in part_list:
        try:
            part_name, part_kwargs, count = part
        except (TypeError, ValueError) as error:
            raise ConfigurationError(
                f"composite parts must be (name, kwargs, count) triples, "
                f"got {part!r}"
            ) from error
        attack = make_attack(part_name, part_kwargs)
        if attack is None:
            raise ConfigurationError(
                "composite parts cannot use the attack-free arm (None)"
            )
        if not isinstance(count, int) or isinstance(count, bool):
            raise ConfigurationError(
                f"composite part counts must be integers, got {count!r} "
                f"for {part_name!r}"
            )
        built.append((attack, count))
    return CompositeAttack(built)


def _probe_attack(
    inner: str = "sign-flip",
    inner_kwargs: Mapping[str, object] | None = None,
    *,
    grow: float = 2.0,
    shrink: float = 0.5,
    initial_scale: float = 1.0,
    min_scale: float = 1e-3,
    max_scale: float = 1e3,
) -> Attack:
    """Registry adapter for
    :class:`~repro.attacks.adaptive.DefenseProbingAttack`: the wrapped
    attack is named through this registry, e.g.
    ``("probe", {"inner": "little-is-enough"})``."""
    from repro.attacks.adaptive import DefenseProbingAttack

    wrapped = make_attack(inner, inner_kwargs)
    if wrapped is None:
        raise ConfigurationError(
            "probe cannot wrap the attack-free arm (inner=None)"
        )
    return DefenseProbingAttack(
        wrapped,
        grow=grow,
        shrink=shrink,
        initial_scale=initial_scale,
        min_scale=min_scale,
        max_scale=max_scale,
    )


def _probe_bandit_attack(
    inner: str = "sign-flip",
    inner_kwargs: Mapping[str, object] | None = None,
    *,
    arms: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    exploration: float = 1.0,
) -> Attack:
    """Registry adapter for
    :class:`~repro.attacks.adaptive.BanditProbingAttack`: the wrapped
    attack is named through this registry, e.g.
    ``("probe-bandit", {"inner": "little-is-enough"})``."""
    from repro.attacks.adaptive import BanditProbingAttack

    wrapped = make_attack(inner, inner_kwargs)
    if wrapped is None:
        raise ConfigurationError(
            "probe-bandit cannot wrap the attack-free arm (inner=None)"
        )
    return BanditProbingAttack(wrapped, arms=arms, exploration=exploration)


def _register_builtins() -> None:
    # Imported lazily to avoid a circular import at package load.
    from repro.attacks.adaptive import (
        LipschitzMimicryAttack,
        StalenessGamingAttack,
    )
    from repro.attacks.base import BenignAttack
    from repro.attacks.collusion import CollusionAttack
    from repro.attacks.modern import InnerProductAttack, LittleIsEnoughAttack
    from repro.attacks.omniscient import OmniscientAttack
    from repro.attacks.random_noise import GaussianAttack
    from repro.attacks.simple import (
        CrashAttack,
        NonFiniteAttack,
        SignFlipAttack,
        StragglerAttack,
    )

    register_attack("benign", BenignAttack)
    register_attack("composite", _composite_attack)
    register_attack("gaussian", GaussianAttack)
    register_attack("sign-flip", SignFlipAttack)
    register_attack("crash", CrashAttack)
    register_attack("non-finite", NonFiniteAttack)
    register_attack("straggler", StragglerAttack)
    register_attack("collusion", CollusionAttack)
    register_attack("omniscient", OmniscientAttack)
    register_attack("little-is-enough", LittleIsEnoughAttack)
    register_attack("inner-product", InnerProductAttack)
    register_attack("staleness-gaming", StalenessGamingAttack)
    register_attack("lipschitz-mimicry", LipschitzMimicryAttack)
    register_attack("probe", _probe_attack)
    register_attack("probe-bandit", _probe_bandit_attack)


_register_builtins()
