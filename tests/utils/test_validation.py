"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    DimensionMismatchError,
    InvalidVectorError,
)
from repro.utils.validation import (
    check_finite,
    check_positive_int,
    check_probability,
    check_vector_stack,
)


class TestCheckPositiveInt:
    def test_accepts_valid(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(4), "x") == 4

    def test_minimum_zero(self):
        assert check_positive_int(0, "x", minimum=0) == 0

    def test_rejects_below_minimum(self):
        with pytest.raises(ConfigurationError, match="must be >= 1"):
            check_positive_int(0, "x")

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError, match="must be an integer"):
            check_positive_int(1.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "x")

    def test_error_names_parameter(self):
        with pytest.raises(ConfigurationError, match="num_workers"):
            check_positive_int(-1, "num_workers")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ConfigurationError):
            check_probability(value, "p")

    def test_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError):
            check_probability("half", "p")


class TestCheckFinite:
    def test_accepts_finite(self):
        arr = np.array([1.0, -2.0, 3.5])
        result = check_finite(arr, "v")
        np.testing.assert_array_equal(result, arr)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(InvalidVectorError, match="non-finite"):
            check_finite(np.array([1.0, bad]), "v")


class TestCheckVectorStack:
    def test_valid_stack(self):
        stack = check_vector_stack([[1, 2], [3, 4]])
        assert stack.dtype == np.float64
        assert stack.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(DimensionMismatchError):
            check_vector_stack(np.ones(3))

    def test_rejects_3d(self):
        with pytest.raises(DimensionMismatchError):
            check_vector_stack(np.ones((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(DimensionMismatchError):
            check_vector_stack(np.zeros((0, 3)))

    def test_rejects_zero_dim(self):
        with pytest.raises(DimensionMismatchError):
            check_vector_stack(np.zeros((3, 0)))

    def test_rejects_nan_by_default(self):
        with pytest.raises(InvalidVectorError):
            check_vector_stack([[1.0, np.nan]])

    def test_allows_nan_when_requested(self):
        stack = check_vector_stack([[1.0, np.nan]], require_finite=False)
        assert np.isnan(stack[0, 1])
