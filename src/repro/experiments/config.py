"""Declarative experiment configuration."""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from repro.backend import backend_factory
from repro.data.partition import PARTITION_PROTOCOLS
from repro.distributed.delays import delay_schedule_factory
from repro.exceptions import ConfigurationError
from repro.servers.registry import server_attack_factory
from repro.topology.registry import make_topology, topology_factory
from repro.utils.validation import check_factory_kwargs

__all__ = ["SGDExperimentConfig"]


@dataclass(frozen=True)
class SGDExperimentConfig:
    """Parameters of one distributed-SGD experiment.

    ``aggregator``/``attack``/``backend`` are registry names plus
    keyword-argument dicts so configs stay serializable; the builders
    turn them into objects.  ``num_byzantine`` must satisfy the chosen
    rule's precondition (checked at build time, not here).
    ``backend=None`` (the default) runs the loop executor's numpy path;
    naming a backend routes batched execution (e.g.
    :func:`~repro.experiments.runner.compare_aggregators`) through that
    array backend's kernels.

    ``max_staleness``/``delay_schedule``+``delay_kwargs`` select the
    asynchronous round model (both default to the synchronous loop),
    ``num_servers``/``byzantine_servers``/``num_shards``/
    ``server_attack``+``server_attack_kwargs`` configure the
    parameter-server tier (defaults are the paper's single reliable
    server) and ``halt_on_nonfinite`` arms the parameter server's
    non-finite guard; all thread through the builders to
    :class:`~repro.distributed.TrainingSimulation`.
    """

    num_workers: int
    num_byzantine: int
    num_rounds: int
    aggregator: str
    aggregator_kwargs: dict = field(default_factory=dict)
    attack: str | None = None
    attack_kwargs: dict = field(default_factory=dict)
    learning_rate: float = 0.1
    lr_timescale: float | None = None  # None -> constant schedule
    batch_size: int = 32
    eval_every: int = 10
    seed: int = 0
    byzantine_slots: str = "last"
    partition: str = "iid"
    dirichlet_alpha: float = 0.5
    backend: str | None = None
    backend_kwargs: dict = field(default_factory=dict)
    max_staleness: int = 0
    delay_schedule: str | None = None
    delay_kwargs: dict = field(default_factory=dict)
    num_servers: int = 1
    byzantine_servers: int = 0
    num_shards: int = 1
    server_attack: str | None = None
    server_attack_kwargs: dict = field(default_factory=dict)
    halt_on_nonfinite: bool = False
    topology: str = "complete"
    degree: int | None = None
    edge_prob: float | None = None
    rewire_period: int | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if not 0 <= self.num_byzantine < self.num_workers:
            raise ConfigurationError(
                f"need 0 <= f < n, got n={self.num_workers}, "
                f"f={self.num_byzantine}"
            )
        if self.num_rounds < 1:
            raise ConfigurationError(
                f"num_rounds must be >= 1, got {self.num_rounds}"
            )
        if self.num_byzantine > 0 and self.attack is None:
            raise ConfigurationError("num_byzantine > 0 requires an attack name")
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.partition not in PARTITION_PROTOCOLS:
            raise ConfigurationError(
                f"partition must be one of {PARTITION_PROTOCOLS}, "
                f"got {self.partition!r}"
            )
        if self.dirichlet_alpha <= 0:
            raise ConfigurationError(
                f"dirichlet_alpha must be positive, got {self.dirichlet_alpha}"
            )
        if self.max_staleness < 0:
            raise ConfigurationError(
                f"max_staleness must be >= 0, got {self.max_staleness}"
            )
        if self.delay_schedule is None:
            if self.delay_kwargs:
                raise ConfigurationError(
                    "delay_kwargs requires a delay_schedule name; got "
                    f"kwargs {self.delay_kwargs!r} with delay_schedule=None"
                )
        else:
            check_factory_kwargs(
                "delay schedule",
                self.delay_schedule,
                delay_schedule_factory(self.delay_schedule),
                dict(self.delay_kwargs),
            )
        if self.num_servers < 1:
            raise ConfigurationError(
                f"num_servers must be >= 1, got {self.num_servers}"
            )
        if not 0 <= self.byzantine_servers <= self.num_servers:
            raise ConfigurationError(
                f"need 0 <= byzantine_servers <= num_servers, got "
                f"byzantine_servers={self.byzantine_servers} with "
                f"num_servers={self.num_servers}"
            )
        if self.num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.byzantine_servers > 0 and self.server_attack is None:
            raise ConfigurationError(
                "byzantine_servers > 0 requires a server_attack name"
            )
        if self.byzantine_servers == 0 and self.server_attack is not None:
            raise ConfigurationError(
                "a server_attack was supplied but byzantine_servers=0"
            )
        if self.server_attack is None:
            if self.server_attack_kwargs:
                raise ConfigurationError(
                    "server_attack_kwargs requires a server_attack name; "
                    f"got kwargs {self.server_attack_kwargs!r} with "
                    f"server_attack=None"
                )
        else:
            check_factory_kwargs(
                "server attack",
                self.server_attack,
                server_attack_factory(self.server_attack),
                dict(self.server_attack_kwargs),
            )
        if self.backend is None:
            if self.backend_kwargs:
                raise ConfigurationError(
                    "backend_kwargs requires a backend name; got kwargs "
                    f"{self.backend_kwargs!r} with backend=None"
                )
        else:
            # backend_factory raises the registry's unknown-name error;
            # the kwargs check validates against the factory signature
            # without constructing (or importing) the backend — a bad
            # config fails at declaration time, while dependency
            # availability stays a build-time concern.
            check_factory_kwargs(
                "backend",
                self.backend,
                backend_factory(self.backend),
                dict(self.backend_kwargs),
            )
        # Topology: unknown names and knobs the named graph family does
        # not take both fail at declaration time, like the delay and
        # server-attack specs above.
        factory = topology_factory(self.topology)
        for knob in ("degree", "edge_prob", "rewire_period"):
            value = getattr(self, knob)
            if value is not None and knob not in _factory_params(factory):
                raise ConfigurationError(
                    f"topology {self.topology!r} does not take a "
                    f"{knob} parameter"
                )
        make_topology(self.topology, self.topology_kwargs)
        if self.is_gossip and (
            self.num_servers != 1
            or self.byzantine_servers != 0
            or self.num_shards != 1
            or self.server_attack is not None
        ):
            raise ConfigurationError(
                "the replicated/sharded server tier and gossip topologies "
                "are mutually exclusive — a decentralized run has no "
                "server to replicate"
            )
        if self.is_gossip and self.max_staleness != 0:
            raise ConfigurationError(
                "gossip runs model lag per edge via delay_schedule; "
                f"max_staleness={self.max_staleness} is a server-side knob "
                f"and must stay 0"
            )

    @property
    def is_gossip(self) -> bool:
        """Whether this config runs the serverless gossip engine (any
        topology other than the degenerate ``"complete"`` graph)."""
        return self.topology != "complete"

    @property
    def topology_kwargs(self) -> dict:
        """The non-None topology knobs as factory kwargs."""
        return {
            knob: getattr(self, knob)
            for knob in ("degree", "edge_prob", "rewire_period")
            if getattr(self, knob) is not None
        }

    @property
    def num_honest(self) -> int:
        return self.num_workers - self.num_byzantine


def _factory_params(factory: object) -> frozenset[str]:
    """The keyword names a topology factory accepts (empty when the
    signature is not introspectable)."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return frozenset()
    return frozenset(signature.parameters)
