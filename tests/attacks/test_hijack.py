"""Tests for the Lemma 3.1 linear hijack."""

import numpy as np
import pytest

from repro.attacks.hijack import LinearHijackAttack
from repro.baselines.average import Average, WeightedAverage
from repro.exceptions import ConfigurationError, DimensionMismatchError
from tests.attacks.test_base import make_context


class TestLinearHijackAttack:
    def test_forces_average_to_target(self, rng):
        target = rng.standard_normal(4)
        attack = LinearHijackAttack(target)
        ctx = make_context(rng, num_honest=9, num_byzantine=1)
        crafted = attack.craft(ctx)
        stack = np.vstack([ctx.honest_gradients, crafted])
        np.testing.assert_allclose(Average().aggregate(stack), target, atol=1e-9)

    def test_single_byzantine_suffices(self, rng):
        """Lemma 3.1 needs exactly one Byzantine worker."""
        target = np.full(4, -7.0)
        ctx = make_context(rng, num_honest=19, num_byzantine=1)
        crafted = LinearHijackAttack(target).craft(ctx)
        assert crafted.shape == (1, 4)
        stack = np.vstack([ctx.honest_gradients, crafted])
        np.testing.assert_allclose(Average().aggregate(stack), target, atol=1e-9)

    def test_extra_byzantine_send_zeros(self, rng):
        target = rng.standard_normal(4)
        ctx = make_context(rng, num_honest=7, num_byzantine=3)
        crafted = LinearHijackAttack(target).craft(ctx)
        np.testing.assert_array_equal(crafted[:2], np.zeros((2, 4)))
        stack = np.vstack([ctx.honest_gradients, crafted])
        np.testing.assert_allclose(Average().aggregate(stack), target, atol=1e-9)

    def test_weighted_rule_hijack(self, rng):
        weights = rng.uniform(0.2, 1.5, size=10)
        rule = WeightedAverage(weights, normalize=False)
        target = rng.standard_normal(4)
        attack = LinearHijackAttack(target, weights=weights)
        ctx = make_context(rng, num_honest=9, num_byzantine=1)
        crafted = attack.craft(ctx)
        stack = np.vstack([ctx.honest_gradients, crafted])
        np.testing.assert_allclose(rule.aggregate(stack), target, atol=1e-8)

    def test_byzantine_slot_not_last(self, rng):
        # The Byzantine worker can sit anywhere; here in slot 0.
        target = rng.standard_normal(3)
        attack = LinearHijackAttack(target)
        ctx = make_context(
            rng,
            num_honest=5,
            num_byzantine=1,
            dimension=3,
            byzantine_indices=np.array([0]),
            honest_indices=np.arange(1, 6),
        )
        crafted = attack.craft(ctx)
        stack = np.vstack([crafted, ctx.honest_gradients])
        np.testing.assert_allclose(Average().aggregate(stack), target, atol=1e-9)

    def test_rejects_dimension_mismatch(self, rng):
        attack = LinearHijackAttack(np.zeros(3))
        ctx = make_context(rng, dimension=4)
        with pytest.raises(DimensionMismatchError):
            attack.craft(ctx)

    def test_rejects_zero_weights(self):
        with pytest.raises(ConfigurationError):
            LinearHijackAttack(np.zeros(3), weights=np.array([1.0, 0.0]))

    def test_rejects_2d_target(self):
        with pytest.raises(DimensionMismatchError):
            LinearHijackAttack(np.zeros((2, 2)))
