"""Tests for the command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.dataset == "mnist-like"
        assert args.aggregator == "krum"
        assert args.byzantine == 0

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "imagenet"])

    def test_rejects_unknown_attack(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--attack", "quantum"])


class TestMain:
    def test_blobs_run_prints_summary(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--aggregator", "average",
                "--workers", "5",
                "--rounds", "20",
                "--train-size", "150",
                "--test-size", "60",
                "--eval-every", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "summary" in out
        assert "final loss" in out

    def test_krum_under_attack(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--aggregator", "krum",
                "--workers", "9",
                "--byzantine", "2",
                "--attack", "gaussian",
                "--rounds", "20",
                "--train-size", "150",
                "--test-size", "60",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "krum" in out
        assert "byzantine selection rate" in out

    def test_byzantine_without_attack_errors(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--workers", "9",
                "--byzantine", "2",
                "--rounds", "5",
                "--train-size", "100",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "requires --attack" in err

    def test_invalid_tolerance_reports_cleanly(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--aggregator", "krum",
                "--workers", "5",
                "--byzantine", "2",
                "--attack", "gaussian",
                "--rounds", "5",
                "--train-size", "100",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err

    def test_multikrum_default_m(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--aggregator", "multi-krum",
                "--workers", "9",
                "--byzantine", "2",
                "--attack", "gaussian",
                "--rounds", "10",
                "--train-size", "120",
            ]
        )
        assert code == 0
        assert "multi-krum" in capsys.readouterr().out


class TestPartitionFlags:
    def test_partition_flag_parses(self):
        args = build_parser().parse_args(
            ["--partition", "dirichlet", "--dirichlet-alpha", "0.3"]
        )
        assert args.partition == "dirichlet"
        assert args.dirichlet_alpha == 0.3

    def test_rejects_unknown_partition(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--partition", "striped"])

    def test_dirichlet_run_succeeds(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--aggregator", "average",
                "--workers", "5",
                "--rounds", "10",
                "--train-size", "150",
                "--test-size", "60",
                "--partition", "dirichlet",
                "--dirichlet-alpha", "0.4",
                "--eval-every", "5",
            ]
        )
        assert code == 0
        assert "summary" in capsys.readouterr().out

    def test_spambase_routes_through_workload_registry(self, capsys):
        code = main(
            [
                "--dataset", "spambase-like",
                "--aggregator", "krum",
                "--workers", "6",
                "--byzantine", "1",
                "--attack", "gaussian",
                "--rounds", "8",
                "--train-size", "120",
                "--test-size", "40",
                "--eval-every", "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "spambase-like" in out


class TestTopologyFlags:
    def test_defaults_to_complete(self):
        args = build_parser().parse_args([])
        assert args.topology == "complete"
        assert args.degree is None
        assert args.edge_prob is None
        assert args.rewire_period is None

    def test_gossip_run_prints_summary(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--aggregator", "krum",
                "--topology", "ring",
                "--degree", "6",
                "--workers", "9",
                "--byzantine", "2",
                "--attack", "gaussian",
                "--rounds", "10",
                "--train-size", "120",
                "--test-size", "60",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "summary" in out

    def test_unknown_topology_is_registry_error_not_crash(self, capsys):
        """--topology has no argparse choices: unknown names reach the
        registry and come back as a clean exit-2 configuration error
        listing the alternatives."""
        code = main(
            [
                "--dataset", "blobs",
                "--topology", "torus",
                "--rounds", "5",
                "--train-size", "100",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err
        assert "torus" in err and "available" in err

    def test_knob_for_wrong_family_errors(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--topology", "ring",
                "--edge-prob", "0.5",
                "--rounds", "5",
                "--train-size", "100",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err

    def test_topology_excludes_server_tier_flags(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--topology", "ring",
                "--num-servers", "3",
                "--rounds", "5",
                "--train-size", "100",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "exclusive" in err

    def test_topology_excludes_backend(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--topology", "ring",
                "--backend", "numpy",
                "--rounds", "5",
                "--train-size", "100",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "event-driven" in err
