"""Bulyan — the authors' follow-up defense (extension feature).

El Mhamdi, Guerraoui, Rouault, *The Hidden Vulnerability of Distributed
Learning in Byzantium* (ICML 2018) showed that in high dimension a
Byzantine worker can stay within the honest cloud on most coordinates
while planting a large error on a few (the leeway the little-is-enough
attack exploits), and proposed **Bulyan**: run a Byzantine-resilient
selection rule (Krum) repeatedly to build a committee, then take a
per-coordinate trimmed average over the committee.

Bulyan requires ``n >= 4f + 3``: the committee has ``θ = n − 2f``
members, and each output coordinate averages the ``β = θ − 2f`` values
closest to the coordinate median.

Both execution paths — the per-scenario :class:`Bulyan` rule and the
engine's ``_BatchedBulyan`` kernel — run through the same batched
primitives (:func:`batched_bulyan_committees`,
:func:`batched_bulyan_aggregate`, built on the masked helpers in
:mod:`repro.utils.linalg`); the per-scenario rule simply passes a batch
of one.  Sharing one implementation is what keeps the two paths
bit-for-bit identical instead of drifting copies.  The primitives are
kernel-layer code: they speak the
:class:`~repro.backend.ArrayBackend` namespace (``backend=`` parameter,
numpy by default) and never import numpy directly.

Included as the paper's natural "future work" extension; the ablation
benches contrast it with Krum under the post-2017 stealth attacks.
"""

from __future__ import annotations

from repro.backend import ArrayBackend, resolve_backend
from repro.core.aggregator import AggregationResult, Aggregator
from repro.exceptions import ByzantineToleranceError, DimensionMismatchError
from repro.utils.linalg import (
    batched_pairwise_sq_distances,
    masked_coordinate_median,
    masked_krum_scores,
)
from repro.utils.validation import check_positive_int

__all__ = [
    "Bulyan",
    "batched_bulyan",
    "batched_bulyan_committees",
    "batched_bulyan_aggregate",
]


def _check_bulyan_batch(stacks, f: int, xp: ArrayBackend):
    stacks = xp.asarray(stacks)
    if stacks.ndim != 3:
        raise DimensionMismatchError(
            f"batched Bulyan expects shape (B, n, d), got {tuple(stacks.shape)}"
        )
    n = stacks.shape[1]
    if n < 4 * f + 3:
        raise ByzantineToleranceError(
            f"Bulyan requires n >= 4f + 3; got n={n}, f={f} "
            f"(need n >= {4 * f + 3})",
            n=n,
            f=f,
        )
    return stacks


def batched_bulyan_committees(
    stacks,
    f: int,
    *,
    distances=None,
    backend: ArrayBackend | str | None = None,
):
    """Select every scenario's Bulyan committee: ``(B, n, d) -> (B, θ)``.

    The selection phase: ``θ = n − 2f`` rounds of picking the Krum winner
    among the remaining candidates of each scenario and removing it from
    that scenario's pool (a per-scenario shrinking ``active`` mask over a
    distance batch computed once).  When too few candidates remain for
    Krum scoring (``m − f − 2 < 1``, reachable only near the tolerance
    boundary), candidates are ranked by distance to the pool's
    coordinate-wise median instead — a minority cannot drag that median,
    and any Byzantine slipping in here is neutralized by the trimmed
    aggregation phase.  Returned committees are sorted ascending.

    ``distances`` lets callers reuse a precomputed
    ``batched_pairwise_sq_distances(stacks, nonfinite_as_inf=True)``
    batch.
    """
    xp = resolve_backend(backend)
    stacks = _check_bulyan_batch(stacks, f, xp)
    batch, n, _d = stacks.shape
    if distances is None:
        distances = batched_pairwise_sq_distances(
            stacks, nonfinite_as_inf=True, backend=xp
        )
    committee_size = n - 2 * f
    active = xp.full((batch, n), True, dtype=xp.bool_dtype)
    committees = xp.empty((batch, committee_size), dtype=xp.int_dtype)
    rows = xp.arange(batch)
    for step in range(committee_size):
        remaining = n - step
        if remaining - f - 2 >= 1:
            scores = masked_krum_scores(
                distances, active, remaining - f - 2, backend=xp
            )
        else:
            medians = masked_coordinate_median(stacks, active, backend=xp)
            with xp.errstate():
                deviations = xp.norm(stacks - medians[:, None, :], axis=2)
            scores = xp.where(active, deviations, xp.inf)
        # First minimal index per scenario — the smallest-identifier
        # tie-break, matching argmin over the compacted candidate pool.
        winners = xp.argmin(scores, axis=1)
        # Degenerate all-+inf rows (every remaining candidate non-finite)
        # make argmin fall on index 0 even when it is already selected;
        # redirect to the first still-active candidate.
        invalid = ~active[rows, winners]
        if xp.any(invalid):
            winners = xp.where(invalid, xp.argmax(active, axis=1), winners)
        committees[:, step] = winners
        active[rows, winners] = False
    return xp.sort(committees, axis=1)


def batched_bulyan_aggregate(
    stacks, committees, f: int, *, backend: ArrayBackend | str | None = None
):
    """Bulyan's aggregation phase: per coordinate, average the
    ``β = θ − 2f`` committee values closest to the committee median.

    ``stacks`` is ``(B, n, d)``, ``committees`` the ``(B, θ)`` index
    batch from :func:`batched_bulyan_committees`; returns ``(B, d)``.
    """
    xp = resolve_backend(backend)
    stacks = xp.asarray(stacks)
    committees = xp.asarray(committees, dtype=xp.int_dtype)
    if committees.ndim != 2 or committees.shape[0] != stacks.shape[0]:
        raise DimensionMismatchError(
            f"committees must have shape (B, θ) with B={stacks.shape[0]}, "
            f"got {tuple(committees.shape)}"
        )
    selected = xp.take_along_axis(stacks, committees[:, :, None], axis=1)
    committee_size = committees.shape[1]
    beta = max(committee_size - 2 * f, 1)
    medians = xp.median(selected, axis=1)
    with xp.errstate():
        deviation = xp.abs(selected - medians[:, None, :])
    deviation_order = xp.argsort(deviation, axis=1, stable=True)
    closest = deviation_order[:, :beta]
    gathered = xp.take_along_axis(selected, closest, axis=1)
    return xp.mean(gathered, axis=1)


def batched_bulyan(
    stacks,
    f: int,
    *,
    distances=None,
    backend: ArrayBackend | str | None = None,
):
    """Full batched Bulyan: returns ``(vectors (B, d), committees (B, θ))``.

    On the default numpy backend, slice ``b`` is bit-for-bit what
    ``Bulyan(f).aggregate_detailed`` produces for ``stacks[b]`` — the
    per-scenario rule runs this very function with a batch of one.
    """
    xp = resolve_backend(backend)
    stacks = _check_bulyan_batch(stacks, f, xp)
    committees = batched_bulyan_committees(
        stacks, f, distances=distances, backend=xp
    )
    return (
        batched_bulyan_aggregate(stacks, committees, f, backend=xp),
        committees,
    )


class Bulyan(Aggregator):
    """Krum-committee selection followed by a coordinate trimmed mean."""

    def __init__(self, f: int):
        self.f = check_positive_int(f, "f", minimum=0)
        self.name = f"bulyan(f={self.f})"

    def check_tolerance(self, num_workers: int) -> None:
        if num_workers < 4 * self.f + 3:
            raise ByzantineToleranceError(
                f"Bulyan requires n >= 4f + 3; got n={num_workers}, "
                f"f={self.f} (need n >= {4 * self.f + 3})",
                n=num_workers,
                f=self.f,
            )

    def aggregate_detailed(self, vectors) -> AggregationResult:
        vectors = self._validated(vectors)
        vector, committees = batched_bulyan(vectors[None, :, :], self.f)
        return AggregationResult(vector=vector[0], selected=committees[0])
