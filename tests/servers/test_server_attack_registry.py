"""The server-attack registry: round-trips and the error contract."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.servers.attacks import ServerAttack, SignFlipBroadcastAttack
from repro.servers.registry import (
    _REGISTRY,
    available_server_attacks,
    make_server_attack,
    register_server_attack,
    server_attack_factory,
)


class TestRegistryRoundTrip:
    def test_builtins_are_registered(self):
        assert available_server_attacks() == [
            "random-noise-broadcast",
            "sign-flip-broadcast",
            "stale-replay-broadcast",
        ]

    @pytest.mark.parametrize("name", available_server_attacks())
    def test_every_name_round_trips(self, name):
        attack = make_server_attack(name)
        assert isinstance(attack, ServerAttack)
        # Default-constructed names match the registry key (parameterized
        # variants append a suffix, e.g. "sign-flip-broadcast(scale=2.0)").
        assert attack.name.startswith(name)

    def test_kwargs_reach_the_factory(self):
        attack = make_server_attack("sign-flip-broadcast", {"scale": 2.0})
        assert isinstance(attack, SignFlipBroadcastAttack)
        assert attack.scale == 2.0
        assert attack.name == "sign-flip-broadcast(scale=2.0)"

    def test_none_builds_the_attack_free_tier(self):
        assert make_server_attack(None) is None
        assert make_server_attack(None, {}) is None

    def test_registration_overrides_and_restores(self):
        class Probe(ServerAttack):
            name = "probe"

            def corrupt(self, context):
                raise NotImplementedError

        original = dict(_REGISTRY)
        try:
            register_server_attack("probe", Probe)
            assert "probe" in available_server_attacks()
            assert isinstance(make_server_attack("probe"), Probe)
        finally:
            _REGISTRY.clear()
            _REGISTRY.update(original)


class TestErrorContract:
    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigurationError, match="sign-flip-broadcast"):
            make_server_attack("no-such-attack")

    def test_kwargs_without_name(self):
        with pytest.raises(ConfigurationError, match="without"):
            make_server_attack(None, {"scale": 2.0})

    def test_bad_kwargs_name_the_attack_and_parameters(self):
        with pytest.raises(ConfigurationError, match="scale"):
            make_server_attack("sign-flip-broadcast", {"sigma": 2.0})

    def test_factory_lookup_of_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown server attack"):
            server_attack_factory("no-such-attack")

    def test_register_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            register_server_attack("", SignFlipBroadcastAttack)

    @pytest.mark.parametrize(
        "name, kwargs",
        [
            ("sign-flip-broadcast", {"scale": 0.0}),
            ("stale-replay-broadcast", {"delay": 0}),
            ("random-noise-broadcast", {"sigma": -1.0}),
        ],
    )
    def test_builtin_parameter_validation(self, name, kwargs):
        with pytest.raises(ConfigurationError):
            make_server_attack(name, kwargs)
