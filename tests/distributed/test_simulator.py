"""Tests for the synchronous training simulation."""

import numpy as np
import pytest

from repro.attacks.random_noise import GaussianAttack
from repro.attacks.simple import SignFlipAttack
from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.distributed.schedules import ConstantSchedule
from repro.distributed.simulator import TrainingSimulation
from repro.exceptions import ByzantineToleranceError, ConfigurationError
from repro.models.quadratic import QuadraticBowl


def _simulation(
    *,
    aggregator=None,
    num_workers=11,
    num_byzantine=0,
    attack=None,
    sigma=0.2,
    seed=0,
    **kwargs,
):
    bowl = QuadraticBowl(6)
    num_honest = num_workers - num_byzantine
    return (
        bowl,
        TrainingSimulation(
            aggregator=aggregator or Krum(f=num_byzantine, strict=False),
            schedule=ConstantSchedule(0.1),
            honest_estimators=[bowl.as_estimator(sigma) for _ in range(num_honest)],
            initial_params=np.full(6, 10.0),
            num_byzantine=num_byzantine,
            attack=attack,
            true_gradient_fn=bowl.exact_gradient,
            seed=seed,
            **kwargs,
        ),
    )


class TestConstruction:
    def test_worker_counts(self):
        _bowl, sim = _simulation(num_workers=11, num_byzantine=3, attack=GaussianAttack())
        assert sim.num_workers == 11
        assert len(sim.honest_workers) == 8
        assert len(sim.byzantine_workers) == 3

    def test_byzantine_requires_attack(self):
        with pytest.raises(ConfigurationError, match="requires an attack"):
            _simulation(num_byzantine=2)

    def test_attack_requires_byzantine(self):
        with pytest.raises(ConfigurationError, match="num_byzantine=0"):
            _simulation(num_byzantine=0, attack=GaussianAttack())

    def test_aggregator_tolerance_checked_at_build(self):
        bowl = QuadraticBowl(4)
        with pytest.raises(ByzantineToleranceError):
            TrainingSimulation(
                aggregator=Krum(f=3),  # needs n >= 9
                schedule=ConstantSchedule(0.1),
                honest_estimators=[bowl.as_estimator(0.1) for _ in range(4)],
                initial_params=np.zeros(4),
                num_byzantine=3,
                attack=GaussianAttack(),
            )

    def test_byzantine_slot_placement(self):
        _bowl, sim = _simulation(
            num_workers=9,
            num_byzantine=2,
            attack=GaussianAttack(),
            byzantine_slots="first",
        )
        assert sim.byzantine_ids == [0, 1]
        honest_ids = [w.worker_id for w in sim.honest_workers]
        assert honest_ids == list(range(2, 9))

    def test_explicit_slots(self):
        _bowl, sim = _simulation(
            num_workers=9,
            num_byzantine=2,
            attack=GaussianAttack(),
            byzantine_slots=[3, 7],
        )
        assert sim.byzantine_ids == [3, 7]

    def test_rejects_bad_slots(self):
        with pytest.raises(ConfigurationError):
            _simulation(
                num_workers=9,
                num_byzantine=2,
                attack=GaussianAttack(),
                byzantine_slots=[3, 99],
            )
        with pytest.raises(ConfigurationError):
            _simulation(
                num_workers=9,
                num_byzantine=2,
                attack=GaussianAttack(),
                byzantine_slots="middle",
            )

    def test_dimension_mismatch_detected(self):
        bowl6, bowl5 = QuadraticBowl(6), QuadraticBowl(5)
        with pytest.raises(ConfigurationError, match="dimension"):
            TrainingSimulation(
                aggregator=Average(),
                schedule=ConstantSchedule(0.1),
                honest_estimators=[bowl5.as_estimator(0.1)],
                initial_params=np.zeros(6),
            )


class TestRunning:
    def test_reproducible(self):
        _b1, sim1 = _simulation(num_byzantine=2, attack=GaussianAttack(), seed=42)
        _b2, sim2 = _simulation(num_byzantine=2, attack=GaussianAttack(), seed=42)
        sim1.run(20)
        sim2.run(20)
        np.testing.assert_array_equal(sim1.params, sim2.params)

    def test_different_seeds_differ(self):
        _b1, sim1 = _simulation(seed=1)
        _b2, sim2 = _simulation(seed=2)
        sim1.run(5)
        sim2.run(5)
        assert not np.array_equal(sim1.params, sim2.params)

    def test_history_length_and_rounds(self):
        _bowl, sim = _simulation()
        history = sim.run(17, eval_every=5)
        assert len(history) == 17
        assert history[-1].round_index == 16

    def test_final_round_always_evaluated(self):
        bowl, sim = _simulation()
        sim.evaluate = lambda params: {"loss": bowl.value(params)}
        history = sim.run(13, eval_every=5)
        assert history[-1].loss is not None

    def test_eval_every_spacing(self):
        bowl, sim = _simulation()
        sim.evaluate = lambda params: {"loss": bowl.value(params)}
        history = sim.run(20, eval_every=7)
        evaluated = [r.round_index for r in history.evaluated]
        assert evaluated == [0, 7, 14, 19]

    def test_grad_norm_recorded_via_oracle(self):
        _bowl, sim = _simulation()
        history = sim.run(5, eval_every=1)
        assert all(r.grad_norm is not None for r in history)

    def test_quadratic_descent_without_byzantine(self):
        bowl, sim = _simulation(aggregator=Average(), sigma=0.05)
        sim.run(200, eval_every=50)
        assert bowl.distance_to_optimum(sim.params) < 0.5

    def test_selection_tracked_for_krum(self):
        _bowl, sim = _simulation(
            num_workers=11, num_byzantine=2, attack=GaussianAttack(sigma=50.0),
            aggregator=Krum(f=2),
        )
        history = sim.run(10)
        assert all(len(r.selected) == 1 for r in history)
        assert history.byzantine_selection_rate() == 0.0

    def test_sign_flip_breaks_average_but_not_krum(self):
        bowl, avg_sim = _simulation(
            aggregator=Average(),
            num_workers=11,
            num_byzantine=3,
            attack=SignFlipAttack(scale=4.0),
        )
        avg_sim.run(100)
        avg_dist = bowl.distance_to_optimum(avg_sim.params)

        bowl2, krum_sim = _simulation(
            aggregator=Krum(f=3),
            num_workers=11,
            num_byzantine=3,
            attack=SignFlipAttack(scale=4.0),
        )
        krum_sim.run(100)
        krum_dist = bowl2.distance_to_optimum(krum_sim.params)
        assert krum_dist < 1.0
        assert avg_dist > 2 * krum_dist

    def test_rejects_bad_run_args(self):
        _bowl, sim = _simulation()
        with pytest.raises(ConfigurationError):
            sim.run(0)
        with pytest.raises(ConfigurationError):
            sim.run(5, eval_every=0)


class TestHaltOnNonfinite:
    def test_constructor_kwarg_reaches_the_server(self):
        """Regression: TrainingSimulation never passed halt_on_nonfinite
        to its ParameterServer — the guard was unreachable through the
        public API and tests had to mutate sim.server post-hoc."""
        _bowl, sim = _simulation(halt_on_nonfinite=True)
        assert sim.server.halt_on_nonfinite is True
        _bowl, default_sim = _simulation()
        assert default_sim.server.halt_on_nonfinite is False

    def test_guard_trips_through_public_api(self):
        from repro.attacks.simple import NonFiniteAttack
        from repro.exceptions import SimulationError

        _bowl, sim = _simulation(
            aggregator=Average(),
            num_workers=9,
            num_byzantine=2,
            attack=NonFiniteAttack(),
            halt_on_nonfinite=True,
        )
        with pytest.raises(SimulationError, match="non-finite"):
            sim.run(5)


class TestAsyncRounds:
    def test_sync_construction_unchanged_by_delay_stream(self):
        """Spawning the extra delay stream must not perturb worker or
        attack streams: a sync run today matches a sync run built with
        an explicitly-None schedule."""
        _bowl, a = _simulation(seed=11)
        _bowl, b = _simulation(seed=11, delay_schedule=None, max_staleness=0)
        a.run(10)
        b.run(10)
        assert a.params.tobytes() == b.params.tobytes()

    def test_delay_schedule_by_registry_name(self):
        _bowl, sim = _simulation(
            delay_schedule="constant", max_staleness=2
        )
        assert sim.is_async
        history = sim.run(6)
        assert len(history) == 6

    def test_invalid_delay_schedule_type_rejected(self):
        with pytest.raises(ConfigurationError, match="delay_schedule"):
            _simulation(delay_schedule=42)

    def test_negative_max_staleness_rejected(self):
        with pytest.raises(ConfigurationError, match="max_staleness"):
            _simulation(max_staleness=-1)

    def test_zero_staleness_with_schedule_matches_sync(self):
        """The degenerate async case (window closed) is bit-for-bit the
        synchronous trajectory."""
        _bowl, sync = _simulation(
            num_workers=11, num_byzantine=2, attack=GaussianAttack(), seed=5
        )
        _bowl, degenerate = _simulation(
            num_workers=11,
            num_byzantine=2,
            attack=GaussianAttack(),
            seed=5,
            delay_schedule="random",
            max_staleness=0,
        )
        sync_history = sync.run(15)
        degenerate_history = degenerate.run(15)
        assert sync.params.tobytes() == degenerate.params.tobytes()
        assert all(
            a == b for a, b in zip(sync_history, degenerate_history)
        )

    def test_stale_rounds_differ_from_sync(self):
        _bowl, sync = _simulation(seed=3)
        _bowl, stale = _simulation(
            seed=3, delay_schedule="constant", max_staleness=3
        )
        sync.run(12)
        stale.run(12)
        assert sync.params.tobytes() != stale.params.tobytes()

    def test_attack_context_sees_staleness(self):
        from repro.attacks.base import Attack

        seen = {}

        class Probe(Attack):
            name = "probe"

            def craft(self, context):
                seen["honest_staleness"] = context.honest_staleness
                seen["byzantine_staleness"] = context.byzantine_staleness
                seen["honest_params"] = context.honest_params
                return np.zeros(
                    (context.num_byzantine, context.dimension)
                )

        _bowl, sim = _simulation(
            aggregator=Average(),
            num_workers=9,
            num_byzantine=2,
            attack=Probe(),
            delay_schedule="constant",
            max_staleness=2,
        )
        sim.run_round()  # round 0: no history yet, staleness clipped to 0
        assert seen["honest_staleness"].tolist() == [0] * 7
        sim.run_round()  # the default constant schedule lags tau = 1
        assert seen["honest_staleness"].tolist() == [1] * 7
        assert seen["byzantine_staleness"].tolist() == [1, 1]
        assert seen["honest_params"].shape == (7, 6)
