"""Hypothesis property tests across all aggregation rules."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines.average import Average
from repro.baselines.distance_based import ClosestToAll
from repro.baselines.majority import MinimalDiameterSubset
from repro.baselines.medians import (
    CoordinateWiseMedian,
    GeometricMedian,
    TrimmedMean,
)
from repro.core.krum import Krum


def small_stacks():
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(5, 9), st.integers(1, 5)),
        elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    )


def _rules_for(n):
    f = max(0, min((n - 3) // 2, (n - 1) // 2))
    rules = [
        Average(),
        CoordinateWiseMedian(),
        GeometricMedian(max_iterations=5000),
        ClosestToAll(),
    ]
    if f >= 0:
        rules.append(Krum(f=f, strict=False) if n - f - 2 >= 1 else Average())
    if 2 * f < n:
        rules.append(TrimmedMean(f=f))
    if n - f >= 2:
        rules.append(MinimalDiameterSubset(f=f))
    return rules


class TestSharedInvariants:
    @given(small_stacks())
    @settings(max_examples=30, deadline=None)
    def test_envelope_bound(self, vectors):
        """Every rule outputs within the coordinate-wise input envelope.

        (True for selections, means of subsets, medians, trimmed means
        and the geometric median — a basic sanity invariant.)
        """
        lower = vectors.min(axis=0) - 1e-6
        upper = vectors.max(axis=0) + 1e-6
        for rule in _rules_for(len(vectors)):
            out = rule.aggregate(vectors)
            assert np.all(out >= lower), f"{rule.name} broke lower envelope"
            assert np.all(out <= upper), f"{rule.name} broke upper envelope"

    @given(small_stacks())
    @settings(max_examples=30, deadline=None)
    def test_unanimity(self, vectors):
        """If all workers propose the same vector, every rule returns it."""
        unanimous = np.tile(vectors[0], (len(vectors), 1))
        for rule in _rules_for(len(vectors)):
            out = rule.aggregate(unanimous)
            np.testing.assert_allclose(out, vectors[0], rtol=1e-7, atol=1e-7)

    @given(small_stacks())
    @settings(max_examples=30, deadline=None)
    def test_output_shape_and_finiteness(self, vectors):
        for rule in _rules_for(len(vectors)):
            out = rule.aggregate(vectors)
            assert out.shape == (vectors.shape[1],)
            assert np.all(np.isfinite(out)), f"{rule.name} produced non-finite"

    @given(small_stacks())
    @settings(max_examples=20, deadline=None)
    def test_determinism(self, vectors):
        for rule in _rules_for(len(vectors)):
            a = rule.aggregate(vectors.copy())
            b = rule.aggregate(vectors.copy())
            np.testing.assert_array_equal(a, b)


class TestRobustnessProperty:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.just(9), st.integers(2, 5)),
            elements=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        ),
        st.floats(min_value=1e3, max_value=1e9),
    )
    @settings(max_examples=30, deadline=None)
    def test_krum_ignores_far_outliers(self, honest, magnitude):
        """Moving f Byzantine vectors arbitrarily far cannot drag Krum's
        output outside the honest envelope — the essence of resilience."""
        f = 3
        byzantine = np.full((f, honest.shape[1]), magnitude)
        stack = np.vstack([honest, byzantine])
        out = Krum(f=f).aggregate(stack)
        assert np.all(out >= honest.min(axis=0) - 1e-9)
        assert np.all(out <= honest.max(axis=0) + 1e-9)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.just(9), st.integers(2, 4)),
            elements=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        ),
        st.floats(min_value=1e3, max_value=1e9),
    )
    @settings(max_examples=30, deadline=None)
    def test_average_is_dragged_by_outliers(self, honest, magnitude):
        """Contrast property: the same outliers move the average
        arbitrarily far (Lemma 3.1's practical reading)."""
        f = 3
        byzantine = np.full((f, honest.shape[1]), magnitude)
        stack = np.vstack([honest, byzantine])
        out = Average().aggregate(stack)
        assert np.all(out > honest.max(axis=0))
