"""The lint driver: file discovery, rule execution, suppressions.

Running the linter is three steps per file — parse once, run every
selected rule over the shared AST, then apply the per-line
``# repro-lint: ignore[rule]`` suppressions.  Two checks are engine
built-ins rather than AST rules (they are about the *lint run*, not the
code): ``syntax-error`` (a file the compiler cannot parse has every
invariant unverifiable — that must fail the gate, not skip silently)
and ``unused-suppression`` (an ignore comment that no longer matches a
finding is a stale escape hatch; flagging it keeps the suppression
inventory honest).  Both are registered under those names so
``--select``/``--ignore`` treat them like any other rule.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.lint.base import LintRule, ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import available_rules, make_rule, register_rule

__all__ = [
    "LintReport",
    "collect_python_files",
    "resolve_rules",
    "lint_source",
    "lint_paths",
    "SUPPRESSION_PATTERN",
]


class _SyntaxErrorRule(LintRule):
    """Placeholder for the engine's parse check (never runs itself)."""

    name = "syntax-error"
    description = "every linted file must parse (findings come from the engine)"

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        return ()


class _UnusedSuppressionRule(LintRule):
    """Placeholder for the engine's suppression audit (never runs itself)."""

    name = "unused-suppression"
    description = (
        "every '# repro-lint: ignore[...]' comment must suppress a finding"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        return ()


register_rule("syntax-error", _SyntaxErrorRule)
register_rule("unused-suppression", _UnusedSuppressionRule)


# One suppression comment per line: a bare ``ignore`` silences every
# rule on that line, ``ignore[a, b]`` only the named rules.
SUPPRESSION_PATTERN = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<rules>[^\]]*)\])?\s*$"
)
_DIRECTIVE_MARKER = re.compile(r"#\s*repro-lint\b")


@dataclass
class _Suppression:
    line: int
    column: int
    rules: frozenset[str] | None  # None = bare ignore (all rules)
    used: set[str] = field(default_factory=set)


def _parse_suppressions(
    source: str, path: str
) -> tuple[dict[int, _Suppression], list[Finding]]:
    """Extract suppression comments, flagging malformed directives.

    A comment that mentions ``repro-lint`` but does not parse as a
    suppression (typo'd keyword, empty or unknown rule list) is reported
    under ``unused-suppression``: a directive the engine silently drops
    would look exactly like a working escape hatch.
    """
    suppressions: dict[int, _Suppression] = {}
    malformed: list[Finding] = []

    def bad(line: int, column: int, message: str) -> None:
        malformed.append(
            Finding(
                rule="unused-suppression",
                path=path,
                line=line,
                column=column,
                message=message,
            )
        )

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return {}, []  # unparseable files are the syntax-error check's job
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        if not _DIRECTIVE_MARKER.search(token.string):
            continue
        line, column = token.start[0], token.start[1] + 1
        match = SUPPRESSION_PATTERN.search(token.string)
        if match is None:
            bad(
                line,
                column,
                f"malformed repro-lint directive {token.string.strip()!r}; "
                f"expected '# repro-lint: ignore[rule]'",
            )
            continue
        names = match.group("rules")
        if names is None:
            rules: frozenset[str] | None = None
        else:
            parts = [part.strip() for part in names.split(",")]
            if not all(parts) or not parts:
                bad(line, column, "empty rule list in repro-lint suppression")
                continue
            unknown = sorted(set(parts) - set(available_rules()))
            if unknown:
                bad(
                    line,
                    column,
                    f"suppression names unknown rule(s) {unknown}; "
                    f"available: {available_rules()}",
                )
                continue
            rules = frozenset(parts)
        suppressions[line] = _Suppression(line=line, column=column, rules=rules)
    return suppressions, malformed


def _apply_suppressions(
    findings: list[Finding],
    suppressions: dict[int, _Suppression],
    selected: set[str],
    path: str,
) -> list[Finding]:
    kept: list[Finding] = []
    for finding in findings:
        suppression = suppressions.get(finding.line)
        if suppression is not None and (
            suppression.rules is None or finding.rule in suppression.rules
        ):
            suppression.used.add(finding.rule)
            continue
        kept.append(finding)
    if "unused-suppression" not in selected:
        return kept
    for suppression in suppressions.values():
        if suppression.rules is None:
            if not suppression.used:
                kept.append(
                    Finding(
                        rule="unused-suppression",
                        path=path,
                        line=suppression.line,
                        column=suppression.column,
                        message="suppression does not match any finding",
                    )
                )
            continue
        # Named suppressions are audited per rule, but only for rules
        # that actually ran — a partial --select cannot prove a
        # suppression for an unselected rule stale.
        stale = sorted((suppression.rules & selected) - suppression.used)
        if stale:
            kept.append(
                Finding(
                    rule="unused-suppression",
                    path=path,
                    line=suppression.line,
                    column=suppression.column,
                    message=(
                        "suppression does not match any finding for "
                        f"rule(s) {stale}"
                    ),
                )
            )
    return kept


def resolve_rules(
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[LintRule]:
    """Instantiate the selected rules (default: every registered rule).

    ``select`` picks an explicit subset, ``ignore`` removes names from
    it; unknown names in either raise :class:`ConfigurationError` — a
    typo'd rule name silently linting nothing is how a gate rots.
    """
    known = available_rules()
    for names, option in ((select, "--select"), (ignore, "--ignore")):
        unknown = sorted(set(names or ()) - set(known))
        if unknown:
            raise ConfigurationError(
                f"unknown lint rule(s) {unknown} in {option}; "
                f"available: {known}"
            )
    chosen = list(select) if select else known
    dropped = set(ignore or ())
    return [make_rule(name) for name in chosen if name not in dropped]


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[LintRule] | None = None,
) -> list[Finding]:
    """Lint one source string (the fixture-test entry point).

    ``path`` participates in module-scoped rules (e.g. backend-purity
    only checks the kernel modules), so fixture snippets fake the
    library path they pretend to live at.
    """
    if rules is None:
        rules = resolve_rules()
    selected = {rule.name for rule in rules}
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        if "syntax-error" not in selected:
            return []
        return [
            Finding(
                rule="syntax-error",
                path=path,
                line=int(error.lineno or 1),
                column=int(error.offset or 1),
                message=f"cannot parse: {error.msg}",
            )
        ]
    module = ModuleContext(path=path, source=source, tree=tree)
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(module))
    suppressions, malformed = _parse_suppressions(source, path)
    findings = _apply_suppressions(findings, suppressions, selected, path)
    if "unused-suppression" in selected:
        findings.extend(malformed)
    return sorted(findings, key=Finding.sort_key)


def collect_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand path arguments into a sorted, deduplicated ``.py`` file list.

    Directories are searched recursively; a path that does not exist is
    a :class:`ConfigurationError` (a gate that "passes" because its
    target moved is worse than one that fails loudly).
    """
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.is_file():
            files.add(path)
        else:
            raise ConfigurationError(f"no such file or directory: {raw}")
    return sorted(files)


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: tuple[Finding, ...]
    files_checked: int
    rule_names: tuple[str, ...]

    @property
    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "rules": list(self.rule_names),
            "findings": [finding.as_dict() for finding in self.findings],
            "summary": {
                "total": len(self.findings),
                "by_rule": self.counts_by_rule,
            },
        }

    def as_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=False)


def lint_paths(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintReport:
    """Lint files/directories with the selected rules (the CLI core)."""
    rules = resolve_rules(select=select, ignore=ignore)
    files = collect_python_files(paths)
    findings: list[Finding] = []
    for file in files:
        findings.extend(
            lint_source(
                file.read_text(encoding="utf-8"), path=str(file), rules=rules
            )
        )
    return LintReport(
        findings=tuple(sorted(findings, key=Finding.sort_key)),
        files_checked=len(files),
        rule_names=tuple(rule.name for rule in rules),
    )
