"""Attack interface and the omniscient adversary context."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.aggregator import Aggregator
from repro.exceptions import ConfigurationError, DimensionMismatchError

__all__ = ["AttackContext", "Attack", "BenignAttack"]


@dataclass(frozen=True)
class AttackContext:
    """Everything the paper's adversary is allowed to know.

    "The Byzantine workers have full knowledge of the system, including
    the choice function F, the vectors proposed by the other workers and
    can collaborate with each other."  — Section 2.
    """

    round_index: int
    params: np.ndarray
    honest_gradients: np.ndarray  # (n - f, d) proposals of the correct workers
    byzantine_indices: np.ndarray  # positions the f Byzantine workers occupy
    honest_indices: np.ndarray  # positions of the correct workers
    num_workers: int  # n
    rng: np.random.Generator
    aggregator: Aggregator | None = None  # the server's F, if known
    true_gradient: np.ndarray | None = None  # ∇Q(x_t), for omniscient attacks
    # Asynchronous rounds only (None in the synchronous model): the
    # staleness τ of each honest/Byzantine proposal this round, and the
    # (n - f, d) parameter vectors the honest victims *actually*
    # computed their gradients at — x_{t − τ_i}, not the fresh
    # ``params`` — so staleness-aware attacks see exactly what the
    # server will.
    honest_staleness: np.ndarray | None = None  # (n - f,) ints
    byzantine_staleness: np.ndarray | None = None  # (f,) ints
    honest_params: np.ndarray | None = None  # (n - f, d) stale x per victim
    # Defense feedback: whether each Byzantine slot's previous-round
    # proposal was among the indices the choice function *selected*
    # (aligned with ``byzantine_indices``).  ``None`` on the first round
    # and for callers that do not track selection.  The adversary can
    # observe the server's public parameter trajectory, so exposing the
    # selection verdict adds no knowledge the paper's omniscient model
    # does not already grant — it is what makes defense-probing attacks
    # expressible.
    selected_last_round: np.ndarray | None = None  # (f,) bools
    # Decentralized (gossip) rounds only — None on the server path: the
    # out-neighbor ids of each Byzantine node this round (one sorted
    # int64 array per entry of ``byzantine_indices``), and, when the
    # engine crafts per receiving edge (equivocation), the honest node
    # id this particular craft call targets.  ``receiver is None`` means
    # one shared proposal for every edge — the server-path semantics.
    byzantine_neighbors: tuple[np.ndarray, ...] | None = None
    receiver: int | None = None

    @property
    def num_byzantine(self) -> int:
        return int(len(self.byzantine_indices))

    @property
    def dimension(self) -> int:
        return int(self.honest_gradients.shape[1])

    @property
    def honest_mean(self) -> np.ndarray:
        """Barycenter of the correct proposals — the adversary's best
        estimate of the true gradient when ``true_gradient`` is hidden."""
        return self.honest_gradients.mean(axis=0)

    def validate(self) -> None:
        if self.honest_gradients.ndim != 2:
            raise DimensionMismatchError(
                f"honest_gradients must be (n-f, d), got "
                f"{self.honest_gradients.shape}"
            )
        if len(self.honest_indices) != len(self.honest_gradients):
            raise DimensionMismatchError(
                f"{len(self.honest_indices)} honest indices vs "
                f"{len(self.honest_gradients)} honest gradients"
            )
        total = len(self.honest_indices) + len(self.byzantine_indices)
        if total != self.num_workers:
            raise ConfigurationError(
                f"honest ({len(self.honest_indices)}) + byzantine "
                f"({len(self.byzantine_indices)}) != n ({self.num_workers})"
            )
        overlap = np.intersect1d(self.honest_indices, self.byzantine_indices)
        if overlap.size:
            raise ConfigurationError(
                f"worker indices {overlap.tolist()} are both honest and Byzantine"
            )
        if self.honest_staleness is not None and len(
            self.honest_staleness
        ) != len(self.honest_indices):
            raise DimensionMismatchError(
                f"{len(self.honest_staleness)} staleness entries vs "
                f"{len(self.honest_indices)} honest workers"
            )
        if self.byzantine_staleness is not None and len(
            self.byzantine_staleness
        ) != len(self.byzantine_indices):
            raise DimensionMismatchError(
                f"{len(self.byzantine_staleness)} staleness entries vs "
                f"{len(self.byzantine_indices)} byzantine workers"
            )
        if (
            self.honest_params is not None
            and self.honest_params.shape != self.honest_gradients.shape
        ):
            raise DimensionMismatchError(
                f"honest_params shape {self.honest_params.shape} does not "
                f"match honest_gradients {self.honest_gradients.shape}"
            )
        if self.selected_last_round is not None and len(
            self.selected_last_round
        ) != len(self.byzantine_indices):
            raise DimensionMismatchError(
                f"{len(self.selected_last_round)} selection flags vs "
                f"{len(self.byzantine_indices)} byzantine workers"
            )
        if self.byzantine_neighbors is not None and len(
            self.byzantine_neighbors
        ) != len(self.byzantine_indices):
            raise DimensionMismatchError(
                f"{len(self.byzantine_neighbors)} neighbor views vs "
                f"{len(self.byzantine_indices)} byzantine workers"
            )
        if self.receiver is not None and not (
            0 <= int(self.receiver) < self.num_workers
        ):
            raise ConfigurationError(
                f"receiver {self.receiver} outside [0, {self.num_workers})"
            )


class Attack(ABC):
    """Strategy producing the f Byzantine proposals for one round."""

    name: str = "attack"
    #: True for attacks that carry mutable per-run state across rounds.
    #: Stateful attacks must implement :meth:`reset` so one instance can
    #: be reused across sequential runs, and must not be shared between
    #: concurrently-executing scenarios.
    stateful: bool = False

    @abstractmethod
    def craft(self, context: AttackContext) -> np.ndarray:
        """Return an ``(f, d)`` array of Byzantine proposals.

        Must return exactly ``context.num_byzantine`` rows of dimension
        ``context.dimension``.
        """

    def reset(self) -> None:
        """Discard per-run state so the instance can start a fresh run.

        Stateless attacks inherit this no-op; stateful ones override it.
        Simulations call it once at construction time, so reusing an
        attack instance sequentially is deterministic.
        """

    def _output(self, context: AttackContext, vectors: np.ndarray) -> np.ndarray:
        """Validate and shape an attack's output (helper for subclasses)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        expected = (context.num_byzantine, context.dimension)
        if vectors.shape != expected:
            raise DimensionMismatchError(
                f"{self.name} produced shape {vectors.shape}, expected {expected}"
            )
        return vectors

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class BenignAttack(Attack):
    """Byzantine workers that behave correctly (control condition).

    Each "Byzantine" worker resends the honest barycenter perturbed with
    the empirical honest standard deviation, i.e. it is statistically
    indistinguishable from a correct worker.  Used to verify an attack
    harness adds no artifacts of its own.
    """

    name = "benign"

    def craft(self, context: AttackContext) -> np.ndarray:
        mean = context.honest_mean
        std = context.honest_gradients.std(axis=0)
        proposals = mean + std * context.rng.standard_normal(
            (context.num_byzantine, context.dimension)
        )
        return self._output(context, proposals)
