"""Sizing a Byzantine-tolerant cluster with the paper's theory.

Given a deployment (n workers, expected Byzantine fraction, model
dimension d, estimator noise σ), this script answers the operator's
questions with the closed-form machinery of Proposition 4.2:

  * how many Byzantine workers can n tolerate at all (2f + 2 < n)?
  * what is η(n, f) and the resilience angle α for my noise level?
  * how small must σ be (i.e. how big a mini-batch do I need) for the
    convergence guarantee to bite?
  * does an empirical Monte-Carlo check agree?

Run:  python examples/resilience_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import GaussianAttack, Krum, eta, max_tolerable_f, resilience_angle
from repro.analysis import estimate_resilience
from repro.exceptions import ByzantineToleranceError
from repro.experiments import format_table


def main() -> None:
    # --- the deployment being sized ---------------------------------
    n = 25
    dimension = 100
    grad_norm = 1.0

    print("tolerance bound: largest f with 2f + 2 < n")
    print(
        format_table(
            ["n", "max tolerable f", "fraction"],
            [[m, max_tolerable_f(m), f"{max_tolerable_f(m) / m:.2f}"]
             for m in (5, 10, 25, 100, 1001)],
        )
    )

    print("\nη(n, f) and the largest admissible estimator noise σ*")
    rows = []
    for f in (1, 4, 8, 11):
        eta_value = eta(n, f)
        sigma_star = grad_norm / (eta_value * np.sqrt(dimension))
        rows.append([f, eta_value, sigma_star])
    print(
        format_table(
            ["f", "eta(25, f)", "max σ (d=100, ‖g‖=1)"],
            rows,
            title="variance condition: η(n,f)·√d·σ < ‖g‖",
        )
    )
    print(
        "\nReading: tolerating more Byzantine workers demands a sharper"
        "\ngradient estimator — the mini-batch must grow with f "
        "(σ ∝ 1/√batch)."
    )

    print("\nresilience angle α for a concrete operating point")
    f, sigma = 4, 0.004
    alpha = resilience_angle(n, f, dimension, sigma, grad_norm)
    print(
        f"  n={n}, f={f}, d={dimension}, σ={sigma}: "
        f"sin α = {np.sin(alpha):.3f}, α = {np.degrees(alpha):.1f}°"
    )

    try:
        resilience_angle(n, 11, dimension, sigma, grad_norm)
    except ByzantineToleranceError as error:
        print(f"  same σ at f=11 → guarantee void: {error}")

    print("\nempirical Monte-Carlo check at the operating point")
    report = estimate_resilience(
        Krum(f=f),
        GaussianAttack(sigma=200.0),
        n=n,
        f=f,
        dimension=dimension,
        sigma=sigma,
        trials=300,
        seed=0,
    )
    print(
        format_table(
            ["measured ⟨EF, g⟩", "required (1−sinα)‖g‖²", "satisfied",
             "byzantine selected"],
            [[
                report.scalar_product,
                report.threshold,
                report.satisfied,
                f"{100 * report.byzantine_selection_rate:.1f}%",
            ]],
        )
    )


if __name__ == "__main__":
    main()
