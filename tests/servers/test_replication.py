"""The replicated server group: views, Byzantine broadcasts, recovery.

Includes the hand-rolled property tests the issue asks for: the
worker-side coordinate median is permutation-invariant in replica order,
and exact (bit-for-bit the canonical broadcast) whenever
``byzantine_servers = 0`` — for odd *and* even replica counts.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.baselines.average import Average
from repro.distributed.messages import GradientMessage
from repro.distributed.schedules import ConstantSchedule
from repro.distributed.server import ParameterServer
from repro.exceptions import ConfigurationError, SimulationError
from repro.servers.attacks import SignFlipBroadcastAttack
from repro.servers.replication import ReplicatedServerGroup, replica_view

DIMENSION = 6


def build_group(**kwargs):
    defaults = dict(
        num_servers=1,
        byzantine_servers=0,
        num_shards=1,
        server_attack=None,
        rng=None,
    )
    defaults.update(kwargs)
    return ReplicatedServerGroup(
        np.arange(float(DIMENSION)),
        Average(),
        ConstantSchedule(0.1),
        **defaults,
    )


def messages(server, seed=0):
    rng = np.random.default_rng(seed + server.round_index)
    return [
        GradientMessage(
            round_index=server.round_index,
            worker_id=i,
            vector=rng.standard_normal(DIMENSION),
        )
        for i in range(5)
    ]


class TestReplicaView:
    def test_permutation_invariant_in_replica_order(self):
        rng = np.random.default_rng(0)
        broadcasts = rng.standard_normal((4, DIMENSION))
        reference = replica_view(broadcasts)
        for order in itertools.permutations(range(4)):
            view = replica_view(broadcasts[list(order)])
            assert view.tobytes() == reference.tobytes()

    @pytest.mark.parametrize("num_servers", [1, 2, 3, 4, 7, 8])
    def test_exact_over_identical_rows(self, num_servers):
        """Median of k identical honest broadcasts is the broadcast,
        bitwise — odd counts pick the middle row, even counts average
        two equal values; neither perturbs a single bit."""
        rng = np.random.default_rng(1)
        row = rng.standard_normal(DIMENSION)
        view = replica_view(np.tile(row, (num_servers, 1)))
        assert view.tobytes() == row.tobytes()

    def test_median_neutralizes_a_minority_sign_flip(self):
        """median{x, x, −x} = x exactly: two honest replicas out-vote
        the flipped broadcast coordinate by coordinate."""
        rng = np.random.default_rng(2)
        row = rng.standard_normal(DIMENSION)
        broadcasts = np.stack([row, row, -row])
        assert replica_view(broadcasts).tobytes() == row.tobytes()

    def test_rejects_non_matrix_input(self):
        with pytest.raises(ConfigurationError):
            replica_view(np.zeros(DIMENSION))
        with pytest.raises(ConfigurationError):
            replica_view(np.zeros((0, DIMENSION)))


class TestConstruction:
    def test_byzantine_requires_attack(self):
        with pytest.raises(ConfigurationError, match="requires a"):
            build_group(
                num_servers=3,
                byzantine_servers=1,
                rng=np.random.default_rng(0),
            )

    def test_attack_requires_byzantine(self):
        with pytest.raises(ConfigurationError, match="byzantine_servers=0"):
            build_group(server_attack=SignFlipBroadcastAttack())

    def test_byzantine_requires_rng(self):
        with pytest.raises(ConfigurationError, match="rng"):
            build_group(
                num_servers=3,
                byzantine_servers=1,
                server_attack=SignFlipBroadcastAttack(),
            )

    def test_byzantine_bounded_by_replica_count(self):
        with pytest.raises(ConfigurationError):
            build_group(
                num_servers=2,
                byzantine_servers=3,
                server_attack=SignFlipBroadcastAttack(),
                rng=np.random.default_rng(0),
            )

    def test_fully_byzantine_group_is_legal(self):
        group = build_group(
            num_servers=1,
            byzantine_servers=1,
            server_attack=SignFlipBroadcastAttack(),
            rng=np.random.default_rng(0),
        )
        assert group.byzantine_server_ids.tolist() == [0]

    def test_attack_resolves_from_registry_name(self):
        group = build_group(
            num_servers=3,
            byzantine_servers=1,
            server_attack="sign-flip-broadcast",
            rng=np.random.default_rng(0),
        )
        assert isinstance(group.server_attack, SignFlipBroadcastAttack)

    def test_adversary_controls_the_last_replica_ids(self):
        group = build_group(
            num_servers=5,
            byzantine_servers=2,
            server_attack=SignFlipBroadcastAttack(),
            rng=np.random.default_rng(0),
        )
        assert group.byzantine_server_ids.tolist() == [3, 4]


class TestDegenerateTier:
    def test_degenerate_group_matches_plain_server_bitwise(self):
        """num_servers=1, byzantine_servers=0, num_shards=1 runs the
        exact single-server engine: same broadcasts, same updates."""
        group = build_group()
        plain = ParameterServer(
            np.arange(float(DIMENSION)), Average(), ConstantSchedule(0.1)
        )
        assert not group.tier_active
        assert group.sharded_state is None
        for _ in range(5):
            assert (
                group.broadcast().params.tobytes()
                == plain.broadcast().params.tobytes()
            )
            group.step(messages(group))
            plain.step(messages(plain))
        assert group.params.tobytes() == plain.params.tobytes()

    def test_honest_replication_alone_never_forks(self):
        """byzantine_servers=0 with any replica count: the view is the
        canonical state bitwise, so the trajectory is the plain one."""
        group = build_group(num_servers=4)
        plain = ParameterServer(
            np.arange(float(DIMENSION)), Average(), ConstantSchedule(0.1)
        )
        assert group.tier_active
        for _ in range(5):
            assert (
                group.broadcast().params.tobytes()
                == plain.broadcast().params.tobytes()
            )
            group.step(messages(group))
            plain.step(messages(plain))
        assert group.params.tobytes() == plain.params.tobytes()


class TestActiveTier:
    def build_attacked(self, num_servers=3, byzantine_servers=1, **kwargs):
        return build_group(
            num_servers=num_servers,
            byzantine_servers=byzantine_servers,
            server_attack=SignFlipBroadcastAttack(),
            rng=np.random.default_rng(0),
            **kwargs,
        )

    def test_single_corrupted_server_broadcasts_the_attack(self):
        group = self.build_attacked(num_servers=1, byzantine_servers=1)
        view = group.broadcast().params
        # Equality, not tobytes: np.median normalizes -0.0 to +0.0 at
        # the zero coordinate of the flipped broadcast.
        np.testing.assert_array_equal(
            view, -np.arange(float(DIMENSION))
        )

    def test_three_replicas_recover_the_canonical_broadcast(self):
        group = self.build_attacked()
        view = group.broadcast().params
        assert view.tobytes() == np.arange(float(DIMENSION)).tobytes()

    def test_update_applies_to_canonical_state_not_the_view(self):
        group = self.build_attacked(num_servers=1, byzantine_servers=1)
        before = group.params
        group.broadcast()
        batch = messages(group)
        group.step(batch)
        stack = np.stack([m.vector for m in batch])
        expected = before - 0.1 * stack.mean(axis=0)
        assert group.params.tobytes() == expected.tobytes()

    def test_view_is_computed_once_per_round(self):
        """broadcast() twice in one round returns the same view and the
        attack RNG advances once — the replay protocol the executors
        rely on."""
        group = build_group(
            num_servers=3,
            byzantine_servers=1,
            server_attack="random-noise-broadcast",
            rng=np.random.default_rng(7),
        )
        first = group.broadcast().params
        second = group.broadcast().params
        assert first.tobytes() == second.tobytes()

    def test_params_at_serves_the_view_window(self):
        group = self.build_attacked(
            num_servers=1, byzantine_servers=1, max_staleness=2
        )
        views = []
        for _ in range(3):
            views.append(group.broadcast().params)
            group.step(messages(group))
        group.broadcast()
        for offset in (1, 2):
            stored = group.params_at(group.round_index - offset)
            assert stored.tobytes() == views[-offset].tobytes()
        # round 3's window holds rounds [1, 3]; round 0 has been evicted
        with pytest.raises(SimulationError):
            group.params_at(0)

    def test_step_without_broadcast_still_consumes_the_attack_stream(self):
        """A caller that skips broadcast() must not desync the RNG
        stream: step() materializes the round's view itself."""
        stepped = build_group(
            num_servers=3,
            byzantine_servers=1,
            server_attack="random-noise-broadcast",
            rng=np.random.default_rng(3),
        )
        broadcast_first = build_group(
            num_servers=3,
            byzantine_servers=1,
            server_attack="random-noise-broadcast",
            rng=np.random.default_rng(3),
        )
        for _ in range(4):
            stepped.step(messages(stepped))
            broadcast_first.broadcast()
            broadcast_first.step(messages(broadcast_first))
        assert stepped.params.tobytes() == broadcast_first.params.tobytes()
