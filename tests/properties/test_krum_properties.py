"""Hypothesis property tests for Krum (the paper's core invariants)."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.krum import Krum, MultiKrum, krum_scores, krum_scores_reference


def stacks(min_n=5, max_n=14, min_d=1, max_d=8):
    """Strategy producing (vectors, f) with valid Krum parameters."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_n, max_n))
        d = draw(st.integers(min_d, max_d))
        f_max = (n - 3) // 2
        f = draw(st.integers(0, max(0, f_max)))
        vectors = draw(
            hnp.arrays(
                dtype=np.float64,
                shape=(n, d),
                elements=st.floats(
                    min_value=-1e6, max_value=1e6, allow_nan=False
                ),
            )
        )
        return vectors, f

    return build()


def _winner_gap(vectors: np.ndarray, f: int) -> float:
    """Gap between the two best Krum scores (inf for a single row)."""
    ordered = np.sort(krum_scores(vectors, f))
    return float(ordered[1] - ordered[0]) if len(ordered) > 1 else np.inf


def _score_scale(vectors: np.ndarray) -> float:
    """Magnitude scale of Krum scores — squared input magnitude."""
    return max(1.0, float(np.max(np.abs(vectors))) ** 2)


class TestKrumInvariants:
    @given(stacks())
    @settings(max_examples=60, deadline=None)
    def test_output_is_an_input_row(self, case):
        vectors, f = case
        out = Krum(f=f, strict=False).aggregate(vectors)
        assert any(np.array_equal(out, row) for row in vectors)

    @given(stacks(max_n=10, max_d=5))
    @settings(max_examples=40, deadline=None)
    def test_fast_scores_match_reference(self, case):
        vectors, f = case
        # The GEMM distance expansion carries an absolute error of order
        # eps · ‖V‖² (catastrophic cancellation for near-equal huge
        # vectors), so the tolerance scales with the squared magnitude.
        scale = max(1.0, float(np.max(np.abs(vectors))) ** 2)
        np.testing.assert_allclose(
            krum_scores(vectors, f),
            krum_scores_reference(vectors, f),
            rtol=1e-7,
            atol=1e-10 * scale * len(vectors),
        )

    @given(stacks(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_permutation_equivariance(self, case, pyrandom):
        """Permuting inputs permutes the selection (up to tie-breaks):
        the selected *vector* value is invariant whenever scores are
        distinct."""
        vectors, f = case
        scores = krum_scores(vectors, f)
        if len(np.unique(scores)) != len(scores):
            return  # ties allow identifier-dependent choices
        perm = list(range(len(vectors)))
        pyrandom.shuffle(perm)
        original = Krum(f=f, strict=False).aggregate(vectors)
        permuted = Krum(f=f, strict=False).aggregate(vectors[perm])
        np.testing.assert_array_equal(original, permuted)

    @given(stacks())
    @settings(max_examples=40, deadline=None)
    def test_translation_equivariance(self, case):
        """Kr(V + c) = Kr(V) + c — scores depend only on differences."""
        vectors, f = case
        # Near-tied winners: the GEMM distance expansion carries rounding
        # of order eps·‖V‖² per entry, so a top-2 score gap inside that
        # band can legitimately flip the argmin under the shift.
        assume(_winner_gap(vectors, f) > 1e-9 * _score_scale(vectors))
        shift = np.full(vectors.shape[1], 17.5)
        original = Krum(f=f, strict=False).aggregate(vectors)
        shifted = Krum(f=f, strict=False).aggregate(vectors + shift)
        np.testing.assert_allclose(shifted, original + shift, rtol=1e-9, atol=1e-6)

    @given(stacks())
    @settings(max_examples=40, deadline=None)
    def test_scale_equivariance(self, case):
        """Kr(c·V) = c·Kr(V) for c > 0."""
        vectors, f = case
        # Near-tied winners: see test_translation_equivariance.
        assume(_winner_gap(vectors, f) > 1e-9 * _score_scale(vectors))
        original = Krum(f=f, strict=False).aggregate(vectors)
        scaled = Krum(f=f, strict=False).aggregate(2.5 * vectors)
        np.testing.assert_allclose(scaled, 2.5 * original, rtol=1e-9, atol=1e-6)

    @given(stacks())
    @settings(max_examples=40, deadline=None)
    def test_scores_non_negative(self, case):
        vectors, f = case
        assert np.all(krum_scores(vectors, f) >= 0.0)

    @given(st.integers(5, 12), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_unanimous_inputs_returned_exactly(self, n, d):
        vectors = np.tile(np.arange(d, dtype=float), (n, 1))
        f = max(0, (n - 3) // 2)
        out = Krum(f=f, strict=False).aggregate(vectors)
        np.testing.assert_array_equal(out, np.arange(d, dtype=float))


class TestMultiKrumInvariants:
    @given(stacks(min_n=6))
    @settings(max_examples=40, deadline=None)
    def test_selected_count_is_m(self, case):
        vectors, f = case
        n = len(vectors)
        m_max = max(1, n - f - 2)
        for m in {1, m_max}:
            result = MultiKrum(f=f, m=m, strict=False).aggregate_detailed(vectors)
            assert len(result.selected) == m

    @given(stacks(min_n=6))
    @settings(max_examples=40, deadline=None)
    def test_output_in_convex_hull_bounds(self, case):
        """Multi-Krum's output is a mean of inputs, so it lies within the
        coordinate-wise min/max envelope."""
        vectors, f = case
        n = len(vectors)
        m = max(1, n - f - 2)
        out = MultiKrum(f=f, m=m, strict=False).aggregate(vectors)
        assert np.all(out >= vectors.min(axis=0) - 1e-9)
        assert np.all(out <= vectors.max(axis=0) + 1e-9)
