"""Engine workload bench — batched vs loop, per registered workload.

The workload registry (``repro.engine.workloads``) opened the grid
engine to dataset-backed tasks.  This bench runs one small reference
grid per workload — and one mixed-workload grid exercising the
per-dimension batch grouping — through both executors:

* ``loop``    — one :class:`~repro.distributed.TrainingSimulation` per
  cell (the seed code's execution model);
* ``batched`` — cells stacked into ``(B, n, d)`` tensors by
  :class:`~repro.engine.BatchedSimulation`, grouped by parameter
  dimension.

For every grid it asserts trajectory identity (bit-for-bit final
parameters and per-round records — the differential guarantee must hold
on *every* workload, not just the Gaussian-oracle fast path) and records
loop/batched wall times to ``BENCH_engine_workloads.json``.  Only the
quadratic workload carries a speedup floor: dataset workloads spend
their rounds in per-worker model gradients, which both executors
compute identically, so their batching gain is bounded by the
aggregation share of the round.

Standalone usage (CI smoke / regenerating the JSON)::

    PYTHONPATH=src python benchmarks/bench_engine_workloads.py          # full
    PYTHONPATH=src python benchmarks/bench_engine_workloads.py --smoke  # tiny
    PYTHONPATH=src python benchmarks/bench_engine_workloads.py --smoke \\
        --output BENCH_engine_workloads.smoke.json   # CI artifact
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

from repro.engine import ScenarioGrid, run_grid
from repro.experiments.reporting import format_table

try:
    from benchmarks.conftest import emit, run_once
except ImportError:  # executed as a script
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import emit, run_once

MIN_QUADRATIC_SPEEDUP = 2.0
RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_engine_workloads.json"
)

_AGGREGATORS = (("krum", {}), ("average", {}), ("coordinate-median", {}))
_ATTACKS = (("sign-flip", {"scale": 5.0}),)


def _grids(*, smoke: bool) -> dict[str, ScenarioGrid]:
    """One reference grid per workload, plus the mixed-dimension grid."""
    seeds = (0,) if smoke else (0, 1)
    common = dict(
        seeds=seeds,
        attacks=_ATTACKS,
        aggregators=_AGGREGATORS,
        f_values=(0, 3),
        num_workers=15,
        learning_rate=0.05,
        lr_timescale=None,
    )
    quadratic = {"dimension": 100 if smoke else 1000, "sigma": 0.5}
    spambase = {
        "num_train": 128 if smoke else 1024,
        "num_eval": 64 if smoke else 256,
        "batch_size": 16,
    }
    mnist = {
        "num_train": 96 if smoke else 512,
        "num_eval": 48 if smoke else 128,
        "batch_size": 16,
    }
    mlp = dict(mnist, hidden_sizes=(16,) if smoke else (32,))
    rounds = dict(
        quadratic=8 if smoke else 60,
        spambase=8 if smoke else 60,
        softmax=6 if smoke else 40,
        mlp=4 if smoke else 30,
        mixed=6 if smoke else 30,
    )
    return {
        "quadratic": ScenarioGrid(
            workload="quadratic", workload_kwargs=quadratic,
            num_rounds=rounds["quadratic"], **common,
        ),
        "logistic-spambase": ScenarioGrid(
            workload="logistic-spambase", workload_kwargs=spambase,
            num_rounds=rounds["spambase"], **common,
        ),
        "softmax-mnist": ScenarioGrid(
            workload="softmax-mnist", workload_kwargs=mnist,
            num_rounds=rounds["softmax"], **common,
        ),
        "mlp-mnist": ScenarioGrid(
            workload="mlp-mnist", workload_kwargs=mlp,
            num_rounds=rounds["mlp"], **common,
        ),
        "mixed": ScenarioGrid(
            workloads=(
                ("quadratic", quadratic),
                ("logistic-spambase", spambase),
                ("softmax-mnist", mnist),
            ),
            num_rounds=rounds["mixed"], **common,
        ),
    }


def _identical_trajectories(loop_result, batched_result) -> bool:
    for label in loop_result.histories:
        if (
            loop_result.final_params[label].tobytes()
            != batched_result.final_params[label].tobytes()
        ):
            return False
        loop_history = loop_result.histories[label]
        batched_history = batched_result.histories[label]
        if len(loop_history) != len(batched_history):
            return False
        if any(a != b for a, b in zip(loop_history, batched_history)):
            return False
    return True


def run_comparison(grids: dict[str, ScenarioGrid]) -> dict:
    """Execute every grid in both modes and summarize the comparison."""
    from repro.backend import backend_installed

    torch_available = backend_installed("torch")
    backend = None
    workloads = {}
    for name, grid in grids.items():
        loop_result = run_grid(grid, mode="loop", eval_every=10)
        batched_result = run_grid(grid, mode="batched", eval_every=10)
        backend = batched_result.backend
        workloads[name] = {
            "cells": len(grid),
            "num_rounds": grid.num_rounds,
            "loop_seconds": round(loop_result.wall_time, 4),
            "batched_seconds": round(batched_result.wall_time, 4),
            "speedup": round(
                loop_result.wall_time
                / max(batched_result.wall_time, 1e-12),
                2,
            ),
            "trajectories_identical": _identical_trajectories(
                loop_result, batched_result
            ),
            "native_fraction": batched_result.native_fraction,
        }
        if torch_available:
            # Torch column: per-workload batched wall time on the torch
            # backend, emitted only when torch is importable.
            torch_result = run_grid(
                grid, mode="batched", eval_every=10, backend="torch"
            )
            workloads[name]["torch_batched_seconds"] = round(
                torch_result.wall_time, 4
            )
            workloads[name]["torch_max_final_param_deviation"] = max(
                float(
                    abs(
                        loop_result.final_params[label]
                        - torch_result.final_params[label]
                    ).max()
                )
                for label in loop_result.histories
            )
    return {
        "num_workers": 15,
        "aggregators": [name for name, _ in _AGGREGATORS],
        # Resolved array backend (name[dtype]) of the reference batched
        # runs; the torch columns, when present, ran on "torch[float64]".
        "backend": backend,
        "workloads": workloads,
        "python": platform.python_version(),
    }


def _emit_summary(summary: dict) -> None:
    emit(
        format_table(
            ["workload", "cells", "rounds", "loop s", "batched s",
             "speedup", "identical"],
            [
                [
                    name,
                    row["cells"],
                    row["num_rounds"],
                    row["loop_seconds"],
                    row["batched_seconds"],
                    f"{row['speedup']}x",
                    row["trajectories_identical"],
                ]
                for name, row in summary["workloads"].items()
            ],
            title="Engine workloads — batched vs loop",
        )
    )


def _failures(summary: dict, *, smoke: bool) -> list[str]:
    failures = []
    for name, row in summary["workloads"].items():
        if not row["trajectories_identical"]:
            failures.append(f"{name}: batched diverged from the loop path")
    quadratic = summary["workloads"]["quadratic"]
    if not smoke and quadratic["speedup"] < MIN_QUADRATIC_SPEEDUP:
        failures.append(
            f"quadratic speedup {quadratic['speedup']}x < "
            f"{MIN_QUADRATIC_SPEEDUP}x"
        )
    return failures


def bench_engine_workloads(benchmark):
    summary = run_once(benchmark, lambda: run_comparison(_grids(smoke=False)))
    _emit_summary(summary)
    RESULT_PATH.write_text(json.dumps(summary, indent=1) + "\n")
    failures = _failures(summary, smoke=False)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run tiny grids without writing BENCH_engine_workloads.json "
        "— the CI sanity check",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the summary JSON to this path (used by CI to "
        "upload the smoke measurement as a workflow artifact)",
    )
    args = parser.parse_args(argv)

    summary = run_comparison(_grids(smoke=args.smoke))
    print(json.dumps(summary, indent=1))
    if args.output is not None:
        args.output.write_text(json.dumps(summary, indent=1) + "\n")
        print(f"wrote {args.output}")
    failures = _failures(summary, smoke=args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    if not args.smoke:
        RESULT_PATH.write_text(json.dumps(summary, indent=1) + "\n")
        print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
