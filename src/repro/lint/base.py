"""Lint-rule interfaces: per-module rules and project-scoped rules.

Module-local rules see one parsed file at a time (path, source, AST) and
yield findings; they carry no cross-module state, so their results never
depend on traversal order and fixture tests can lint single snippets in
isolation.  Project-scoped rules (``project_scope = True``) instead
receive a :class:`~repro.lint.project.ProjectContext` — the whole linted
tree plus its symbol table and call graph — built once per run by the
engine; their findings still anchor in individual files, so the per-file
suppression semantics apply unchanged.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import PurePath

from repro.lint.findings import Finding

__all__ = ["ModuleContext", "LintRule", "ProjectRule"]


@dataclass(frozen=True)
class ModuleContext:
    """One parsed module as the rules see it."""

    path: str
    source: str
    tree: ast.Module
    #: ``path`` normalized to forward slashes, for suffix-based module
    #: scoping (rules that only apply to specific library files).
    posix_path: str = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "posix_path", PurePath(self.path).as_posix()
        )

    def is_module(self, *suffixes: str) -> bool:
        """Whether this file is one of the named library modules.

        Matching is by path suffix (``repro/utils/rng.py`` matches both
        ``src/repro/utils/rng.py`` and an installed site-packages copy),
        which also lets the rule tests fake a library path for fixture
        snippets.
        """
        return any(self.posix_path.endswith(suffix) for suffix in suffixes)


class LintRule(ABC):
    """One enforced invariant.

    Subclasses set ``name`` (the registry/CLI identifier, also the key
    of ``# repro-lint: ignore[name]`` suppressions) and ``description``
    (one line, shown by ``--list-rules``), and implement :meth:`check`.
    """

    name: str = "rule"
    description: str = ""
    #: Project-scoped rules run once per lint run against the whole-tree
    #: :class:`~repro.lint.project.ProjectContext` instead of per module.
    project_scope: bool = False

    @abstractmethod
    def check(self, module: ModuleContext) -> Iterable[Finding]:
        """Yield every violation of this rule in ``module``."""

    def check_project(self, project) -> Iterable[Finding]:
        """Yield whole-program violations (project-scoped rules only).

        ``project`` is a :class:`~repro.lint.project.ProjectContext`
        (untyped here to keep the import graph acyclic).  Module-local
        rules inherit this no-op.
        """
        return ()

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(
            rule=self.name,
            path=module.path,
            line=int(getattr(node, "lineno", 1)),
            column=int(getattr(node, "col_offset", 0)) + 1,
            message=message,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ProjectRule(LintRule):
    """A rule that checks whole-program invariants.

    Subclasses implement :meth:`check_project`; the per-module
    :meth:`check` hook is a no-op so a project rule can participate in
    ``--select``/``--ignore`` and suppressions exactly like any other
    rule.  The engine builds one
    :class:`~repro.lint.project.ProjectContext` per run (unless
    ``--no-project``) and hands it to every selected project rule.
    """

    project_scope = True

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        return ()

    @abstractmethod
    def check_project(self, project) -> Iterable[Finding]:
        """Yield every whole-program violation of this rule."""

    def project_finding(
        self, path: str, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` in the file at ``path``."""
        return Finding(
            rule=self.name,
            path=path,
            line=int(getattr(node, "lineno", 1)),
            column=int(getattr(node, "col_offset", 0)) + 1,
            message=message,
        )
