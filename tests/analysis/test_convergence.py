"""Tests for convergence diagnostics."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    has_converged,
    plateau_value,
    rounds_to_threshold,
)
from repro.exceptions import ConfigurationError


class TestHasConverged:
    def test_converged_series(self):
        values = np.array([5.0, 2.0, 0.5, 0.1, 0.05, 0.04, 0.05])
        assert has_converged(values, threshold=0.1, window=3)

    def test_not_converged(self):
        values = np.array([5.0, 4.0, 5.0, 4.5])
        assert not has_converged(values, threshold=0.1, window=2)

    def test_short_series(self):
        assert not has_converged(np.array([0.01]), threshold=0.1, window=5)

    def test_spike_in_window_fails(self):
        values = np.array([0.05, 0.05, 5.0, 0.05])
        assert not has_converged(values, threshold=0.1, window=3)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            has_converged(np.ones(3), threshold=0.1, window=0)


class TestRoundsToThreshold:
    def test_first_crossing(self):
        rounds = np.array([0, 10, 20, 30])
        values = np.array([5.0, 1.0, 0.05, 0.01])
        assert rounds_to_threshold(rounds, values, threshold=0.1) == 20

    def test_never_reached(self):
        rounds = np.array([0, 10])
        values = np.array([5.0, 4.0])
        assert rounds_to_threshold(rounds, values, threshold=0.1) is None

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            rounds_to_threshold(np.arange(3), np.ones(4), threshold=0.1)


class TestPlateauValue:
    def test_tail_mean(self):
        values = np.array([10.0, 10.0, 10.0, 10.0, 2.0, 2.0])
        # last 1/3 of 6 points = 2 points
        assert plateau_value(values, fraction=1 / 3) == pytest.approx(2.0)

    def test_full_fraction(self):
        values = np.array([1.0, 3.0])
        assert plateau_value(values, fraction=1.0) == 2.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            plateau_value(np.array([]))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            plateau_value(np.ones(3), fraction=0.0)
