"""Tests for round records and the training history."""

import numpy as np
import pytest

from repro.distributed.metrics import RoundRecord, TrainingHistory
from repro.exceptions import ConfigurationError


def _record(t, loss=None, **kwargs):
    defaults = dict(
        round_index=t,
        learning_rate=0.1,
        aggregate_norm=1.0,
        params_norm=2.0,
        loss=loss,
    )
    defaults.update(kwargs)
    return RoundRecord(**defaults)


class TestTrainingHistory:
    def test_append_and_access(self):
        history = TrainingHistory()
        history.append(_record(0))
        history.append(_record(1))
        assert len(history) == 2
        assert history[1].round_index == 1

    def test_rejects_out_of_order(self):
        history = TrainingHistory()
        history.append(_record(5))
        with pytest.raises(ConfigurationError):
            history.append(_record(5))

    def test_series_skips_unevaluated(self):
        history = TrainingHistory()
        history.append(_record(0, loss=1.0))
        history.append(_record(1))
        history.append(_record(2, loss=0.5))
        rounds, losses = history.series("loss")
        np.testing.assert_array_equal(rounds, [0, 2])
        np.testing.assert_array_equal(losses, [1.0, 0.5])

    def test_series_from_extras(self):
        history = TrainingHistory()
        history.append(_record(0, extras={"dist_to_opt": 3.0}))
        rounds, values = history.series("dist_to_opt")
        np.testing.assert_array_equal(values, [3.0])

    def test_final_loss(self):
        history = TrainingHistory()
        history.append(_record(0, loss=2.0))
        history.append(_record(1, loss=1.0))
        assert history.final_loss == 1.0

    def test_final_loss_requires_evaluation(self):
        history = TrainingHistory()
        history.append(_record(0))
        with pytest.raises(ConfigurationError):
            _ = history.final_loss

    def test_byzantine_selection_rate(self):
        history = TrainingHistory()
        history.append(_record(0, selected=(3,), byzantine_selected=1))
        history.append(_record(1, selected=(2,), byzantine_selected=0))
        history.append(_record(2, selected=(9,), byzantine_selected=1))
        assert history.byzantine_selection_rate() == pytest.approx(2 / 3)

    def test_selection_rate_empty_for_statistical_rules(self):
        history = TrainingHistory()
        history.append(_record(0))
        assert history.byzantine_selection_rate() == 0.0

    def test_min_series_value(self):
        history = TrainingHistory()
        for t, loss in enumerate([3.0, 1.0, 2.0]):
            history.append(_record(t, loss=loss))
        assert history.min_series_value("loss") == 1.0

    def test_iteration(self):
        history = TrainingHistory()
        history.append(_record(0))
        assert [r.round_index for r in history] == [0]
