"""Closed-form resilience theory of Proposition 4.2.

The brief announcement states Krum is (α, f)-Byzantine resilient when

    2f + 2 < n   and   η(n, f) · √d · σ < ‖g‖,

with ``sin α = η(n, f) · √d · σ / ‖g‖`` and η(n, f) of order O(√n) for
constant f and O(n) for f proportional to n.  The constant below is the
explicit form derived in the full paper (arXiv:1703.02757, Proposition 1):

    η(n, f)² = 2 ( n − f + ( f·(n − f − 2) + f²·(n − f − 1) ) / (n − 2f − 2) )

which satisfies both asymptotic regimes (the tests verify this).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ByzantineToleranceError, ConfigurationError

__all__ = [
    "check_krum_precondition",
    "eta",
    "max_tolerable_f",
    "resilience_angle",
    "krum_variance_bound",
]


def check_krum_precondition(n: int, f: int) -> None:
    """Raise unless ``2f + 2 < n`` (the tolerance bound of Prop. 4.2)."""
    if f < 0:
        raise ConfigurationError(f"f must be non-negative, got {f}")
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if 2 * f + 2 >= n:
        raise ByzantineToleranceError(
            f"Krum requires 2f + 2 < n; got n={n}, f={f} "
            f"(max tolerable f is {max(0, (n - 3) // 2)})",
            n=n,
            f=f,
        )


def max_tolerable_f(n: int) -> int:
    """Largest f with ``2f + 2 < n`` — "asymptotically up to half" of n."""
    if n < 3:
        raise ConfigurationError(f"no f satisfies 2f + 2 < n for n={n}")
    return (n - 3) // 2


def eta(n: int, f: int) -> float:
    """The multiplicative deviation constant η(n, f) of Proposition 4.2.

    Explicit form from the full paper; O(√n) when f = O(1) and O(n)
    when f = Θ(n).
    """
    check_krum_precondition(n, f)
    numerator = f * (n - f - 2) + f * f * (n - f - 1)
    value = 2.0 * (n - f + numerator / (n - 2 * f - 2))
    return float(np.sqrt(value))


def resilience_angle(
    n: int, f: int, dimension: int, sigma: float, grad_norm: float
) -> float:
    """The angle α of Prop. 4.2: ``sin α = η(n,f)·√d·σ / ‖g‖``.

    Returns α in radians (0 ≤ α < π/2).  Raises
    ``ByzantineToleranceError`` when the variance condition
    ``η·√d·σ < ‖g‖`` fails, i.e. when no valid α exists.
    """
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    if sigma < 0:
        raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
    if grad_norm <= 0:
        raise ConfigurationError(f"grad_norm must be positive, got {grad_norm}")
    sin_alpha = eta(n, f) * np.sqrt(dimension) * sigma / grad_norm
    if sin_alpha >= 1.0:
        raise ByzantineToleranceError(
            f"variance condition violated: η(n,f)·√d·σ = "
            f"{sin_alpha * grad_norm:.4g} >= ‖g‖ = {grad_norm:.4g} "
            f"(n={n}, f={f}, d={dimension}, σ={sigma:.4g})",
            n=n,
            f=f,
        )
    return float(np.arcsin(sin_alpha))


def krum_variance_bound(n: int, f: int, dimension: int, sigma: float) -> float:
    """Upper bound on ``E‖Kr − g‖``: the radius ``η(n,f)·√d·σ``.

    Proposition 4.3's interpretation: SGD with Krum reaches the basin
    where ``‖∇Q‖ <= η(n,f)·√d·σ``; this helper computes that basin
    radius for an experiment's parameters.
    """
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    if sigma < 0:
        raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
    return float(eta(n, f) * np.sqrt(dimension) * sigma)
