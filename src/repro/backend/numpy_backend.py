"""The numpy reference backend.

Every method is a direct delegation to the numpy call the kernels used
before the backend seam existed — same function, same arguments — so
routing a kernel through :class:`NumpyBackend` is numerically a no-op.
The engine's bit-for-bit loop/batched differential guarantee is anchored
here: ``tests/backend/test_numpy_exact.py`` asserts exact (``tobytes``)
equality between backend-routed kernels and their historical outputs,
and ``tests/engine/test_differential.py`` keeps enforcing the
loop/batched identity on top.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.backend.base import ArrayBackend
from repro.exceptions import ConfigurationError

__all__ = ["NumpyBackend"]

_FLOAT_DTYPES = {"float64": np.float64, "float32": np.float32}


class NumpyBackend(ArrayBackend):
    """numpy, presented through the :class:`ArrayBackend` namespace.

    ``dtype`` selects the floating precision every kernel tensor uses;
    ``"float64"`` (the default) is the reference configuration the
    differential suite pins bit-for-bit.
    """

    name = "numpy"

    def __init__(self, dtype: str = "float64"):
        if dtype not in _FLOAT_DTYPES:
            raise ConfigurationError(
                f"numpy backend dtype must be one of "
                f"{sorted(_FLOAT_DTYPES)}, got {dtype!r}"
            )
        self.float_dtype = np.dtype(_FLOAT_DTYPES[dtype])
        self.int_dtype = np.dtype(np.int64)
        self.bool_dtype = np.dtype(np.bool_)

    @property
    def numpy_float_dtype(self) -> np.dtype:
        return self.float_dtype

    @property
    def device(self) -> str:
        return "cpu"

    # -- creation & movement -------------------------------------------

    def asarray(self, x: Any, dtype: Any = None) -> np.ndarray:
        return np.asarray(x, dtype=self.float_dtype if dtype is None else dtype)

    def to_numpy(self, x: Any) -> np.ndarray:
        return np.asarray(x)

    def empty(self, shape: Sequence[int], dtype: Any = None) -> np.ndarray:
        return np.empty(shape, dtype=self.float_dtype if dtype is None else dtype)

    def zeros(self, shape: Sequence[int], dtype: Any = None) -> np.ndarray:
        return np.zeros(shape, dtype=self.float_dtype if dtype is None else dtype)

    def full(
        self, shape: Sequence[int], fill_value: Any, dtype: Any = None
    ) -> np.ndarray:
        return np.full(
            shape, fill_value, dtype=self.float_dtype if dtype is None else dtype
        )

    def arange(self, stop: int, dtype: Any = None) -> np.ndarray:
        return np.arange(stop, dtype=self.int_dtype if dtype is None else dtype)

    def copy(self, x: np.ndarray) -> np.ndarray:
        return np.copy(x)

    def astype(self, x: np.ndarray, dtype: Any) -> np.ndarray:
        return np.asarray(x).astype(dtype)

    # -- elementwise ---------------------------------------------------

    def where(self, condition, a, b) -> np.ndarray:
        return np.where(condition, a, b)

    def maximum(self, a, b) -> np.ndarray:
        return np.maximum(a, b)

    def minimum(self, a, b) -> np.ndarray:
        return np.minimum(a, b)

    def fmax(self, a, b) -> np.ndarray:
        return np.fmax(a, b)

    def abs(self, x) -> np.ndarray:
        return np.abs(x)

    def sqrt(self, x) -> np.ndarray:
        return np.sqrt(x)

    def isfinite(self, x) -> np.ndarray:
        return np.isfinite(x)

    # -- contractions --------------------------------------------------

    def einsum(self, subscripts: str, *operands) -> np.ndarray:
        return np.einsum(subscripts, *operands)

    def transpose(self, x, axes: Sequence[int]) -> np.ndarray:
        return np.transpose(x, axes)

    # -- reductions ----------------------------------------------------

    def sum(self, x, axis: int | None = None):
        return np.sum(x, axis=axis)

    def mean(self, x, axis: int | None = None):
        return np.mean(x, axis=axis)

    def median(self, x, axis: int):
        return np.median(x, axis=axis)

    def max(self, x, axis: int | None = None):
        return np.max(x, axis=axis)

    def min(self, x, axis: int | None = None):
        return np.min(x, axis=axis)

    def any(self, x, axis: int | None = None):
        return np.any(x, axis=axis)

    def all(self, x, axis: int | None = None):
        return np.all(x, axis=axis)

    def count_nonzero(self, x, axis: int | None = None):
        return np.count_nonzero(x, axis=axis)

    def argmin(self, x, axis: int | None = None):
        return np.argmin(x, axis=axis)

    def argmax(self, x, axis: int | None = None):
        return np.argmax(x, axis=axis)

    def norm(self, x, axis: int | None = None):
        return np.linalg.norm(x, axis=axis)

    # -- ordering ------------------------------------------------------

    def sort(self, x, axis: int = -1) -> np.ndarray:
        return np.sort(x, axis=axis)

    def argsort(self, x, axis: int = -1, stable: bool = False) -> np.ndarray:
        return np.argsort(x, axis=axis, kind="stable" if stable else None)

    def partition(self, x, kth: int, axis: int = -1) -> np.ndarray:
        return np.partition(x, kth, axis=axis)

    def take_along_axis(self, x, indices, axis: int) -> np.ndarray:
        return np.take_along_axis(x, indices, axis=axis)

    # -- numerics control ----------------------------------------------

    def errstate(self):
        return np.errstate(invalid="ignore", over="ignore", divide="ignore")
