"""Robust statistical aggregators: medians and trimmed means.

These postdate or parallel the paper (coordinate-wise median and trimmed
mean were analyzed by Yin et al. 2018; the geometric median is the
classical robust estimator the paper's proof technique is "reminiscent
of").  They are included as ablation baselines: they behave differently
from Krum because they synthesize a new vector instead of selecting a
proposed one.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregator import AggregationResult, Aggregator
from repro.exceptions import ByzantineToleranceError, ConvergenceError
from repro.utils.validation import check_positive_int

__all__ = ["CoordinateWiseMedian", "TrimmedMean", "GeometricMedian"]


class CoordinateWiseMedian(Aggregator):
    """Per-coordinate median of the proposals."""

    name = "coordinate-median"

    def aggregate_detailed(self, vectors: np.ndarray) -> AggregationResult:
        vectors = self._validated(vectors)
        return AggregationResult(vector=np.median(vectors, axis=0))


class TrimmedMean(Aggregator):
    """Per-coordinate mean after dropping the f smallest and f largest.

    Requires ``n > 2f`` so at least one value per coordinate survives the
    trim.
    """

    def __init__(self, f: int):
        self.f = check_positive_int(f, "f", minimum=0)
        self.name = f"trimmed-mean(f={self.f})"

    def check_tolerance(self, num_workers: int) -> None:
        if num_workers <= 2 * self.f:
            raise ByzantineToleranceError(
                f"trimmed mean needs n > 2f, got n={num_workers}, f={self.f}",
                n=num_workers,
                f=self.f,
            )

    def aggregate_detailed(self, vectors: np.ndarray) -> AggregationResult:
        vectors = self._validated(vectors)
        if self.f == 0:
            return AggregationResult(vector=vectors.mean(axis=0))
        ordered = np.sort(vectors, axis=0)
        trimmed = ordered[self.f : -self.f]
        return AggregationResult(vector=trimmed.mean(axis=0))


class GeometricMedian(Aggregator):
    """Geometric median via the Weiszfeld fixed-point iteration.

    Minimizes ``Σ_i ‖z − V_i‖`` (unsquared — the squared version is the
    barycenter and not robust).  When an iterate lands exactly on an
    input point the standard singularity fix is applied (treat that point
    as its own cluster and test optimality before continuing).
    """

    def __init__(self, *, tolerance: float = 1e-9, max_iterations: int = 1000):
        if tolerance <= 0:
            raise ConvergenceError(f"tolerance must be positive, got {tolerance}")
        self.tolerance = float(tolerance)
        self.max_iterations = check_positive_int(
            max_iterations, "max_iterations", minimum=1
        )
        self.name = "geometric-median"

    def aggregate_detailed(self, vectors: np.ndarray) -> AggregationResult:
        vectors = self._validated(vectors)
        return AggregationResult(vector=self._weiszfeld(vectors))

    @staticmethod
    def _median_at_data_point(
        vectors: np.ndarray, distances: np.ndarray
    ) -> np.ndarray | None:
        """Vardi–Zhang optimality test for the data point nearest to the
        current iterate: point p (with multiplicity m) is the geometric
        median iff ‖Σ unit vectors from p to the other points‖ <= m.

        Weiszfeld converges only sublinearly toward an optimal *data*
        point, so testing the condition directly (instead of waiting for
        the iterate to crawl there) is what makes termination fast.
        """
        nearest = int(np.argmin(distances))
        point = vectors[nearest]
        offsets = vectors - point
        point_distances = np.linalg.norm(offsets, axis=1)
        scale = max(1.0, float(point_distances.max()))
        coincident = point_distances <= 1e-12 * scale
        multiplicity = float(np.count_nonzero(coincident))
        others = ~coincident
        if not np.any(others):
            return point.copy()
        directions = offsets[others] / point_distances[others, None]
        if float(np.linalg.norm(directions.sum(axis=0))) <= multiplicity:
            return point.copy()
        return None

    def _weiszfeld(self, vectors: np.ndarray) -> np.ndarray:
        n = vectors.shape[0]
        if n == 1:
            return vectors[0].copy()
        estimate = vectors.mean(axis=0)
        objective = float(
            np.linalg.norm(vectors - estimate, axis=1).sum()
        )
        stall_strikes = 0
        for _iteration in range(self.max_iterations):
            diffs = vectors - estimate
            distances = np.linalg.norm(diffs, axis=1)
            optimal_point = self._median_at_data_point(vectors, distances)
            if optimal_point is not None:
                return optimal_point
            at_point = distances < 1e-14
            if np.any(at_point):
                # Vardi–Zhang correction at a data point y = V_k: y is the
                # median iff ‖R‖ <= multiplicity, where R is the summed
                # unit vector of the other points.
                others = ~at_point
                if not np.any(others):
                    return estimate
                directions = diffs[others] / distances[others, None]
                r_vec = directions.sum(axis=0)
                multiplicity = float(np.count_nonzero(at_point))
                r_norm = float(np.linalg.norm(r_vec))
                if r_norm <= multiplicity:
                    return estimate
                step = (r_norm - multiplicity) / r_norm
                inv = 1.0 / distances[others]
                tentative = (vectors[others] * inv[:, None]).sum(axis=0) / inv.sum()
                new_estimate = (1 - step) * estimate + step * tentative
            else:
                inv = 1.0 / distances
                new_estimate = (vectors * inv[:, None]).sum(axis=0) / inv.sum()
            shift = float(np.linalg.norm(new_estimate - estimate))
            new_objective = float(
                np.linalg.norm(vectors - new_estimate, axis=1).sum()
            )
            # Near a data point of multiplicity > 1 the iteration becomes
            # sublinear: the shift plateaus while the objective improves
            # only at floating-point-noise scale.  Three consecutive
            # iterations without meaningful objective progress terminate
            # the loop — the estimate is positionally converged far below
            # any statistically meaningful precision by then.
            if new_objective >= objective - 1e-12 * max(1.0, objective):
                stall_strikes += 1
            else:
                stall_strikes = 0
            estimate = new_estimate
            objective = min(objective, new_objective)
            if shift <= self.tolerance * max(1.0, float(np.linalg.norm(estimate))):
                return estimate
            if stall_strikes >= 3:
                return estimate
        raise ConvergenceError(
            f"Weiszfeld iteration did not converge in {self.max_iterations} "
            f"steps (last shift {shift:.3g})"
        )
