"""The parameter-server tier: replication, Byzantine servers, sharding.

The paper assumes a single reliable parameter server (footnote 2).  This
package drops that assumption along the ByzSGD/Garfield axis: the server
is a :class:`ReplicatedServerGroup` of ``num_servers`` replicas of which
up to ``byzantine_servers`` broadcast corrupted parameters (crafted by a
registered :class:`ServerAttack`), workers defend with a coordinate-wise
median over replica broadcasts, and ``num_shards`` splits aggregation
across coordinate slices.  The degenerate cell ``num_servers=1,
byzantine_servers=0, num_shards=1`` is bit-for-bit the single-server
engine.
"""

from repro.servers.attacks import (
    RandomNoiseBroadcastAttack,
    ServerAttack,
    ServerAttackContext,
    SignFlipBroadcastAttack,
    StaleReplayBroadcastAttack,
)
from repro.servers.registry import (
    available_server_attacks,
    make_server_attack,
    register_server_attack,
    server_attack_factory,
)
from repro.servers.replication import ReplicatedServerGroup, replica_view
from repro.servers.sharding import (
    ShardedAggregator,
    ShardedParameterState,
    shard_bounds,
)

__all__ = [
    "ServerAttack",
    "ServerAttackContext",
    "SignFlipBroadcastAttack",
    "StaleReplayBroadcastAttack",
    "RandomNoiseBroadcastAttack",
    "register_server_attack",
    "available_server_attacks",
    "server_attack_factory",
    "make_server_attack",
    "ReplicatedServerGroup",
    "replica_view",
    "ShardedParameterState",
    "ShardedAggregator",
    "shard_bounds",
]
