"""Tests for the parameter server."""

import numpy as np
import pytest

from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.distributed.messages import GradientMessage
from repro.distributed.schedules import ConstantSchedule
from repro.distributed.server import ParameterServer
from repro.exceptions import DimensionMismatchError, SimulationError


def _messages(vectors, round_index=0):
    return [
        GradientMessage(round_index=round_index, worker_id=i, vector=v)
        for i, v in enumerate(vectors)
    ]


class TestParameterServer:
    def test_broadcast_carries_round_and_params(self):
        server = ParameterServer(np.ones(3), Average(), ConstantSchedule(0.1))
        broadcast = server.broadcast()
        assert broadcast.round_index == 0
        np.testing.assert_array_equal(broadcast.params, np.ones(3))

    def test_sgd_update(self):
        server = ParameterServer(np.zeros(2), Average(), ConstantSchedule(0.5))
        server.step(_messages([np.array([2.0, 4.0]), np.array([4.0, 2.0])]))
        # x1 = x0 - 0.5 * mean = -0.5 * [3, 3]
        np.testing.assert_allclose(server.params, [-1.5, -1.5])
        assert server.round_index == 1

    def test_params_property_returns_copy(self):
        server = ParameterServer(np.zeros(2), Average(), ConstantSchedule(0.1))
        view = server.params
        view[:] = 99.0
        np.testing.assert_array_equal(server.params, np.zeros(2))

    def test_message_order_does_not_matter(self):
        """The server sorts by worker id, so Krum's tie-break is stable."""
        vectors = [np.array([float(i), 0.0]) for i in range(7)]
        msgs = _messages(vectors)
        server1 = ParameterServer(np.zeros(2), Krum(f=1), ConstantSchedule(1.0))
        server2 = ParameterServer(np.zeros(2), Krum(f=1), ConstantSchedule(1.0))
        server1.step(list(msgs))
        server2.step(list(reversed(msgs)))
        np.testing.assert_array_equal(server1.params, server2.params)

    def test_rejects_empty_round(self):
        server = ParameterServer(np.zeros(2), Average(), ConstantSchedule(0.1))
        with pytest.raises(SimulationError, match="no gradient"):
            server.step([])

    def test_rejects_stale_messages(self):
        server = ParameterServer(np.zeros(2), Average(), ConstantSchedule(0.1))
        with pytest.raises(SimulationError, match="rounds"):
            server.step(_messages([np.zeros(2)], round_index=5))

    def test_rejects_duplicate_worker(self):
        server = ParameterServer(np.zeros(2), Average(), ConstantSchedule(0.1))
        msgs = [
            GradientMessage(round_index=0, worker_id=1, vector=np.zeros(2)),
            GradientMessage(round_index=0, worker_id=1, vector=np.ones(2)),
        ]
        with pytest.raises(SimulationError, match="duplicate"):
            server.step(msgs)

    def test_rejects_dimension_mismatch(self):
        server = ParameterServer(np.zeros(2), Average(), ConstantSchedule(0.1))
        with pytest.raises(DimensionMismatchError):
            server.step(_messages([np.zeros(3)]))

    def test_schedule_applied_per_round(self):
        from repro.distributed.schedules import StepDecaySchedule

        server = ParameterServer(
            np.zeros(1), Average(), StepDecaySchedule(1.0, period=1, factor=0.5)
        )
        server.step(_messages([np.array([1.0])], round_index=0))
        server.step(_messages([np.array([1.0])], round_index=1))
        # x = 0 - 1.0*1 - 0.5*1
        np.testing.assert_allclose(server.params, [-1.5])


class TestBoundedStaleness:
    def test_window_accepts_bounded_stale_messages(self):
        server = ParameterServer(
            np.zeros(2), Average(), ConstantSchedule(0.1), max_staleness=2
        )
        server.step(_messages([np.ones(2)], round_index=0))
        server.step(_messages([np.ones(2)], round_index=1))
        # Round 2 may carry a message as old as round 0.
        server.step(_messages([np.ones(2)], round_index=0))
        assert server.round_index == 3

    def test_window_rejects_too_stale_and_future(self):
        server = ParameterServer(
            np.zeros(2), Average(), ConstantSchedule(0.1), max_staleness=1
        )
        server.step(_messages([np.ones(2)], round_index=0))
        server.step(_messages([np.ones(2)], round_index=1))
        with pytest.raises(SimulationError, match="staleness window"):
            server.step(_messages([np.ones(2)], round_index=0))
        with pytest.raises(SimulationError, match="staleness window"):
            server.step(_messages([np.ones(2)], round_index=5))

    def test_negative_max_staleness_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="max_staleness"):
            ParameterServer(
                np.zeros(2), Average(), ConstantSchedule(0.1),
                max_staleness=-1,
            )

    def test_params_at_returns_historical_vectors(self):
        server = ParameterServer(
            np.zeros(1), Average(), ConstantSchedule(1.0), max_staleness=2
        )
        np.testing.assert_array_equal(server.params_at(0), [0.0])
        server.step(_messages([np.array([1.0])], round_index=0))
        server.step(_messages([np.array([1.0])], round_index=1))
        np.testing.assert_array_equal(server.params_at(2), [-2.0])
        np.testing.assert_array_equal(server.params_at(1), [-1.0])
        np.testing.assert_array_equal(server.params_at(0), [0.0])
        with pytest.raises(SimulationError, match="retained window"):
            server.params_at(3)

    def test_params_at_outside_window_rejected(self):
        server = ParameterServer(
            np.zeros(1), Average(), ConstantSchedule(1.0), max_staleness=1
        )
        for t in range(3):
            server.step(_messages([np.array([1.0])], round_index=t))
        with pytest.raises(SimulationError, match="retained window"):
            server.params_at(0)

    def test_staleness_aware_aggregator_receives_staleness(self):
        from repro.core.staleness import KardamFilter

        rule = KardamFilter(Average(), dampening="inverse")
        server = ParameterServer(
            np.zeros(1), rule, ConstantSchedule(1.0), max_staleness=1
        )
        server.step(_messages([np.array([1.0])], round_index=0))
        # A one-round-stale proposal is dampened by 1/(1+1).
        server.step(_messages([np.array([1.0])], round_index=0))
        np.testing.assert_allclose(server.params, [-1.5])
