"""Multi-layer perceptron classifier on the numpy ``nn`` substrate.

This is the reproduction of the full paper's MNIST workload: a dense
network trained by distributed SGD whose flattened parameter vector is
what the server aggregates (d ranges from thousands to hundreds of
thousands depending on the architecture).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import ClassifierMixin, Model
from repro.nn.initializers import he_normal, xavier_uniform
from repro.nn.layers import Dense, Layer, ReLU, Sigmoid, Tanh
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Sequential
from repro.utils.rng import as_generator

__all__ = ["MLPClassifier"]

_ACTIVATIONS = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid}


class MLPClassifier(ClassifierMixin, Model):
    """Fully connected softmax classifier with configurable hidden sizes.

    The underlying :class:`~repro.nn.network.Sequential` instance is a
    scratch buffer: every ``loss``/``gradient`` call loads the supplied
    flat parameters before running, so the model object itself stays
    conceptually stateless (and can be shared across simulated workers
    within one process; it is not thread-safe).
    """

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden_sizes: Sequence[int] = (100,),
        *,
        activation: str = "relu",
        init_seed: int = 0,
    ):
        if num_features < 1 or num_classes < 2:
            raise ConfigurationError(
                f"need num_features >= 1 and num_classes >= 2, got "
                f"({num_features}, {num_classes})"
            )
        if activation not in _ACTIVATIONS:
            raise ConfigurationError(
                f"unknown activation {activation!r}; choose from "
                f"{sorted(_ACTIVATIONS)}"
            )
        if any(h < 1 for h in hidden_sizes):
            raise ConfigurationError(f"hidden sizes must be >= 1, got {hidden_sizes}")
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.activation = activation
        self._loss = SoftmaxCrossEntropy()
        self._network = self._build(as_generator(init_seed))

    def _build(self, rng: np.random.Generator) -> Sequential:
        activation_cls = _ACTIVATIONS[self.activation]
        weight_init = he_normal if self.activation == "relu" else xavier_uniform
        layers: list[Layer] = []
        sizes = [self.num_features, *self.hidden_sizes, self.num_classes]
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Dense(fan_in, fan_out, rng=rng, weight_init=weight_init))
            if i < len(sizes) - 2:
                layers.append(activation_cls())
        return Sequential(layers)

    @property
    def dimension(self) -> int:
        return self._network.num_parameters

    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        return self._build(rng).get_flat_parameters()

    def loss(self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray) -> float:
        self._network.set_flat_parameters(params)
        logits = self._network.forward(np.asarray(inputs, dtype=np.float64))
        return self._loss.forward(logits, np.asarray(targets))

    def gradient(
        self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        _loss, grad = self.loss_and_gradient(params, inputs, targets)
        return grad

    def loss_and_gradient(
        self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        self._network.set_flat_parameters(params)
        return self._network.loss_and_flat_gradient(
            np.asarray(inputs, dtype=np.float64), np.asarray(targets), self._loss
        )

    def logits(self, params: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        self._network.set_flat_parameters(params)
        return self._network.forward(np.asarray(inputs, dtype=np.float64))

    def predict(self, params: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        return np.argmax(self.logits(params, inputs), axis=1).astype(np.int64)
