"""Running experiments from declarative configs."""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack
from repro.core.registry import make_aggregator
from repro.data.dataset import Dataset
from repro.distributed.metrics import TrainingHistory
from repro.experiments.builders import build_dataset_simulation
from repro.experiments.config import SGDExperimentConfig
from repro.models.base import Model

__all__ = ["run_experiment", "compare_aggregators"]

# Attack registry kept local to the runner: attacks whose constructors
# need runtime objects (models, shards) are built in the benches instead.
def _make_attack(name: str | None, kwargs: dict) -> Attack | None:
    if name is None:
        return None
    from repro.attacks import (
        BenignAttack,
        CollusionAttack,
        CrashAttack,
        GaussianAttack,
        InnerProductAttack,
        LittleIsEnoughAttack,
        OmniscientAttack,
        SignFlipAttack,
        StragglerAttack,
    )

    factories = {
        "benign": BenignAttack,
        "gaussian": GaussianAttack,
        "sign-flip": SignFlipAttack,
        "crash": CrashAttack,
        "straggler": StragglerAttack,
        "collusion": CollusionAttack,
        "omniscient": OmniscientAttack,
        "little-is-enough": LittleIsEnoughAttack,
        "inner-product": InnerProductAttack,
    }
    if name not in factories:
        from repro.exceptions import ConfigurationError

        raise ConfigurationError(
            f"unknown attack {name!r}; available: {sorted(factories)}"
        )
    return factories[name](**kwargs)


def run_experiment(
    config: SGDExperimentConfig,
    model: Model,
    train: Dataset,
    *,
    eval_dataset: Dataset | None = None,
) -> TrainingHistory:
    """Run one dataset experiment described by ``config``."""
    aggregator = make_aggregator(config.aggregator, **config.aggregator_kwargs)
    attack = _make_attack(config.attack, config.attack_kwargs)
    simulation = build_dataset_simulation(
        model,
        train,
        aggregator=aggregator,
        num_workers=config.num_workers,
        num_byzantine=config.num_byzantine,
        attack=attack,
        batch_size=config.batch_size,
        learning_rate=config.learning_rate,
        lr_timescale=config.lr_timescale,
        eval_dataset=eval_dataset,
        byzantine_slots=config.byzantine_slots,
        seed=config.seed,
    )
    return simulation.run(config.num_rounds, eval_every=config.eval_every)


def compare_aggregators(
    base_config: SGDExperimentConfig,
    aggregator_specs: dict[str, tuple[str, dict]],
    model_factory,
    train: Dataset,
    *,
    eval_dataset: Dataset | None = None,
) -> dict[str, TrainingHistory]:
    """Run the same workload under several choice functions.

    ``aggregator_specs`` maps display labels to (registry name, kwargs).
    ``model_factory`` is a zero-argument callable returning a fresh model
    per run (model instances hold scratch network state).  All runs share
    the config's seed, so honest gradients are identical across rules —
    differences in the histories are attributable to the rules alone.
    """
    results: dict[str, TrainingHistory] = {}
    for label, (name, kwargs) in aggregator_specs.items():
        config = SGDExperimentConfig(
            num_workers=base_config.num_workers,
            num_byzantine=base_config.num_byzantine,
            num_rounds=base_config.num_rounds,
            aggregator=name,
            aggregator_kwargs=kwargs,
            attack=base_config.attack,
            attack_kwargs=base_config.attack_kwargs,
            learning_rate=base_config.learning_rate,
            lr_timescale=base_config.lr_timescale,
            batch_size=base_config.batch_size,
            eval_every=base_config.eval_every,
            seed=base_config.seed,
            byzantine_slots=base_config.byzantine_slots,
        )
        results[label] = run_experiment(
            config, model_factory(), train, eval_dataset=eval_dataset
        )
    return results
