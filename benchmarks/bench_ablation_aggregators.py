"""E10 — Ablation: Krum vs the robust-statistics family under every attack.

DESIGN.md's design-choice question: Krum *selects* a proposed vector via
distance filtering; medians/trimmed means *synthesize* a new vector from
coordinate statistics.  This bench measures all rules against all
attacks in the static resilience harness and reports which survive where
— contextualizing why the paper's selection approach matters (e.g. the
selected vector is always a real gradient someone computed, and the
little-is-enough attack that nudges coordinate statistics).
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.analysis.resilience import estimate_resilience
from repro.attacks.collusion import CollusionAttack
from repro.attacks.modern import LittleIsEnoughAttack
from repro.attacks.omniscient import OmniscientAttack
from repro.attacks.random_noise import GaussianAttack
from repro.baselines.average import Average
from repro.baselines.distance_based import ClosestToAll
from repro.baselines.majority import MinimalDiameterSubset
from repro.baselines.medians import (
    CoordinateWiseMedian,
    GeometricMedian,
    TrimmedMean,
)
from repro.core.bulyan import Bulyan
from repro.core.krum import Krum, MultiKrum
from repro.experiments.reporting import format_table

N, F = 13, 3
DIMENSION = 4
SIGMA = 0.02
TRIALS = 300


def _rules():
    return {
        "krum": Krum(f=F),
        "multi-krum m=6": MultiKrum(f=F, m=6),
        "average": Average(),
        "closest-to-all": ClosestToAll(),
        "minimal-diameter": MinimalDiameterSubset(f=F),
        "coord-median": CoordinateWiseMedian(),
        "trimmed-mean": TrimmedMean(f=F),
        "geometric-median": GeometricMedian(),
    }


def _attacks():
    return {
        "gaussian": GaussianAttack(sigma=200.0),
        "omniscient": OmniscientAttack(scale=10.0),
        "collusion": CollusionAttack(decoy_distance=100.0, against_gradient=True),
        "little-is-enough": LittleIsEnoughAttack(z=1.0),
    }


def bench_ablation_rules_vs_attacks(benchmark):
    def run():
        table = {}
        for rule_name, rule in _rules().items():
            for attack_name, attack in _attacks().items():
                report = estimate_resilience(
                    rule,
                    attack,
                    n=N,
                    f=F,
                    dimension=DIMENSION,
                    sigma=SIGMA,
                    trials=TRIALS,
                    seed=hash((rule_name, attack_name)) % 2**31,
                )
                table[(rule_name, attack_name)] = report
        return table

    table = run_once(benchmark, run)
    attack_names = list(_attacks())
    emit(
        format_table(
            ["rule", *attack_names],
            [
                [
                    rule_name,
                    *[
                        "ok" if table[(rule_name, a)].satisfied else "FAIL"
                        for a in attack_names
                    ],
                ]
                for rule_name in _rules()
            ],
            title=(
                f"Ablation — condition (i) of Def. 3.2 per rule × attack "
                f"(n={N}, f={F}, σ={SIGMA})"
            ),
        )
    )
    # The paper's rule and the robust family survive the loud attacks.
    for rule_name in ("krum", "multi-krum m=6", "minimal-diameter",
                      "coord-median", "trimmed-mean", "geometric-median"):
        for attack_name in ("gaussian", "omniscient"):
            assert table[(rule_name, attack_name)].satisfied, (
                f"{rule_name} failed under {attack_name}"
            )
    # The linear rule fails the direction-reversing attack (Lemma 3.1).
    assert not table[("average", "omniscient")].satisfied
    # The Figure 2 rule fails under collusion; Krum does not.
    assert not table[("closest-to-all", "collusion")].satisfied
    assert table[("closest-to-all", "collusion")].byzantine_selection_rate > 0.9
    assert table[("krum", "collusion")].satisfied


def bench_ablation_byzantine_selection_rates(benchmark):
    """Selection-based rules only: how often does an adversarial
    proposal get picked?  (Statistical rules never 'select'.)"""

    def run():
        rows = []
        for rule_name in ("krum", "multi-krum m=6", "closest-to-all"):
            rule = _rules()[rule_name]
            for attack_name, attack in _attacks().items():
                report = estimate_resilience(
                    rule, attack, n=N, f=F, dimension=DIMENSION,
                    sigma=SIGMA, trials=TRIALS,
                    seed=hash((rule_name, attack_name, 1)) % 2**31,
                )
                rows.append(
                    (rule_name, attack_name,
                     100 * report.byzantine_selection_rate)
                )
        return rows

    rows = run_once(benchmark, run)
    emit(
        format_table(
            ["rule", "attack", "byz-sel%"],
            [list(r) for r in rows],
            title="Ablation — Byzantine selection rate (selection rules)",
        )
    )
    rates = {(r, a): v for r, a, v in rows}
    assert rates[("krum", "gaussian")] < 2.0
    assert rates[("krum", "collusion")] < 2.0
    assert rates[("closest-to-all", "collusion")] > 95.0


def bench_ablation_bulyan_stealth_extension(benchmark):
    """Extension (authors' ICML'18 follow-up): under the coordinate-
    planting stealth attack that Krum's whole-vector selection admits,
    Bulyan's trimmed aggregation caps the planted coordinate's error.

    The attack copies the honest mean (unbeatable Krum score) and plants
    +3 honest-std on one coordinate."""
    import numpy as np

    n, f, d = 15, 3, 20
    trials = 100

    def run():
        krum_rule, bulyan_rule = Krum(f=f), Bulyan(f=f)
        krum_errors, bulyan_errors = [], []
        for trial in range(trials):
            rng = np.random.default_rng(trial)
            honest = rng.standard_normal((n - f, d))
            crafted = np.tile(honest.mean(axis=0), (f, 1))
            crafted[:, 0] += 3.0 * honest[:, 0].std()
            stack = np.vstack([honest, crafted])
            krum_errors.append(abs(float(krum_rule.aggregate(stack)[0])))
            bulyan_errors.append(abs(float(bulyan_rule.aggregate(stack)[0])))
        return float(np.mean(krum_errors)), float(np.mean(bulyan_errors))

    krum_error, bulyan_error = run_once(benchmark, run)
    emit(
        format_table(
            ["rule", "mean |planted coordinate error|"],
            [["krum", krum_error], ["bulyan", bulyan_error]],
            title=(
                f"Extension — coordinate-planting stealth attack "
                f"(n={n}, f={f}, d={d}, {trials} trials)"
            ),
        )
    )
    assert bulyan_error < krum_error, (
        "Bulyan should cap the planted coordinate below Krum's error"
    )
