"""Event-driven gossip engine: delays, local f, equivocation, guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.base import Attack, AttackContext
from repro.core.registry import make_aggregator
from repro.distributed.schedules import ConstantSchedule
from repro.exceptions import ConfigurationError, SimulationError
from repro.gradients.oracle import GaussianOracleEstimator
from repro.topology import GossipSimulation, make_topology


def gradient_fn(x: np.ndarray) -> np.ndarray:
    return x  # quadratic bowl centred at the origin


def build(
    *,
    num_honest=8,
    num_byzantine=2,
    dimension=4,
    topology="complete",
    topology_kwargs=None,
    aggregator=None,
    attack=None,
    edge_delay=None,
    seed=3,
    sigma=0.5,
    **kwargs,
):
    if num_byzantine > 0 and attack is None:
        from repro.attacks.simple import SignFlipAttack

        attack = SignFlipAttack()
    return GossipSimulation(
        topology=make_topology(topology, topology_kwargs or {}),
        aggregator=aggregator or make_aggregator("average"),
        schedule=ConstantSchedule(0.1),
        honest_estimators=[
            GaussianOracleEstimator(gradient_fn, dimension, sigma)
            for _ in range(num_honest)
        ],
        initial_params=np.ones(dimension),
        num_byzantine=num_byzantine,
        attack=attack,
        edge_delay=edge_delay,
        true_gradient_fn=gradient_fn,
        seed=seed,
        **kwargs,
    )


class RecordingAttack(Attack):
    """Captures every context it crafts from; sends the honest mean."""

    name = "recording"
    stateful = True

    def __init__(self):
        self.contexts: list[AttackContext] = []

    def reset(self):
        self.contexts = []

    def craft(self, context):
        context.validate()
        self.contexts.append(context)
        return self._output(
            context,
            np.tile(context.honest_mean, (context.num_byzantine, 1)),
        )


class TestConstruction:
    def test_byzantine_without_attack_rejected(self):
        with pytest.raises(ConfigurationError, match="attack"):
            GossipSimulation(
                topology=make_topology("ring"),
                aggregator=make_aggregator("average"),
                schedule=ConstantSchedule(0.1),
                honest_estimators=[
                    GaussianOracleEstimator(gradient_fn, 4, 0.5)
                    for _ in range(6)
                ],
                initial_params=np.ones(4),
                num_byzantine=2,
            )

    def test_attack_without_byzantine_rejected(self):
        from repro.attacks.simple import SignFlipAttack

        with pytest.raises(ConfigurationError, match="num_byzantine"):
            build(num_byzantine=0, attack=SignFlipAttack())

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="dimension"):
            GossipSimulation(
                topology=make_topology("complete"),
                aggregator=make_aggregator("average"),
                schedule=ConstantSchedule(0.1),
                honest_estimators=[
                    GaussianOracleEstimator(gradient_fn, 4, 0.5)
                ],
                initial_params=np.ones(5),
            )

    def test_explicit_slots_resolve(self):
        sim = build(byzantine_slots=[0, 5])
        assert sim.byzantine_ids == [0, 5]
        assert sim.reference_node == 1

    def test_bad_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            build(byzantine_slots=[0, 0])
        with pytest.raises(ConfigurationError):
            build(byzantine_slots=[0, 99])
        with pytest.raises(ConfigurationError):
            build(byzantine_slots="middle")

    def test_bad_topology_type_rejected(self):
        with pytest.raises(ConfigurationError, match="Topology"):
            GossipSimulation(
                topology=42,
                aggregator=make_aggregator("average"),
                schedule=ConstantSchedule(0.1),
                honest_estimators=[
                    GaussianOracleEstimator(gradient_fn, 4, 0.5)
                ],
                initial_params=np.ones(4),
            )

    def test_string_specs_resolve_through_registries(self):
        sim = GossipSimulation(
            topology="ring",
            aggregator=make_aggregator("average"),
            schedule=ConstantSchedule(0.1),
            honest_estimators=[
                GaussianOracleEstimator(gradient_fn, 4, 0.5)
                for _ in range(6)
            ],
            initial_params=np.ones(4),
            edge_delay="constant",
            seed=0,
        )
        sim.run(3)


class TestEventCore:
    def test_zero_delay_messages_arrive_same_round(self):
        """With no edge delay every aggregation sees the full fresh
        neighborhood: on the complete graph all honest nodes make the
        same update, so honest params stay in exact consensus."""
        sim = build(num_byzantine=0)
        sim.run(5)
        metrics = sim.consensus_metrics()
        # Identical trajectories: exact-zero pairwise disagreement.  The
        # barycenter distance is only float-mean close (the mean of n
        # identical doubles need not be bit-identical to them).
        assert metrics["disagreement"] == 0.0
        assert metrics["consensus_error"] < 1e-12
        stack = sim.honest_params
        assert all(np.array_equal(stack[0], row) for row in stack[1:])

    def test_constant_edge_delay_staggers_arrivals(self):
        """With a constant lag of 1, round-t aggregation sees neighbors'
        round t−1 proposals (and round 0 is clamped fresh), so honest
        trajectories diverge — nonzero disagreement — and differ from
        the zero-delay run."""
        fresh = build(num_byzantine=0, topology="ring",
                      topology_kwargs={"degree": 4})
        lagged = build(num_byzantine=0, topology="ring",
                       topology_kwargs={"degree": 4}, edge_delay="constant")
        fresh.run(6)
        lagged.run(6)
        assert not np.array_equal(fresh.params, lagged.params)
        assert lagged.consensus_metrics()["disagreement"] > 0.0

    def test_history_metrics_and_extras(self):
        sim = build()
        history = sim.run(10, eval_every=4)
        assert [r.round_index for r in history.records] == list(range(10))
        evaluated = [r for r in history.records if r.extras]
        assert [r.round_index for r in evaluated] == [0, 4, 8, 9]
        for record in evaluated:
            assert "consensus_error" in record.extras
            assert "disagreement" in record.extras
            assert record.grad_norm is not None

    def test_runs_continue_across_calls(self):
        sim = build()
        first = sim.run(6)
        second = sim.run(6)
        assert first.records[-1].round_index == 5
        assert second.records[0].round_index == 6
        combined = build().run(12)
        assert (
            combined.records[-1].params_norm
            == second.records[-1].params_norm
        )

    def test_determinism_round_trip(self):
        a = build(topology="erdos-renyi", topology_kwargs={"edge_prob": 0.6},
                  edge_delay="random").run(8)
        b = build(topology="erdos-renyi", topology_kwargs={"edge_prob": 0.6},
                  edge_delay="random").run(8)
        for ra, rb in zip(a.records, b.records):
            assert ra.params_norm == rb.params_norm
            assert ra.selected == rb.selected

    def test_bad_round_arguments(self):
        sim = build()
        with pytest.raises(ConfigurationError):
            sim.run(0)
        with pytest.raises(ConfigurationError):
            sim.run(5, eval_every=0)


class TestLocalF:
    def test_local_f_counts_byzantine_neighbors(self):
        """A rule builder sees the *local* bound: the count of Byzantine
        ids inside each aggregating node's member set, not the global f."""
        seen: set[int] = set()

        def builder(f_local: int):
            seen.add(f_local)
            return make_aggregator("average")

        sim = build(
            num_honest=10,
            num_byzantine=2,
            topology="ring",
            topology_kwargs={"degree": 4},
            aggregator_builder=builder,
        )
        sim.run(3)
        # Ring of 12 nodes, byz at 10 and 11: some honest neighborhoods
        # contain 0, some 1, some 2 of them.
        assert seen == {0, 1, 2}

    def test_stateful_rules_not_shared_across_nodes(self):
        """Without a builder, each node must get its own copy of the
        aggregator — a stateful rule (kardam) would otherwise mix the
        per-node histories."""
        rule = make_aggregator("kardam", f=1)
        sim = build(
            num_honest=8,
            num_byzantine=0,
            topology="ring",
            topology_kwargs={"degree": 4},
            aggregator=rule,
        )
        sim.run(4)
        rules = set(id(r) for r in sim._rules.values())
        assert len(rules) == len(sim._rules)
        assert id(rule) not in rules


class TestAttackIntegration:
    def test_context_carries_neighbor_views(self):
        attack = RecordingAttack()
        sim = build(
            num_honest=6,
            num_byzantine=2,
            topology="ring",
            topology_kwargs={"degree": 4},
            attack=attack,
        )
        sim.run(3)
        assert len(attack.contexts) == 3
        for context in attack.contexts:
            assert context.receiver is None
            assert len(context.byzantine_neighbors) == 2
            for b, neighbors in zip(
                context.byzantine_indices, context.byzantine_neighbors
            ):
                expected = sim.topology.neighbors(
                    int(b), context.round_index
                )
                assert np.array_equal(neighbors, expected)
            assert context.honest_params.shape == (6, 4)

    def test_selection_feedback_reaches_attack(self):
        attack = RecordingAttack()
        sim = build(num_honest=6, num_byzantine=2, attack=attack)
        sim.run(3)
        assert attack.contexts[0].selected_last_round is None
        for context in attack.contexts[1:]:
            feedback = context.selected_last_round
            assert feedback is not None
            assert feedback.shape == (2,)
            # Averaging reports an empty selected set (no selection
            # signal to probe), so the Byzantine flags read False — the
            # same verdict the server path gives probing attacks.
            assert not np.any(feedback)

    def test_selecting_rule_marks_accepted_byzantine_slots(self):
        attack = RecordingAttack()
        sim = build(
            num_honest=8,
            num_byzantine=2,
            attack=attack,
            aggregator=make_aggregator("multi-krum", f=2, m=6),
        )
        sim.run(4)
        flagged = [
            bool(np.any(c.selected_last_round))
            for c in attack.contexts
            if c.selected_last_round is not None
        ]
        # Mean-mimicking proposals sit at the centre of the cloud;
        # multi-krum's committee accepts them in (at least) some rounds.
        assert any(flagged)

    def test_equivocation_crafts_per_receiver(self):
        attack = RecordingAttack()
        sim = build(
            num_honest=6,
            num_byzantine=2,
            topology="ring",
            topology_kwargs={"degree": 4},
            attack=attack,
            equivocate=True,
        )
        sim.run(2)
        receivers = [c.receiver for c in attack.contexts]
        # Every craft targets a specific honest out-neighbor of the
        # Byzantine pair (no shared-proposal craft), in sorted id order,
        # with the same receiver set each round on the static ring.
        assert None not in receivers
        per_round = receivers[: len(receivers) // 2]
        assert receivers == sorted(per_round) * 2
        assert all(r in sim.honest_ids for r in receivers)
        expected = sorted(
            {
                int(u)
                for b in sim.byzantine_ids
                for u in sim.topology.neighbors(b, 0)
                if int(u) in sim.honest_ids
            }
        )
        assert per_round == expected

    def test_equivocating_gaussian_differs_per_edge(self):
        """A randomized attack crafts genuinely different messages per
        receiving edge under equivocation."""
        from repro.attacks.random_noise import GaussianAttack

        sim = build(
            num_honest=6,
            num_byzantine=1,
            topology="ring",
            topology_kwargs={"degree": 4},
            attack=GaussianAttack(sigma=5.0),
            equivocate=True,
        )
        sim._push_round(0)
        import heapq

        # Drain train + craft events only.
        while sim._events:
            t, phase, node = heapq.heappop(sim._events)
            if phase == 0:
                sim._handle_train(t, node)
            elif phase == 1:
                sim._handle_craft(t)
                break
        crafted = sim._crafted_by_receiver
        assert len(crafted) >= 2
        values = list(crafted.values())
        assert not np.array_equal(values[0], values[1])

    def test_halt_on_nonfinite_names_the_node(self):
        from repro.attacks.simple import NonFiniteAttack

        sim = build(
            num_honest=6,
            num_byzantine=1,
            attack=NonFiniteAttack(),
            halt_on_nonfinite=True,
        )
        with pytest.raises(SimulationError, match="node"):
            sim.run(3)


class TestAccessors:
    def test_params_is_reference_node_copy(self):
        sim = build()
        params = sim.params
        params[:] = 99.0
        assert not np.array_equal(sim.params, params)

    def test_node_params_bounds_checked(self):
        sim = build()
        with pytest.raises(ConfigurationError):
            sim.node_params(-1)
        with pytest.raises(ConfigurationError):
            sim.node_params(sim.num_nodes)

    def test_honest_params_stack_shape(self):
        sim = build(num_honest=7, num_byzantine=2, dimension=3)
        assert sim.honest_params.shape == (7, 3)
