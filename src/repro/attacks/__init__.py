"""Byzantine attack suite.

The paper's adversary model gives Byzantine workers *full knowledge* of
the system — the choice function, every other proposal, and the ability
to collaborate.  :class:`AttackContext` carries exactly that knowledge;
an :class:`Attack` maps it to the f vectors the Byzantine workers send.

Era-accurate attacks (used by the reproduction benches):

* :class:`LinearHijackAttack` — the constructive proof of Lemma 3.1.
* :class:`CollusionAttack` — the Figure 2 scenario against the
  "closest to all" rule.
* :class:`GaussianAttack`, :class:`OmniscientAttack` — the two attacks
  of the full paper's evaluation.
* :class:`SignFlipAttack`, :class:`CrashAttack`, :class:`StragglerAttack`,
  :class:`LabelFlipAttack` — the failure modes the introduction motivates.

Extensions (post-2017 attacks, for the ablation benches):
:class:`LittleIsEnoughAttack`, :class:`InnerProductAttack`.

Adaptive adversaries (keyed to the defenses, for the tournament):
:class:`StalenessGamingAttack`, :class:`LipschitzMimicryAttack`,
:class:`DefenseProbingAttack`, :class:`BanditProbingAttack`.
"""

from repro.attacks.adaptive import (
    BanditProbingAttack,
    DefenseProbingAttack,
    LipschitzMimicryAttack,
    StalenessGamingAttack,
)
from repro.attacks.base import Attack, AttackContext, BenignAttack
from repro.attacks.collusion import CollusionAttack
from repro.attacks.composite import CompositeAttack
from repro.attacks.hijack import LinearHijackAttack
from repro.attacks.modern import InnerProductAttack, LittleIsEnoughAttack
from repro.attacks.omniscient import OmniscientAttack
from repro.attacks.poisoning import LabelFlipAttack
from repro.attacks.random_noise import GaussianAttack
from repro.attacks.registry import available_attacks, make_attack, register_attack
from repro.attacks.simple import (
    CrashAttack,
    NonFiniteAttack,
    SignFlipAttack,
    StragglerAttack,
)

__all__ = [
    "Attack",
    "AttackContext",
    "BenignAttack",
    "GaussianAttack",
    "SignFlipAttack",
    "CrashAttack",
    "NonFiniteAttack",
    "StragglerAttack",
    "LinearHijackAttack",
    "CollusionAttack",
    "CompositeAttack",
    "OmniscientAttack",
    "LabelFlipAttack",
    "LittleIsEnoughAttack",
    "InnerProductAttack",
    "StalenessGamingAttack",
    "LipschitzMimicryAttack",
    "DefenseProbingAttack",
    "BanditProbingAttack",
    "register_attack",
    "available_attacks",
    "make_attack",
]
