"""rng-stream-order: spawn counts match consumers; streams only append.

``spawn_generators(seed, n)`` is sequential and prefix-stable: the first
k children are identical for every ``n >= k``, so consumers may *append*
streams without perturbing existing trajectories — the contract PR 5
(delay stream), PR 8 (server-attack stream) and PR 9 (topology stream)
each relied on.  What silently breaks it is an *insertion*: a new stream
consumed at an existing offset shifts every later stream's index, and
every published trajectory with it.

For each ``spawn_generators(seed, k)`` site this rule checks that the
spawn count matches the distinct stream consumers:

- a tuple-unpacked spawn must unpack exactly ``k`` targets;
- a ``base + K`` spawn assigned to one name must consume the worker
  block (``streams[:base]``) and literal tail offsets ``base + j`` with
  every ``j < K``;
- offsets past the spawn count, and spawned-but-unconsumed offsets, are
  findings (a gap is only legal when the frozen layout declares the slot
  reserved).

Modules with a **frozen stream layout** (the manifest below) addition-
ally pin each tail offset to a role keyword: the consuming statement
must mention its slot's keyword, and the tail length must equal the
manifest's.  Appending a stream therefore requires extending the
manifest — an explicit, reviewable act — while an insertion that shifts
existing indices mismatches the frozen roles and is flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.base import ProjectRule
from repro.lint.findings import Finding
from repro.lint.project import ProjectContext

__all__ = ["RngStreamOrderRule", "FROZEN_STREAM_LAYOUTS"]

#: module-path suffix -> role keyword per tail offset (``base + j`` maps
#: to entry ``j``).  ``None`` marks a deliberately reserved slot: it is
#: spawned to pin later streams' positions and must NOT be consumed.
#: Append-only contract: extending a layout appends entries; editing or
#: reordering existing entries means stream indices shifted.
FROZEN_STREAM_LAYOUTS: dict[str, tuple[str | None, ...]] = {
    "repro/distributed/simulator.py": ("attack", "delay", "server"),
    "repro/topology/gossip.py": ("attack", "delay", None, "topology"),
}


def _int_constant(node: ast.expr) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def _split_count(node: ast.expr) -> tuple[str | None, int] | None:
    """Decompose a spawn count into ``(base_expr_source, tail_len)``.

    ``7`` -> ``(None, 7)``; ``self.num_honest + 3`` ->
    ``("self.num_honest", 3)``; anything else is unanalyzable.
    """
    literal = _int_constant(node)
    if literal is not None:
        return (None, literal)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        right = _int_constant(node.right)
        if right is not None:
            return (ast.unparse(node.left), right)
        left = _int_constant(node.left)
        if left is not None:
            return (ast.unparse(node.right), left)
    return None


class _Consumer:
    """One ``streams[...]`` use: a literal/tail offset or the block slice."""

    def __init__(self, node: ast.Subscript, statement: ast.stmt):
        self.node = node
        self.statement = statement
        self.offset: int | None = None
        self.is_block = False
        self.recognized = False

    def classify(self, base: str | None) -> None:
        index = self.node.slice
        if isinstance(index, ast.Slice):
            upper = (
                ast.unparse(index.upper) if index.upper is not None else None
            )
            if (
                index.lower is None
                and index.step is None
                and base is not None
                and upper == base
            ):
                self.is_block = True
                self.recognized = True
            return
        literal = _int_constant(index)
        if base is None:
            if literal is not None:
                self.offset = literal
                self.recognized = True
            return
        split = _split_count(index)
        if split is not None and split[0] == base:
            self.offset = split[1]
            self.recognized = True
        elif isinstance(index, ast.expr) and ast.unparse(index) == base:
            self.offset = 0
            self.recognized = True


def _enclosing_function(
    tree: ast.Module, target: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | ast.Module:
    """The innermost def containing ``target`` (the module if none)."""
    best: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module = tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if any(child is target for child in ast.walk(node)):
                best = node  # walk order visits outer defs first
    return best


def _statement_of(scope: ast.AST, target: ast.AST) -> ast.stmt | None:
    statement: ast.stmt | None = None
    for node in ast.walk(scope):
        if isinstance(node, ast.stmt) and any(
            child is target for child in ast.walk(node)
        ):
            statement = node  # walk order: the last hit is the innermost
    return statement


class RngStreamOrderRule(ProjectRule):
    """spawn_generators counts match consumers; frozen layouts only grow."""

    name = "rng-stream-order"
    description = (
        "each spawn_generators(seed, k) site consumes exactly its k "
        "streams; frozen stream layouts are append-only (insertions "
        "shift existing stream indices)"
    )

    def __init__(
        self,
        frozen_layouts: dict[str, tuple[str | None, ...]] | None = None,
        spawn_names: tuple[str, ...] = ("spawn_generators",),
    ):
        self.frozen_layouts = dict(
            FROZEN_STREAM_LAYOUTS if frozen_layouts is None else frozen_layouts
        )
        self.spawn_names = tuple(spawn_names)

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            layout = None
            for suffix, entry in self.frozen_layouts.items():
                if module.is_module(suffix):
                    layout = entry
            for call in ast.walk(module.tree):
                if (
                    isinstance(call, ast.Call)
                    and self._is_spawn(call.func)
                    and len(call.args) >= 2
                ):
                    findings.extend(
                        self._check_site(module, call, layout)
                    )
        return sorted(findings, key=Finding.sort_key)

    def _is_spawn(self, func: ast.expr) -> bool:
        if isinstance(func, ast.Name):
            return func.id in self.spawn_names
        if isinstance(func, ast.Attribute):
            return func.attr in self.spawn_names
        return False

    def _check_site(
        self,
        module,
        call: ast.Call,
        layout: tuple[str | None, ...] | None,
    ) -> list[Finding]:
        split = _split_count(call.args[1])
        if split is None:
            return []  # non-constant count: nothing provable
        base, tail = split

        scope = _enclosing_function(module.tree, call)
        statement = _statement_of(scope, call)
        if statement is None:
            return []

        # Tuple-unpacked spawn: target count must equal the literal k.
        if (
            base is None
            and isinstance(statement, ast.Assign)
            and len(statement.targets) == 1
            and isinstance(statement.targets[0], (ast.Tuple, ast.List))
        ):
            targets = statement.targets[0].elts
            if not any(isinstance(t, ast.Starred) for t in targets) and (
                len(targets) != tail
            ):
                return [
                    self.project_finding(
                        module.path,
                        call,
                        f"spawn_generators(..., {tail}) is unpacked into "
                        f"{len(targets)} target(s) — the spawn count must "
                        f"match the distinct stream consumers",
                    )
                ]
            return []

        if not (
            isinstance(statement, ast.Assign)
            and len(statement.targets) == 1
            and isinstance(statement.targets[0], ast.Name)
        ):
            return []
        streams_name = statement.targets[0].id

        consumers: list[_Consumer] = []
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == streams_name
            ):
                consumer_statement = _statement_of(scope, node)
                if consumer_statement is None or consumer_statement is statement:
                    continue
                consumer = _Consumer(node, consumer_statement)
                consumer.classify(base)
                consumers.append(consumer)

        findings: list[Finding] = []
        consumed: dict[int, _Consumer] = {}
        all_recognized = all(c.recognized for c in consumers)
        for consumer in consumers:
            if consumer.offset is None:
                continue
            if consumer.offset >= tail:
                findings.append(
                    self.project_finding(
                        module.path,
                        consumer.node,
                        f"stream offset {self._offset_label(base, consumer.offset)} "
                        f"is outside the spawned range — only {tail} tail "
                        f"stream(s) were spawned at this site",
                    )
                )
            else:
                consumed.setdefault(consumer.offset, consumer)

        if layout is not None:
            findings.extend(
                self._check_layout(
                    module, call, base, tail, layout, consumed, consumers
                )
            )
        elif all_recognized and consumers:
            for offset in range(tail):
                if offset not in consumed:
                    findings.append(
                        self.project_finding(
                            module.path,
                            call,
                            f"stream "
                            f"{self._offset_label(base, offset)} is spawned "
                            f"but never consumed — remove it, consume it, "
                            f"or declare the slot reserved in the frozen "
                            f"stream layout (new streams may only append)",
                        )
                    )
        return findings

    @staticmethod
    def _offset_label(base: str | None, offset: int) -> str:
        if base is None:
            return f"[{offset}]"
        return f"[{base} + {offset}]" if offset else f"[{base}]"

    def _check_layout(
        self,
        module,
        call: ast.Call,
        base: str | None,
        tail: int,
        layout: tuple[str | None, ...],
        consumed: dict[int, "_Consumer"],
        consumers: list["_Consumer"],
    ) -> list[Finding]:
        findings: list[Finding] = []
        if tail != len(layout):
            findings.append(
                self.project_finding(
                    module.path,
                    call,
                    f"this site spawns {tail} tail stream(s) but the frozen "
                    f"stream layout declares {len(layout)} "
                    f"({[r or '<reserved>' for r in layout]}) — new streams "
                    f"may only append, and appending requires extending the "
                    f"layout manifest in rng_stream_order.py",
                )
            )
            return findings
        if base is not None and not any(c.is_block for c in consumers):
            findings.append(
                self.project_finding(
                    module.path,
                    call,
                    f"the worker stream block [:{base}] is never consumed "
                    f"at this frozen-layout site",
                )
            )
        for offset, role in enumerate(layout):
            consumer = consumed.get(offset)
            label = self._offset_label(base, offset)
            if role is None:
                if consumer is not None:
                    findings.append(
                        self.project_finding(
                            module.path,
                            consumer.node,
                            f"stream {label} is a reserved slot in the "
                            f"frozen layout (spawned only to pin later "
                            f"streams' positions) — consuming it repurposes "
                            f"the slot and shifts stream semantics",
                        )
                    )
                continue
            if consumer is None:
                findings.append(
                    self.project_finding(
                        module.path,
                        call,
                        f"stream {label} is frozen as the {role!r} stream "
                        f"but never consumed — removing a stream shifts "
                        f"every later index; update the layout manifest "
                        f"deliberately if the stream really went away",
                    )
                )
                continue
            statement_source = ast.get_source_segment(
                module.source, consumer.statement
            ) or ""
            if role.lower() not in statement_source.lower():
                findings.append(
                    self.project_finding(
                        module.path,
                        consumer.node,
                        f"stream {label} is frozen as the {role!r} stream "
                        f"but its consuming statement does not mention "
                        f"{role!r} — an inserted stream here would shift "
                        f"existing stream indices (streams are append-only)",
                    )
                )
        return findings
