"""Whole-program context for project-scoped lint rules.

Per-file rules (:class:`~repro.lint.base.LintRule` over one
:class:`~repro.lint.base.ModuleContext`) cannot see the invariants the
codebase actually rests on: eight registries that must stay in sync with
contract tests, CLI choices and README tables; purity contracts that
hold only *transitively* through helper calls; RNG stream layouts whose
order is shared across modules.  A :class:`ProjectContext` is built once
per lint run over every linted module and hands project-scoped rules

- a **symbol table** (top-level functions, classes and their methods,
  per-module import aliases, with re-export chains followed),
- an **intra-project call graph** with method resolution through
  ``self.``/``cls.`` receivers and cross-module base classes (the
  registry/ABC subclass pattern the library uses everywhere), and
- the **auxiliary sources** whole-program rules need to cross-check:
  the project's ``tests/`` tree (parsed, facts only — findings never
  anchor there) and its ``README.md``.

The graph is deliberately conservative: unresolvable receivers (instance
attributes, closure parameters, third-party modules) produce no edges,
so reachability is a *lower* bound — rules built on it flag only what
they can prove.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path, PurePath

from repro.lint.base import ModuleContext

__all__ = [
    "Document",
    "FunctionInfo",
    "ClassInfo",
    "ProjectContext",
    "build_project_context",
    "discover_project_root",
]

#: ``(dotted module name, qualified symbol name)`` — the node identity
#: used by the symbol table and the call graph.  Qualified names are
#: ``"function"`` for top-level defs and ``"Class.method"`` for methods.
SymbolKey = tuple[str, str]


@dataclass(frozen=True)
class Document:
    """A non-Python project source (README, docs) rules may cross-check."""

    path: str
    text: str

    @property
    def posix_path(self) -> str:
        return PurePath(self.path).as_posix()


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method in the project symbol table."""

    key: SymbolKey
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: ModuleContext
    class_name: str | None = None


@dataclass(frozen=True)
class ClassInfo:
    """One class definition in the project symbol table."""

    key: SymbolKey
    node: ast.ClassDef
    module: ModuleContext
    base_names: tuple[str, ...] = ()
    base_keys: tuple[SymbolKey, ...] = field(default=(), compare=False)


def _module_dotted_name(path: str) -> str:
    """The dotted module name for a source file.

    Prefers the filesystem truth (walk up while ``__init__.py`` exists);
    for paths that do not exist on disk (fixture snippets with fake
    library paths) falls back to the components after the last ``src``
    directory, which matches both the repo layout and the fixture
    convention of faking ``src/<pkg>/...`` paths.
    """
    concrete = Path(path)
    if concrete.is_file():
        names = [] if concrete.stem == "__init__" else [concrete.stem]
        parent = concrete.parent
        while (parent / "__init__.py").is_file():
            names.insert(0, parent.name)
            parent = parent.parent
        if names:
            return ".".join(names)
    parts = list(PurePath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src") :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    cleaned = [part for part in parts if part not in ("/", "\\", "..", ".")]
    return ".".join(cleaned) or "<module>"


def _is_package(path: str) -> bool:
    return PurePath(path).name == "__init__.py"


#: Sentinel import-target kinds.
_MODULE = "module"
_SYMBOL = "symbol"


def _collect_imports(
    module_name: str, is_package: bool, tree: ast.Module
) -> dict[str, tuple[str, str, str | None]]:
    """Alias table for one module: ``alias -> (kind, module, symbol)``.

    Function-level imports (the lazy-import idiom used to break registry
    import cycles) are folded into the module-level table — good enough
    for reachability, since aliases are unique in practice.
    """
    imports: dict[str, tuple[str, str, str | None]] = {}
    package_parts = module_name.split(".")
    if not is_package:
        package_parts = package_parts[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[bound] = (_MODULE, target, None)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[: len(package_parts) - (node.level - 1)]
                target_module = ".".join(
                    base + (node.module.split(".") if node.module else [])
                )
            else:
                target_module = node.module or ""
            if not target_module:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = (_SYMBOL, target_module, alias.name)
    return imports


class ProjectContext:
    """Everything a project-scoped rule can see, built once per run."""

    def __init__(
        self,
        modules: Iterable[ModuleContext],
        auxiliary: Iterable[ModuleContext] = (),
        documents: Iterable[Document] = (),
    ):
        self.modules: tuple[ModuleContext, ...] = tuple(modules)
        self.auxiliary: tuple[ModuleContext, ...] = tuple(auxiliary)
        self.documents: tuple[Document, ...] = tuple(documents)

        #: dotted module name -> ModuleContext (linted modules only)
        self.modules_by_name: dict[str, ModuleContext] = {}
        self._module_names: dict[str, str] = {}
        for module in self.modules:
            name = _module_dotted_name(module.path)
            self._module_names[module.path] = name
            self.modules_by_name[name] = module

        self.functions: dict[SymbolKey, FunctionInfo] = {}
        self.classes: dict[SymbolKey, ClassInfo] = {}
        self._imports: dict[str, dict[str, tuple[str, str, str | None]]] = {}
        self._build_symbols()
        self._resolve_class_bases()
        self._callees: dict[SymbolKey, set[SymbolKey]] = {}
        self._build_call_graph()

    # -- construction --------------------------------------------------

    def _build_symbols(self) -> None:
        for module in self.modules:
            name = self._module_names[module.path]
            self._imports[name] = _collect_imports(
                name, _is_package(module.posix_path), module.tree
            )
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    key = (name, node.name)
                    self.functions[key] = FunctionInfo(
                        key=key, node=node, module=module
                    )
                elif isinstance(node, ast.ClassDef):
                    key = (name, node.name)
                    self.classes[key] = ClassInfo(
                        key=key,
                        node=node,
                        module=module,
                        base_names=tuple(
                            base_name
                            for base in node.bases
                            if (base_name := _base_name(base)) is not None
                        ),
                    )
                    for statement in node.body:
                        if isinstance(
                            statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            method_key = (name, f"{node.name}.{statement.name}")
                            self.functions[method_key] = FunctionInfo(
                                key=method_key,
                                node=statement,
                                module=module,
                                class_name=node.name,
                            )

    def _resolve_class_bases(self) -> None:
        by_simple_name: dict[str, list[SymbolKey]] = {}
        for key in self.classes:
            by_simple_name.setdefault(key[1], []).append(key)
        for key, info in list(self.classes.items()):
            resolved: list[SymbolKey] = []
            for base in info.base_names:
                target = self.resolve(key[0], base)
                if target is not None and target[0] == "class":
                    resolved.append(target[1])
                elif len(by_simple_name.get(base, ())) == 1:
                    # Unresolvable import chain but a unique project class
                    # of that name — link it (fixtures, star-imports).
                    resolved.append(by_simple_name[base][0])
            self.classes[key] = ClassInfo(
                key=info.key,
                node=info.node,
                module=info.module,
                base_names=info.base_names,
                base_keys=tuple(resolved),
            )

    def _build_call_graph(self) -> None:
        for key, info in self.functions.items():
            self._callees[key] = self._extract_callees(info)

    def _extract_callees(self, info: FunctionInfo) -> set[SymbolKey]:
        module_name = info.key[0]
        edges: set[SymbolKey] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                target = self.resolve(module_name, func.id)
                if target is None:
                    continue
                kind, target_key = target
                if kind == "function":
                    edges.add(target_key)
                elif kind == "class":
                    # Construction: reachability expands a class edge to
                    # its __init__/__post_init__ (see reachable_from).
                    edges.add(target_key)
            elif isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                receiver = func.value.id
                if receiver in ("self", "cls") and info.class_name is not None:
                    method = self.resolve_method(
                        (module_name, info.class_name), func.attr
                    )
                    if method is not None:
                        edges.add(method)
                    continue
                target = self.resolve(module_name, receiver)
                if target is None:
                    continue
                kind, resolved = target
                if kind == "module":
                    attr_target = self.resolve(resolved[0], func.attr)
                    if attr_target is not None and attr_target[0] != "module":
                        edges.add(attr_target[1])
                elif kind == "class":
                    method = self.resolve_method(resolved, func.attr)
                    if method is not None:
                        edges.add(method)
        return edges

    # -- symbol resolution ---------------------------------------------

    def resolve(
        self,
        module_name: str,
        symbol: str,
        _seen: frozenset[SymbolKey] | None = None,
    ) -> tuple[str, SymbolKey] | None:
        """Resolve ``symbol`` as seen from ``module_name``.

        Returns ``("function", key)``, ``("class", key)`` or
        ``("module", (dotted, ""))``; ``None`` when the name leads out of
        the project or cannot be followed.  Re-export chains
        (``from .impl import X`` in an ``__init__``) are walked,
        cycle-safe.
        """
        seen = _seen or frozenset()
        if (module_name, symbol) in seen:
            return None
        seen = seen | {(module_name, symbol)}
        key = (module_name, symbol)
        if key in self.functions:
            return ("function", key)
        if key in self.classes:
            return ("class", key)
        entry = self._imports.get(module_name, {}).get(symbol)
        if entry is None:
            return None
        kind, target_module, target_symbol = entry
        if kind == _MODULE:
            if target_module in self.modules_by_name:
                return ("module", (target_module, ""))
            return None
        if target_symbol is None or target_module not in self.modules_by_name:
            return None
        return self.resolve(target_module, target_symbol, seen)

    def resolve_method(
        self, class_key: SymbolKey, method: str
    ) -> SymbolKey | None:
        """The defining ``Class.method`` key, walking project ancestors."""
        for ancestor in self.ancestry(class_key):
            key = (ancestor[0], f"{ancestor[1]}.{method}")
            if key in self.functions:
                return key
        return None

    def ancestry(self, class_key: SymbolKey) -> list[SymbolKey]:
        """``class_key`` plus its resolved project ancestors (cycle-safe)."""
        chain: list[SymbolKey] = []
        seen: set[SymbolKey] = set()
        frontier = [class_key]
        while frontier:
            current = frontier.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            chain.append(current)
            frontier.extend(self.classes[current].base_keys)
        return chain

    def subclasses_of(self, class_name: str) -> list[ClassInfo]:
        """Every project class transitively deriving from a class named
        ``class_name`` (the root itself excluded)."""
        roots = {key for key in self.classes if key[1] == class_name}
        if not roots:
            return []
        result = []
        for key, info in self.classes.items():
            if key in roots:
                continue
            if any(a in roots for a in self.ancestry(key)):
                result.append(info)
        return sorted(result, key=lambda info: info.key)

    # -- call graph ----------------------------------------------------

    def callees(self, key: SymbolKey) -> frozenset[SymbolKey]:
        return frozenset(self._callees.get(key, ()))

    def methods_of(
        self, class_key: SymbolKey, include_ancestors: bool = True
    ) -> list[SymbolKey]:
        """Function keys of every method the class defines or inherits."""
        classes = (
            self.ancestry(class_key) if include_ancestors else [class_key]
        )
        keys: list[SymbolKey] = []
        for cls in classes:
            prefix = f"{cls[1]}."
            keys.extend(
                key
                for key in self.functions
                if key[0] == cls[0] and key[1].startswith(prefix)
            )
        return sorted(set(keys))

    def reachable_from(self, starts: Iterable[SymbolKey]) -> set[SymbolKey]:
        """Transitive call-graph closure; class nodes expand to their
        constructors."""
        seen: set[SymbolKey] = set()
        frontier = list(starts)
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            if current in self.classes:
                for ctor in ("__init__", "__post_init__"):
                    method = self.resolve_method(current, ctor)
                    if method is not None:
                        frontier.append(method)
                continue
            frontier.extend(self._callees.get(current, ()))
        return seen

    # -- convenience ---------------------------------------------------

    def module_name(self, module: ModuleContext) -> str:
        return self._module_names[module.path]

    def find_functions(self, name: str) -> list[FunctionInfo]:
        """Top-level functions named ``name`` across the project."""
        return sorted(
            (
                info
                for key, info in self.functions.items()
                if key[1] == name and info.class_name is None
            ),
            key=lambda info: info.key,
        )

    def class_attr_constant(self, class_key: SymbolKey, attr: str) -> object:
        """A class-level ``attr = <constant>`` value, walking ancestors."""
        for ancestor in self.ancestry(class_key):
            node = self.classes[ancestor].node
            for statement in node.body:
                targets: list[ast.expr] = []
                value = None
                if isinstance(statement, ast.Assign):
                    targets, value = statement.targets, statement.value
                elif isinstance(statement, ast.AnnAssign):
                    targets, value = [statement.target], statement.value
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == attr
                        and isinstance(value, ast.Constant)
                    ):
                        return value.value
        return None


def _base_name(base: ast.expr) -> str | None:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    if isinstance(base, ast.Subscript):  # Generic[...] style bases
        return _base_name(base.value)
    return None


def discover_project_root(files: Sequence[str | Path]) -> Path | None:
    """Walk up from the linted files to the directory holding
    ``pyproject.toml`` (or ``setup.py``/``.git``); ``None`` if absent."""
    if not files:
        return None
    start = Path(files[0]).resolve()
    candidate = start if start.is_dir() else start.parent
    for _ in range(12):
        if any(
            (candidate / marker).exists()
            for marker in ("pyproject.toml", "setup.py", ".git")
        ):
            return candidate
        if candidate.parent == candidate:
            return None
        candidate = candidate.parent
    return None


def _parse_auxiliary(root: Path) -> list[ModuleContext]:
    """Parse the project's ``tests/`` tree as fact sources.

    Syntax errors here are silently skipped — auxiliary files are not
    linted, and a broken test file is pytest's problem, not the gate's.
    """
    tests_dir = root / "tests"
    if not tests_dir.is_dir():
        return []
    contexts = []
    for path in sorted(tests_dir.rglob("*.py")):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source)
        except (OSError, SyntaxError, UnicodeDecodeError):
            continue
        contexts.append(
            ModuleContext(path=str(path), source=source, tree=tree)
        )
    return contexts


def build_project_context(
    modules: Iterable[ModuleContext],
    root: Path | None = None,
) -> ProjectContext:
    """Build the whole-program context for one lint run.

    ``root`` defaults to the discovered project root of the linted
    files; when found, the project's ``tests/`` tree and ``README.md``
    are loaded as auxiliary fact sources for cross-checking rules.
    """
    modules = tuple(modules)
    if root is None:
        root = discover_project_root([m.path for m in modules])
    auxiliary: list[ModuleContext] = []
    documents: list[Document] = []
    if root is not None:
        auxiliary = _parse_auxiliary(root)
        readme = root / "README.md"
        if readme.is_file():
            try:
                documents.append(
                    Document(
                        path=str(readme),
                        text=readme.read_text(encoding="utf-8"),
                    )
                )
            except (OSError, UnicodeDecodeError):
                pass
    return ProjectContext(
        modules=modules, auxiliary=auxiliary, documents=documents
    )
