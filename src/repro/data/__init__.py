"""Datasets and partitioning.

The paper's experiments (full version) use MNIST and spambase.  Since
this reproduction runs offline, :mod:`repro.data.mnist_like` and
:mod:`repro.data.spambase_like` generate synthetic datasets with the same
input dimensionality, class structure and difficulty profile — see
DESIGN.md §2 for why this substitution preserves the behaviour the theory
depends on (unbiased mini-batch gradients with controllable variance).
"""

from repro.data.dataset import Dataset, train_test_split
from repro.data.mnist_like import make_mnist_like
from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    label_shard_partition,
)
from repro.data.spambase_like import make_spambase_like
from repro.data.synthetic import (
    make_blobs,
    make_linear_regression,
    make_logistic_data,
)

__all__ = [
    "Dataset",
    "train_test_split",
    "make_blobs",
    "make_linear_regression",
    "make_logistic_data",
    "make_mnist_like",
    "make_spambase_like",
    "iid_partition",
    "label_shard_partition",
    "dirichlet_partition",
]
