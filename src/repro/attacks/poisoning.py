"""Data-poisoning Byzantine behaviour: label flipping.

A label-flipping worker is "Byzantine" in the mildest data-driven sense:
it runs the correct gradient computation but on corrupted labels.  The
introduction motivates Byzantine tolerance partly by such "biases in the
way the data samples are distributed among the processes".
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.exceptions import ConfigurationError
from repro.gradients.minibatch import MinibatchEstimator
from repro.models.base import Model

__all__ = ["LabelFlipAttack"]


def _flip_labels(targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Deterministic label permutation: y → (num_classes − 1) − y."""
    return (num_classes - 1) - np.asarray(targets, dtype=np.int64)


class LabelFlipAttack(Attack):
    """Byzantine workers compute true gradients on label-flipped shards.

    Each Byzantine worker owns a shard (like a correct worker would) but
    flips every label with the standard ``y → C−1−y`` permutation before
    computing its mini-batch gradient.  Unlike the vector-space attacks
    this one produces plausible-looking gradients whose *direction* is
    wrong — a harder case for detection-style defenses, and a realistic
    rendering of dataset bias.

    ``boost`` scales the poisoned gradients (default 1.0 = plain data
    bias).  Boosted poisoning — the attacker amplifying its update to
    outweigh the honest mass — is the "model replacement" escalation
    studied in the federated-learning literature; it devastates linear
    aggregation while making the proposals *easier* for Krum to filter
    (their norm grows with the boost).
    """

    def __init__(
        self,
        model: Model,
        shards: list[tuple[np.ndarray, np.ndarray]],
        *,
        num_classes: int,
        batch_size: int,
        boost: float = 1.0,
    ):
        if num_classes < 2:
            raise ConfigurationError(f"num_classes must be >= 2, got {num_classes}")
        if not shards:
            raise ConfigurationError("need at least one Byzantine data shard")
        if boost <= 0:
            raise ConfigurationError(f"boost must be positive, got {boost}")
        self.boost = float(boost)
        self.name = "label-flip" if boost == 1.0 else f"label-flip(boost={boost:g})"
        self._estimators = [
            MinibatchEstimator(
                model,
                inputs,
                _flip_labels(targets, num_classes),
                batch_size=batch_size,
            )
            for inputs, targets in shards
        ]

    def craft(self, context: AttackContext) -> np.ndarray:
        f = context.num_byzantine
        proposals = np.empty((f, context.dimension))
        for k in range(f):
            estimator = self._estimators[k % len(self._estimators)]
            proposals[k] = self.boost * estimator.estimate(
                context.params, context.rng
            )
        return self._output(context, proposals)
