"""Parameter sharding — per-shard aggregation over coordinate slices.

A sharded parameter server splits the ``d``-dimensional parameter vector
into ``num_shards`` contiguous coordinate slices and aggregates each
shard independently: shard ``k`` runs the choice function on the
``(n, d_k)`` slice of the proposal stack it owns.  This is the
throughput path of Garfield-style server groups — shards are
embarrassingly parallel and each aggregation is an
``O(n² · d_k)`` problem instead of ``O(n² · d)``.

Semantically, sharding *changes the rule*: Krum over the full vectors
can pick a different winner than Krum run per-shard (each shard scores
distances on its own coordinates), so a sharded cell is a distinct grid
point, never silently substituted — ``num_shards = 1`` skips the wrapper
entirely and the degenerate cell stays bit-for-bit the plain rule.

:class:`ShardedParameterState` is the bookkeeping object: the canonical
vector plus its shard views.  :class:`ShardedAggregator` is the
composable rule wrapper (the same pattern as
:class:`~repro.core.staleness.KardamFilter`): it implements the
staleness-aware interface, slicing the proposal stack — and, for
staleness-aware inner rules, the used-parameter block — per shard and
concatenating the per-shard aggregates back into one ``(d,)`` vector.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregator import AggregationResult, Aggregator
from repro.core.staleness import StalenessAwareAggregator
from repro.exceptions import ConfigurationError, DimensionMismatchError

__all__ = ["shard_bounds", "ShardedParameterState", "ShardedAggregator"]


def shard_bounds(dimension: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``[lo, hi)`` coordinate slices.

    The first ``dimension % num_shards`` shards take one extra
    coordinate (the ``numpy.array_split`` convention); every shard is
    non-empty, so ``num_shards`` may not exceed ``dimension``.
    """
    if int(dimension) < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    if int(num_shards) < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    if int(num_shards) > int(dimension):
        raise ConfigurationError(
            f"num_shards={num_shards} exceeds dimension={dimension}; "
            f"every shard must own at least one coordinate"
        )
    base, extra = divmod(int(dimension), int(num_shards))
    bounds = []
    lo = 0
    for shard in range(int(num_shards)):
        hi = lo + base + (1 if shard < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ShardedParameterState:
    """The parameter vector of a sharded server, plus its shard views.

    Holds the canonical ``(d,)`` state and exposes each shard's slice as
    a writable view — mutating a shard mutates the canonical vector, as
    shard servers owning disjoint coordinate ranges would.
    """

    def __init__(self, params: np.ndarray, num_shards: int):
        params = np.asarray(params, dtype=np.float64)
        if params.ndim != 1:
            raise DimensionMismatchError(
                f"params must be 1-d, got shape {params.shape}"
            )
        self._params = params.copy()
        self.bounds = shard_bounds(self._params.shape[0], num_shards)
        self.num_shards = len(self.bounds)

    @property
    def dimension(self) -> int:
        return int(self._params.shape[0])

    @property
    def params(self) -> np.ndarray:
        """The canonical full vector (a defensive copy)."""
        return self._params.copy()

    def shard(self, index: int) -> np.ndarray:
        """Shard ``index``'s coordinate slice — a writable view."""
        if not 0 <= int(index) < self.num_shards:
            raise ConfigurationError(
                f"shard index must lie in [0, {self.num_shards}), got {index}"
            )
        lo, hi = self.bounds[int(index)]
        return self._params[lo:hi]

    def shards(self) -> list[np.ndarray]:
        """All shard views, in coordinate order."""
        return [self.shard(i) for i in range(self.num_shards)]

    def update(self, aggregate: np.ndarray, rate: float) -> np.ndarray:
        """Apply ``x ← x − rate · aggregate`` across every shard and
        return the new canonical vector (a copy)."""
        aggregate = np.asarray(aggregate, dtype=np.float64)
        if aggregate.shape != self._params.shape:
            raise DimensionMismatchError(
                f"aggregate shape {aggregate.shape} does not match "
                f"parameters {self._params.shape}"
            )
        for lo, hi in self.bounds:
            self._params[lo:hi] -= rate * aggregate[lo:hi]
        return self.params


class ShardedAggregator(StalenessAwareAggregator):
    """Run the inner choice function independently on each shard slice.

    ``selected`` is the sorted union of the shards' selections (a worker
    may win one shard and lose another); per-row ``scores`` are not
    comparable across shards, so the result carries none.  Staleness
    handling matches the unsharded rule: a staleness-aware inner rule
    receives the per-proposal staleness vector with the shard's slice of
    the used-parameter block, a plain inner rule aggregates each shard
    synchronously.
    """

    def __init__(self, inner: Aggregator, num_shards: int):
        if not isinstance(inner, Aggregator):
            raise ConfigurationError(
                f"inner must be an Aggregator, got {type(inner).__name__}"
            )
        if int(num_shards) < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.inner = inner
        self.num_shards = int(num_shards)
        self.name = f"sharded({inner.name},shards={self.num_shards})"

    def check_tolerance(self, num_workers: int) -> None:
        self.inner.check_tolerance(num_workers)

    def aggregate_detailed(self, vectors: np.ndarray) -> AggregationResult:
        vectors = np.asarray(vectors, dtype=np.float64)
        return self.aggregate_detailed_stale(
            vectors, np.zeros(vectors.shape[0], dtype=np.int64)
        )

    def aggregate_detailed_stale(
        self,
        vectors: np.ndarray,
        staleness: np.ndarray,
        *,
        used_params: np.ndarray | None = None,
    ) -> AggregationResult:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise DimensionMismatchError(
                f"proposals must be (n, d), got {vectors.shape}"
            )
        staleness = np.asarray(staleness, dtype=np.int64)
        if staleness.shape != (vectors.shape[0],):
            raise DimensionMismatchError(
                f"staleness must be ({vectors.shape[0]},), "
                f"got {staleness.shape}"
            )
        if used_params is not None:
            used_params = np.asarray(used_params, dtype=np.float64)
            if used_params.shape != vectors.shape:
                raise DimensionMismatchError(
                    f"used_params must match proposals {vectors.shape}, "
                    f"got {used_params.shape}"
                )
        bounds = shard_bounds(vectors.shape[1], self.num_shards)
        inner_stale = isinstance(self.inner, StalenessAwareAggregator)
        aggregate = np.empty(vectors.shape[1], dtype=np.float64)
        selected: set[int] = set()
        for lo, hi in bounds:
            if inner_stale:
                result = self.inner.aggregate_detailed_stale(
                    vectors[:, lo:hi],
                    staleness,
                    used_params=(
                        None if used_params is None else used_params[:, lo:hi]
                    ),
                )
            else:
                result = self.inner.aggregate_detailed(vectors[:, lo:hi])
            aggregate[lo:hi] = result.vector
            selected.update(int(i) for i in np.asarray(result.selected))
        return AggregationResult(
            vector=aggregate,
            selected=np.asarray(sorted(selected), dtype=np.int64),
        )
