"""Tests for repro.utils.linalg."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.utils.linalg import (
    flatten_arrays,
    pairwise_sq_distances,
    stack_vectors,
    unflatten_array,
)


class TestPairwiseSqDistances:
    def test_matches_naive(self, rng):
        vectors = rng.standard_normal((7, 5))
        fast = pairwise_sq_distances(vectors)
        naive = np.array(
            [
                [np.sum((vectors[i] - vectors[j]) ** 2) for j in range(7)]
                for i in range(7)
            ]
        )
        np.testing.assert_allclose(fast, naive, atol=1e-10)

    def test_diagonal_zero(self, rng):
        vectors = rng.standard_normal((4, 3)) * 1e6
        distances = pairwise_sq_distances(vectors)
        np.testing.assert_array_equal(np.diag(distances), np.zeros(4))

    def test_symmetry(self, rng):
        vectors = rng.standard_normal((6, 4))
        distances = pairwise_sq_distances(vectors)
        np.testing.assert_allclose(distances, distances.T, atol=1e-12)

    def test_non_negative_despite_cancellation(self):
        # Nearly identical large vectors trigger catastrophic cancellation.
        base = np.full(10, 1e8)
        vectors = np.stack([base, base + 1e-8])
        distances = pairwise_sq_distances(vectors)
        assert np.all(distances >= 0.0)

    def test_single_vector(self):
        distances = pairwise_sq_distances(np.array([[1.0, 2.0]]))
        assert distances.shape == (1, 1)
        assert distances[0, 0] == 0.0

    def test_rejects_1d(self):
        with pytest.raises(DimensionMismatchError):
            pairwise_sq_distances(np.ones(3))

    def test_known_values(self):
        vectors = np.array([[0.0, 0.0], [3.0, 4.0]])
        distances = pairwise_sq_distances(vectors)
        assert distances[0, 1] == pytest.approx(25.0)


class TestStackVectors:
    def test_stacks(self):
        stack = stack_vectors([np.array([1.0, 2.0]), np.array([3.0, 4.0])])
        assert stack.shape == (2, 2)

    def test_rejects_empty(self):
        with pytest.raises(DimensionMismatchError):
            stack_vectors([])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(DimensionMismatchError, match="inconsistent"):
            stack_vectors([np.ones(2), np.ones(3)])

    def test_rejects_2d_elements(self):
        with pytest.raises(DimensionMismatchError):
            stack_vectors([np.ones((2, 2))])


class TestFlattenRoundTrip:
    def test_round_trip(self, rng):
        arrays = [rng.standard_normal(s) for s in [(3, 4), (4,), (2, 2, 2)]]
        flat, shapes = flatten_arrays(arrays)
        assert flat.shape == (12 + 4 + 8,)
        restored = unflatten_array(flat, shapes)
        for original, back in zip(arrays, restored):
            np.testing.assert_allclose(original, back)

    def test_scalar_shape(self):
        flat, shapes = flatten_arrays([np.array(5.0)])
        assert flat.shape == (1,)
        restored = unflatten_array(flat, shapes)
        assert restored[0].shape == ()

    def test_rejects_empty_list(self):
        with pytest.raises(DimensionMismatchError):
            flatten_arrays([])

    def test_unflatten_rejects_wrong_size(self):
        with pytest.raises(DimensionMismatchError, match="entries"):
            unflatten_array(np.ones(5), [(2, 2)])

    def test_unflatten_rejects_2d_input(self):
        with pytest.raises(DimensionMismatchError):
            unflatten_array(np.ones((2, 2)), [(4,)])
