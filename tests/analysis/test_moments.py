"""Tests for moment estimation."""

import numpy as np
import pytest

from repro.analysis.moments import empirical_norm_moments
from repro.exceptions import ConfigurationError, DimensionMismatchError


class TestEmpiricalNormMoments:
    def test_unit_vectors(self):
        samples = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0]])
        moments = empirical_norm_moments(samples)
        assert moments[2] == pytest.approx(1.0)
        assert moments[4] == pytest.approx(1.0)

    def test_gaussian_second_moment_is_d(self, rng):
        # E||N(0, I_d)||^2 = d.
        samples = rng.standard_normal((20000, 5))
        moments = empirical_norm_moments(samples, orders=(2,))
        assert moments[2] == pytest.approx(5.0, rel=0.05)

    def test_custom_orders(self, rng):
        samples = rng.standard_normal((100, 3))
        moments = empirical_norm_moments(samples, orders=(1, 6))
        assert set(moments) == {1, 6}

    def test_rejects_1d(self):
        with pytest.raises(DimensionMismatchError):
            empirical_norm_moments(np.ones(5))

    def test_rejects_bad_order(self):
        with pytest.raises(ConfigurationError):
            empirical_norm_moments(np.ones((2, 2)), orders=(0,))
