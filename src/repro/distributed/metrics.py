"""Per-round records and the training history container."""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["RoundRecord", "TrainingHistory"]


@dataclass(frozen=True)
class RoundRecord:
    """Everything measured about one synchronous round.

    ``loss``/``accuracy``/``grad_norm`` are ``None`` on rounds where no
    evaluation was scheduled.  ``selected`` lists the worker ids whose
    proposals the choice function selected (empty for statistical rules),
    and ``byzantine_selected`` counts how many of those were adversarial
    — the key observable in the selection experiments.
    """

    round_index: int
    learning_rate: float
    aggregate_norm: float
    params_norm: float
    selected: tuple[int, ...] = ()
    byzantine_selected: int = 0
    loss: float | None = None
    accuracy: float | None = None
    grad_norm: float | None = None
    extras: dict[str, float] = field(default_factory=dict)


class TrainingHistory:
    """Ordered collection of :class:`RoundRecord` with series accessors."""

    def __init__(self) -> None:
        self.records: list[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        if self.records and record.round_index <= self.records[-1].round_index:
            raise ConfigurationError(
                f"round {record.round_index} appended after round "
                f"{self.records[-1].round_index}"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> RoundRecord:
        return self.records[index]

    def series(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """(rounds, values) for a numeric field, skipping unevaluated rounds.

        ``name`` may be any :class:`RoundRecord` field or a key of its
        ``extras`` dict.
        """
        rounds: list[int] = []
        values: list[float] = []
        for record in self.records:
            if hasattr(record, name):
                value = getattr(record, name)
            else:
                value = record.extras.get(name)
            if value is None:
                continue
            rounds.append(record.round_index)
            values.append(float(value))
        return np.asarray(rounds, dtype=np.int64), np.asarray(values)

    @property
    def evaluated(self) -> list[RoundRecord]:
        """Records on which an evaluation ran (``loss`` is not None)."""
        return [r for r in self.records if r.loss is not None]

    @property
    def final_loss(self) -> float:
        evaluated = self.evaluated
        if not evaluated:
            raise ConfigurationError("no evaluated rounds in history")
        return float(evaluated[-1].loss)  # type: ignore[arg-type]

    @property
    def final_accuracy(self) -> float:
        evaluated = [r for r in self.records if r.accuracy is not None]
        if not evaluated:
            raise ConfigurationError("no accuracy-evaluated rounds in history")
        return float(evaluated[-1].accuracy)  # type: ignore[arg-type]

    def byzantine_selection_rate(self) -> float:
        """Fraction of selecting rounds in which >= 1 Byzantine proposal won."""
        selecting = [r for r in self.records if r.selected]
        if not selecting:
            return 0.0
        hit = sum(1 for r in selecting if r.byzantine_selected > 0)
        return hit / len(selecting)

    def min_series_value(self, name: str) -> float:
        """Minimum of a series (e.g. best loss seen during training)."""
        _rounds, values = self.series(name)
        if values.size == 0:
            raise ConfigurationError(f"series {name!r} has no values")
        return float(values.min())

    # ------------------------------------------------------------------
    # Serialization (for offline figure regeneration / archiving runs)
    # ------------------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        """All records as plain dicts (JSON-serializable)."""
        out = []
        for record in self.records:
            data = asdict(record)
            data["selected"] = list(record.selected)
            out.append(data)
        return out

    def save_json(self, path: str | Path) -> None:
        """Write the full history as a JSON array of round records."""
        Path(path).write_text(json.dumps(self.to_dicts(), indent=1))

    @classmethod
    def load_json(cls, path: str | Path) -> "TrainingHistory":
        """Inverse of :meth:`save_json`."""
        history = cls()
        for data in json.loads(Path(path).read_text()):
            extras = data.pop("extras", {})
            selected = tuple(int(i) for i in data.pop("selected", ()))
            history.append(
                RoundRecord(selected=selected, extras=extras, **data)
            )
        return history

    def save_csv(self, path: str | Path) -> None:
        """Write the scalar fields as CSV (one row per round).

        ``selected`` is serialized as a semicolon-joined id list; extras
        are expanded into their own columns.
        """
        extra_keys = sorted({k for r in self.records for k in r.extras})
        fields = [
            "round_index",
            "learning_rate",
            "aggregate_norm",
            "params_norm",
            "byzantine_selected",
            "loss",
            "accuracy",
            "grad_norm",
            "selected",
            *extra_keys,
        ]
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(fields)
            for record in self.records:
                row = [
                    record.round_index,
                    record.learning_rate,
                    record.aggregate_norm,
                    record.params_norm,
                    record.byzantine_selected,
                    record.loss,
                    record.accuracy,
                    record.grad_norm,
                    ";".join(str(i) for i in record.selected),
                    *[record.extras.get(k) for k in extra_keys],
                ]
                writer.writerow(row)
