"""Name-based aggregator factory used by experiment configs and the CLI.

Keeps experiment configuration declarative: a config names a rule
("krum", "average", ...) plus keyword arguments, and the registry builds
the :class:`~repro.core.aggregator.Aggregator`.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.aggregator import Aggregator
from repro.exceptions import ConfigurationError
from repro.utils.validation import check_factory_kwargs

__all__ = [
    "make_aggregator",
    "available_aggregators",
    "register_aggregator",
    "aggregator_factory",
]

_REGISTRY: dict[str, Callable[..., Aggregator]] = {}


def register_aggregator(name: str, factory: Callable[..., Aggregator]) -> None:
    """Register a rule under ``name``; later registrations override."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"aggregator name must be a non-empty string, got {name!r}")
    _REGISTRY[name] = factory


def available_aggregators() -> list[str]:
    """Sorted list of registered rule names."""
    return sorted(_REGISTRY)


def aggregator_factory(name: str) -> Callable[..., Aggregator]:
    """The registered factory for ``name`` (for signature introspection)."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown aggregator {name!r}; available: {available_aggregators()}"
        )
    return _REGISTRY[name]


def make_aggregator(name: str, **kwargs: object) -> Aggregator:
    """Build a rule by registry name, e.g. ``make_aggregator("krum", f=2)``.

    Keyword arguments that do not fit the factory's signature raise
    :class:`ConfigurationError` naming the rule and the parameters it
    accepts — the shared registry contract.
    """
    factory = aggregator_factory(name)
    check_factory_kwargs("aggregator", name, factory, kwargs)
    return factory(**kwargs)


def _kardam_factory(
    inner: str = "krum",
    inner_kwargs: dict | None = None,
    f: int | None = None,
    dampening: str = "inverse",
    gamma: float = 0.5,
    drop_above: int | None = None,
    lipschitz_quantile: float | None = None,
    window: int = 256,
    strict: bool = False,
):
    """Registry adapter for :class:`~repro.core.staleness.KardamFilter`.

    ``inner``/``inner_kwargs`` name the wrapped rule through this same
    registry.  ``f`` rides the scenario grid's Byzantine-count injection
    (the grid passes the cell's f to any factory accepting it) and is
    forwarded to the inner rule when *its* factory accepts an ``f`` —
    so ``("kardam", {"inner": "krum"})`` picks up the cell's f exactly
    like a bare ``("krum", {})`` entry would.  When the inner factory
    accepts ``f``, the filter also gets an ``inner_builder`` so its
    effective-``f`` degradation rebuilds the rule through this registry
    (preserving the cell's other inner kwargs); ``strict=True`` disables
    the degradation.
    """
    import inspect

    from repro.core.staleness import KardamFilter

    kwargs = dict(inner_kwargs or {})
    try:
        accepts_f = "f" in inspect.signature(
            aggregator_factory(inner)
        ).parameters
    except (TypeError, ValueError):
        accepts_f = False
    if f is not None and "f" not in kwargs and accepts_f:
        kwargs["f"] = f
    inner_builder = None
    if accepts_f:
        inner_builder = lambda f_eff: make_aggregator(  # noqa: E731
            inner, **{**kwargs, "f": f_eff}
        )
    return KardamFilter(
        make_aggregator(inner, **kwargs),
        dampening=dampening,
        gamma=gamma,
        drop_above=drop_above,
        lipschitz_quantile=lipschitz_quantile,
        window=window,
        strict=strict,
        inner_builder=inner_builder,
    )


def _register_builtins() -> None:
    # Imported lazily to avoid a circular import at package load.
    from repro.baselines.average import Average, WeightedAverage
    from repro.baselines.distance_based import ClosestToAll
    from repro.baselines.majority import MinimalDiameterSubset
    from repro.baselines.medians import (
        CoordinateWiseMedian,
        GeometricMedian,
        TrimmedMean,
    )
    from repro.core.bulyan import Bulyan
    from repro.core.krum import Krum, MultiKrum

    register_aggregator("kardam", _kardam_factory)
    register_aggregator("krum", Krum)
    register_aggregator("multi-krum", MultiKrum)
    register_aggregator("bulyan", Bulyan)
    register_aggregator("average", Average)
    register_aggregator("weighted-average", WeightedAverage)
    register_aggregator("closest-to-all", ClosestToAll)
    register_aggregator("minimal-diameter", MinimalDiameterSubset)
    register_aggregator("coordinate-median", CoordinateWiseMedian)
    register_aggregator("trimmed-mean", TrimmedMean)
    register_aggregator("geometric-median", GeometricMedian)


_register_builtins()
