"""Dense linear-algebra helpers used by the aggregation rules.

The performance-critical piece is :func:`pairwise_sq_distances`: Krum's
O(n² · d) cost (Lemma 4.1 of the paper) is exactly the cost of this one
matrix computation, so it is implemented with a single GEMM rather than a
Python double loop.

The batched/masked primitives in this module are *kernel layer*: they
compute through an :class:`~repro.backend.ArrayBackend` namespace
(``backend=`` parameter, numpy by default) rather than calling ``np.*``
directly, so the same code runs unchanged on any registered backend.
With the default numpy backend every operation delegates to the exact
numpy call used before the seam existed — bit-for-bit identical results.
The host-side plumbing at the bottom (:func:`stack_vectors`,
:func:`flatten_arrays`, :func:`unflatten_array` — model-parameter
marshalling, not aggregation arithmetic) stays plain numpy on purpose.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.exceptions import DimensionMismatchError

__all__ = [
    "pairwise_sq_distances",
    "batched_pairwise_sq_distances",
    "masked_krum_scores",
    "masked_coordinate_median",
    "masked_inverse_distance_weights",
    "masked_unit_direction_sum",
    "stack_vectors",
    "flatten_arrays",
    "unflatten_array",
]


def pairwise_sq_distances(
    vectors,
    *,
    nonfinite_as_inf: bool = False,
    backend: ArrayBackend | str | None = None,
):
    """Return the ``(n, n)`` matrix of squared euclidean distances.

    Uses the expansion ``||a - b||² = ||a||² + ||b||² - 2⟨a, b⟩`` so the
    dominant cost is one ``n×d`` by ``d×n`` matrix product — O(n²·d), the
    complexity Lemma 4.1 claims for Krum.  Floating-point cancellation can
    produce tiny negative values; these are clamped to zero and the
    diagonal is forced to exactly zero.

    ``nonfinite_as_inf=True`` maps every NaN/Inf entry of the result to
    ``+inf``: a Byzantine worker sending non-finite coordinates is treated
    as infinitely far from everyone (so distance-filtering rules discard
    it instead of propagating NaN through their scores).
    """
    xp = resolve_backend(backend)
    vectors = xp.asarray(vectors)
    if vectors.ndim != 2:
        raise DimensionMismatchError(
            f"vectors must have shape (n, d), got {tuple(vectors.shape)}"
        )
    with xp.errstate():
        sq_norms = xp.einsum("ij,ij->i", vectors, vectors)
        distances = (
            sq_norms[:, None]
            + sq_norms[None, :]
            - 2.0 * (vectors @ xp.transpose(vectors, (1, 0)))
        )
        distances = xp.maximum(distances, 0.0)
    if nonfinite_as_inf:
        distances[~xp.isfinite(distances)] = xp.inf
    diagonal = xp.arange(vectors.shape[0])
    distances[diagonal, diagonal] = 0.0
    return distances


def batched_pairwise_sq_distances(
    vectors,
    *,
    nonfinite_as_inf: bool = False,
    chunk_size: int | None = None,
    backend: ArrayBackend | str | None = None,
):
    """``(B, n, n)`` squared-distance matrices for a ``(B, n, d)`` batch.

    The batched analogue of :func:`pairwise_sq_distances`: every scenario
    in the batch gets the same GEMM expansion, computed with one stacked
    matrix product per chunk instead of B separate Python calls.  Each
    batch slice is numerically *identical* (bit-for-bit) to what the
    unbatched function returns for that slice — the engine's differential
    test harness relies on this.

    ``chunk_size`` bounds how many scenarios are expanded at once, so
    the *intermediates* (Gram-matrix GEMM workspace, non-finite masks)
    stay at ``chunk_size × n²`` floats.  The returned array itself is
    necessarily ``B × n²`` — consumers that only need a per-chunk view
    (e.g. :func:`repro.core.batched.batched_krum_scores`) should call
    this per chunk instead of materializing the full result.  ``None``
    processes the whole batch in one chunk.  The result is invariant to
    the chunk size because chunking only partitions the independent
    batch axis.
    """
    xp = resolve_backend(backend)
    vectors = xp.asarray(vectors)
    if vectors.ndim != 3:
        raise DimensionMismatchError(
            f"vectors must have shape (B, n, d), got {tuple(vectors.shape)}"
        )
    batch, n, _d = vectors.shape
    if chunk_size is None:
        chunk_size = max(batch, 1)
    if chunk_size < 1:
        raise DimensionMismatchError(
            f"chunk_size must be >= 1, got {chunk_size}"
        )
    out = xp.empty((batch, n, n))
    diagonal = xp.arange(n)
    for start in range(0, batch, chunk_size):
        chunk = vectors[start : start + chunk_size]
        with xp.errstate():
            sq_norms = xp.einsum("bij,bij->bi", chunk, chunk)
            distances = (
                sq_norms[:, :, None]
                + sq_norms[:, None, :]
                - 2.0 * (chunk @ xp.transpose(chunk, (0, 2, 1)))
            )
            distances = xp.maximum(distances, 0.0)
        if nonfinite_as_inf:
            distances[~xp.isfinite(distances)] = xp.inf
        distances[:, diagonal, diagonal] = 0.0
        out[start : start + chunk_size] = distances
    return out


def _check_batched_mask(values, active, name: str, xp: ArrayBackend):
    values = xp.asarray(values)
    active = xp.asarray(active, dtype=xp.bool_dtype)
    if values.ndim != 3:
        raise DimensionMismatchError(
            f"{name} expects values of shape (B, n, ...), "
            f"got {tuple(values.shape)}"
        )
    if tuple(active.shape) != tuple(values.shape[:2]):
        raise DimensionMismatchError(
            f"{name} expects an active mask of shape "
            f"{tuple(values.shape[:2])}, got {tuple(active.shape)}"
        )
    return values, active


def masked_krum_scores(
    distances,
    active,
    num_neighbors: int,
    *,
    backend: ArrayBackend | str | None = None,
):
    """Krum scores restricted to an active candidate subset, per scenario.

    ``distances`` is a ``(B, n, n)`` squared-distance batch and ``active``
    a ``(B, n)`` boolean mask of the candidates still in the pool.  For
    every active row the score is the sum of its ``num_neighbors``
    smallest distances to the *other* active rows; inactive rows score
    ``+inf`` so they never win an argmin.  This is the shared scoring
    primitive of Bulyan's iterated committee selection: the per-scenario
    rule runs it with ``B = 1`` and the batched kernel with the whole
    batch, so both paths are bit-for-bit identical per scenario.
    """
    xp = resolve_backend(backend)
    distances, active = _check_batched_mask(
        distances, active, "masked_krum_scores", xp
    )
    n = distances.shape[1]
    if distances.shape[2] != n:
        raise DimensionMismatchError(
            f"distances must be square per scenario, "
            f"got {tuple(distances.shape)}"
        )
    if not 1 <= num_neighbors <= n - 1:
        raise DimensionMismatchError(
            f"num_neighbors must be in [1, n - 1] = [1, {n - 1}], "
            f"got {num_neighbors}"
        )
    counts = xp.count_nonzero(active, axis=1)
    smallest_pool = int(xp.min(counts)) if counts.shape[0] else n
    if num_neighbors > smallest_pool - 1:
        # Asking for more neighbours than any active row has would make
        # the partition sum masked +inf entries — garbage scores, not an
        # error the caller can see.
        raise DimensionMismatchError(
            f"num_neighbors must be <= active_count - 1 = "
            f"{smallest_pool - 1}, got {num_neighbors}"
        )
    masked = xp.where(active[:, None, :], distances, xp.inf)
    diagonal = xp.arange(n)
    masked[:, diagonal, diagonal] = xp.inf
    neighbor_part = xp.partition(masked, num_neighbors - 1, axis=2)
    scores = xp.sum(neighbor_part[:, :, :num_neighbors], axis=2)
    return xp.where(active, scores, xp.inf)


def masked_coordinate_median(
    values, active, *, backend: ArrayBackend | str | None = None
):
    """Coordinate-wise median over the active rows of every scenario.

    ``values`` is ``(B, n, d)`` and ``active`` a ``(B, n)`` mask that must
    select the *same number* of rows in every scenario (the Bulyan
    committee loop removes exactly one candidate per scenario per
    iteration, so the counts stay uniform).  Inactive rows are pushed to
    ``+inf`` before a per-coordinate sort, so non-finite active values
    sort to the high end rather than poisoning the whole median the way
    a plain median would — the shared semantics both the loop and batched
    Bulyan paths use.
    """
    xp = resolve_backend(backend)
    values, active = _check_batched_mask(
        values, active, "masked_coordinate_median", xp
    )
    counts = xp.count_nonzero(active, axis=1)
    if counts.shape[0] == 0 or not xp.all(counts == counts[0]):
        raise DimensionMismatchError(
            "active mask must select the same number of rows in every "
            f"scenario, got counts {sorted(set(xp.to_numpy(counts).tolist()))}"
        )
    m = int(counts[0])
    if m < 1:
        raise DimensionMismatchError("active mask must select at least one row")
    filled = xp.where(active[:, :, None], values, xp.inf)
    ordered = xp.sort(filled, axis=1)
    if m % 2 == 1:
        return xp.copy(ordered[:, (m - 1) // 2])
    return 0.5 * (ordered[:, m // 2 - 1] + ordered[:, m // 2])


def masked_inverse_distance_weights(
    distances, active, *, backend: ArrayBackend | str | None = None
):
    """``1 / distances`` over active rows, exactly zero elsewhere (zero
    distances among inactive rows never enter the division).  The weight
    vector of one Weiszfeld step; callers that need both the step target
    and the Vardi–Zhang residual reuse one weighted einsum over it."""
    xp = resolve_backend(backend)
    safe = xp.where(active, distances, 1.0)
    with xp.errstate():
        return xp.where(active, 1.0 / safe, 0.0)


def _check_masked_distances(values, distances, active, name: str, xp):
    values, active = _check_batched_mask(values, active, name, xp)
    distances = xp.asarray(distances)
    if tuple(distances.shape) != tuple(active.shape):
        raise DimensionMismatchError(
            f"{name} expects distances of shape {tuple(active.shape)}, "
            f"got {tuple(distances.shape)}"
        )
    return values, distances, active


def masked_unit_direction_sum(
    values,
    anchors,
    distances,
    active,
    *,
    offsets=None,
    backend: ArrayBackend | str | None = None,
):
    """Sum of unit vectors from per-scenario anchors to the active rows.

    The Vardi–Zhang residual ``R = Σ_active (V_i − a) / d_i`` for anchors
    ``a`` of shape ``(B, d)`` and row distances ``d`` of shape ``(B, n)``.
    The unit directions are formed by *dividing* actual offsets — never
    through the rearrangement ``Σ w V − (Σ w) a`` or reciprocal
    multiplication, whose rounding is enough to push a residual that is
    exactly equal to the cluster multiplicity (a marginally optimal data
    point, common in tie-heavy stacks) to the wrong side of the
    optimality comparison, leaving Weiszfeld crawling sublinearly
    forever.  The masked reduction is one einsum contraction with a 0/1
    weight row, which is exact (inactive rows are finite by construction:
    a row only becomes inactive when its distance is finite and tiny).
    Both Weiszfeld paths — the per-scenario rule at ``B = 1`` and the
    batched kernel — share this reduction, keeping its floating-point
    behavior identical per scenario.

    ``offsets`` lets callers that already materialized
    ``values - anchors[:, None, :]`` (e.g. to derive ``distances``) pass
    it in instead of paying the subtraction a second time.
    """
    xp = resolve_backend(backend)
    values, distances, active = _check_masked_distances(
        values, distances, active, "masked_unit_direction_sum", xp
    )
    anchors = xp.asarray(anchors)
    if tuple(anchors.shape) != (values.shape[0], values.shape[2]):
        raise DimensionMismatchError(
            f"anchors must have shape "
            f"{(int(values.shape[0]), int(values.shape[2]))}, "
            f"got {tuple(anchors.shape)}"
        )
    safe = xp.where(active, distances, 1.0)
    with xp.errstate():
        if offsets is None:
            offsets = values - anchors[:, None, :]
        directions = offsets / safe[:, :, None]
        return xp.einsum(
            "bn,bnd->bd", xp.astype(active, xp.float_dtype), directions
        )


def stack_vectors(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Stack a sequence of equal-length 1-d vectors into an ``(n, d)`` matrix."""
    if len(vectors) == 0:
        raise DimensionMismatchError("cannot stack an empty sequence of vectors")
    arrays = [np.asarray(v, dtype=np.float64) for v in vectors]
    first_shape = arrays[0].shape
    if any(a.ndim != 1 for a in arrays):
        raise DimensionMismatchError("stack_vectors expects 1-d vectors")
    if any(a.shape != first_shape for a in arrays):
        shapes = sorted({a.shape for a in arrays})
        raise DimensionMismatchError(f"vectors have inconsistent shapes: {shapes}")
    return np.stack(arrays, axis=0)


def flatten_arrays(arrays: Sequence[np.ndarray]) -> tuple[np.ndarray, list[tuple[int, ...]]]:
    """Flatten a list of arrays into one 1-d vector plus the shapes to undo it.

    This is how model parameters/gradients become the ``R^d`` vectors the
    parameter server aggregates.  Returns ``(flat, shapes)`` where
    ``unflatten_array(flat, shapes)`` restores the original list.
    """
    if len(arrays) == 0:
        raise DimensionMismatchError("cannot flatten an empty sequence of arrays")
    shapes = [tuple(np.asarray(a).shape) for a in arrays]
    flat = np.concatenate([np.asarray(a, dtype=np.float64).ravel() for a in arrays])
    return flat, shapes


def unflatten_array(flat: np.ndarray, shapes: Sequence[tuple[int, ...]]) -> list[np.ndarray]:
    """Invert :func:`flatten_arrays`: split ``flat`` back into shaped arrays."""
    flat = np.asarray(flat, dtype=np.float64)
    if flat.ndim != 1:
        raise DimensionMismatchError(f"flat must be 1-d, got shape {flat.shape}")
    sizes = [int(np.prod(shape, dtype=np.int64)) if shape else 1 for shape in shapes]
    total = int(sum(sizes))
    if flat.size != total:
        raise DimensionMismatchError(
            f"flat vector has {flat.size} entries but shapes require {total}"
        )
    out: list[np.ndarray] = []
    offset = 0
    for shape, size in zip(shapes, sizes):
        out.append(flat[offset : offset + size].reshape(shape))
        offset += size
    return out
