"""Materialize and execute scenario grids.

``run_grid(grid, mode="batched")`` expands a
:class:`~repro.engine.grid.ScenarioGrid` into simulations on the
paper's Gaussian-oracle quadratic workload and executes them either

* ``mode="loop"`` — each cell through its own
  :class:`~repro.distributed.TrainingSimulation` round loop (the seed
  code's execution model), or
* ``mode="batched"`` — all cells together through
  :class:`~repro.engine.simulation.BatchedSimulation`.

Both modes produce identical :class:`~repro.distributed.TrainingHistory`
objects (bit-for-bit — see ``tests/engine/test_differential.py``); the
batched mode is simply faster, which ``BENCH_engine.json`` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.attacks.registry import make_attack
from repro.core.registry import make_aggregator
from repro.distributed.metrics import TrainingHistory
from repro.distributed.simulator import TrainingSimulation
from repro.engine.grid import ScenarioGrid, ScenarioSpec
from repro.engine.simulation import BatchedSimulation
from repro.exceptions import ConfigurationError
from repro.experiments.builders import build_quadratic_simulation
from repro.models.quadratic import QuadraticBowl

__all__ = ["GridResult", "build_scenario_simulation", "run_grid"]


@dataclass(frozen=True)
class GridResult:
    """Outcome of one grid execution.

    ``histories`` and ``final_params`` are keyed by each cell's
    :attr:`~repro.engine.grid.ScenarioSpec.label`; ``wall_time`` is the
    execution time of the round loops only (materialization excluded),
    which is what the engine benchmark compares across modes.
    ``native_fraction`` is the fraction of cells aggregated by vectorized
    kernels (``None`` in loop mode, where the question does not arise) —
    the engine benchmark records it so a rule silently regressing to the
    per-scenario fallback shows up in ``BENCH_engine.json``.
    """

    mode: str
    specs: tuple[ScenarioSpec, ...]
    histories: dict[str, TrainingHistory]
    final_params: dict[str, np.ndarray]
    wall_time: float
    native_fraction: float | None = None

    def __len__(self) -> int:
        return len(self.specs)

    def history(self, label: str) -> TrainingHistory:
        return self.histories[label]


def build_scenario_simulation(
    spec: ScenarioSpec, *, bowl: QuadraticBowl | None = None
) -> TrainingSimulation:
    """Build one cell's simulation on the quadratic-bowl workload.

    ``bowl`` lets callers share one workload object across cells (the
    bowl is stateless; sharing avoids materializing one ``d × d``
    curvature matrix per cell).
    """
    if bowl is None:
        bowl = QuadraticBowl(spec.dimension, curvature=spec.curvature)
    aggregator = make_aggregator(spec.aggregator, **spec.aggregator_kwargs)
    attack = make_attack(spec.attack, spec.attack_kwargs)
    return build_quadratic_simulation(
        bowl,
        aggregator=aggregator,
        num_workers=spec.num_workers,
        num_byzantine=spec.num_byzantine,
        sigma=spec.sigma,
        attack=attack,
        learning_rate=spec.learning_rate,
        lr_timescale=spec.lr_timescale,
        byzantine_slots=spec.byzantine_slots,
        seed=spec.seed,
    )


def run_grid(
    grid: ScenarioGrid,
    *,
    mode: str = "batched",
    eval_every: int = 10,
    chunk_size: int | None = None,
) -> GridResult:
    """Expand and execute every cell of ``grid``.

    ``chunk_size`` (batched mode only) caps the distance-kernel batch
    chunks; see
    :func:`~repro.utils.linalg.batched_pairwise_sq_distances`.
    """
    if mode not in ("batched", "loop"):
        raise ConfigurationError(
            f"mode must be 'batched' or 'loop', got {mode!r}"
        )
    specs = grid.scenarios()
    labels = [spec.label for spec in specs]
    if len(set(labels)) != len(labels):
        raise ConfigurationError(
            "grid produced duplicate cell labels; make aggregator/attack "
            "specs distinguishable"
        )

    bowls: dict[tuple[int, float], QuadraticBowl] = {}
    simulations = []
    for spec in specs:
        key = (spec.dimension, spec.curvature)
        if key not in bowls:
            bowls[key] = QuadraticBowl(spec.dimension, curvature=spec.curvature)
        simulations.append(build_scenario_simulation(spec, bowl=bowls[key]))

    native_fraction = None
    start = perf_counter()
    if mode == "loop":
        histories = [
            sim.run(grid.num_rounds, eval_every=eval_every)
            for sim in simulations
        ]
        finals = [sim.params for sim in simulations]
    else:
        batched = BatchedSimulation(simulations, chunk_size=chunk_size)
        native_fraction = batched.native_fraction
        histories = batched.run(grid.num_rounds, eval_every=eval_every)
        params = batched.params
        finals = [params[i] for i in range(len(specs))]
    wall_time = perf_counter() - start

    return GridResult(
        mode=mode,
        specs=tuple(specs),
        histories=dict(zip(labels, histories)),
        final_params=dict(zip(labels, finals)),
        wall_time=wall_time,
        native_fraction=native_fraction,
    )
