"""Weight initializers.

Each initializer is a plain function ``(shape, rng) -> ndarray`` so layers
can accept them as first-class values.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zeros", "normal", "xavier_uniform", "he_normal"]


def zeros(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zero initializer (conventional for biases)."""
    del rng  # deterministic
    return np.zeros(shape, dtype=np.float64)


def normal(shape: tuple[int, ...], rng: np.random.Generator, *, std: float = 0.01) -> np.ndarray:
    """Gaussian initializer with mean 0 and the given standard deviation."""
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initializer, suited to tanh/sigmoid layers.

    For a ``(fan_in, fan_out)`` weight matrix, samples uniformly from
    ``[-a, a]`` with ``a = sqrt(6 / (fan_in + fan_out))``.
    """
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He initializer, suited to ReLU layers: N(0, sqrt(2 / fan_in))."""
    fan_in, _fan_out = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[0] * receptive, shape[1] * receptive
