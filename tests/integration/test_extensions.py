"""Integration tests for the extension features (Bulyan, momentum,
non-i.i.d. partitions, composite failures) in full training loops."""

import numpy as np
import pytest

from repro.attacks.modern import LittleIsEnoughAttack
from repro.attacks.random_noise import GaussianAttack
from repro.baselines.average import Average
from repro.core.bulyan import Bulyan
from repro.core.krum import Krum
from repro.data.synthetic import make_blobs
from repro.distributed.schedules import ConstantSchedule
from repro.distributed.simulator import TrainingSimulation
from repro.exceptions import ConfigurationError
from repro.experiments.builders import build_dataset_simulation
from repro.gradients.momentum import MomentumEstimator
from repro.models.quadratic import QuadraticBowl
from repro.models.softmax import SoftmaxRegressionModel


class TestBulyanTraining:
    def test_bulyan_trains_under_gaussian_attack(self):
        train = make_blobs(240, num_classes=3, num_features=5, spread=0.6, seed=0)
        model = SoftmaxRegressionModel(5, 3)
        sim = build_dataset_simulation(
            model,
            train,
            aggregator=Bulyan(f=2),
            num_workers=11,  # 4f + 3
            num_byzantine=2,
            attack=GaussianAttack(sigma=100.0),
            batch_size=16,
            learning_rate=0.3,
            seed=0,
        )
        history = sim.run(80, eval_every=20)
        assert history.final_accuracy > 0.85

    def test_bulyan_under_stealth_attack_beats_krum(self):
        """End-to-end: little-is-enough hurts Krum more than Bulyan."""
        bowl = QuadraticBowl(12)

        def final_loss(aggregator):
            sim = TrainingSimulation(
                aggregator=aggregator,
                schedule=ConstantSchedule(0.15),
                honest_estimators=[bowl.as_estimator(0.4) for _ in range(12)],
                initial_params=np.full(12, 8.0),
                num_byzantine=3,
                attack=LittleIsEnoughAttack(z=1.0),
                true_gradient_fn=bowl.exact_gradient,
                evaluate=lambda p: {"loss": bowl.value(p)},
                seed=2,
            )
            return sim.run(300, eval_every=50).final_loss

        # n = 15 = 4f + 3 with f = 3: both rules are in their valid regime.
        assert final_loss(Bulyan(f=3)) <= final_loss(Krum(f=3)) * 1.5


class TestMomentumTraining:
    def test_momentum_workers_converge_tighter(self):
        bowl = QuadraticBowl(8)

        def plateau(with_momentum):
            estimators = []
            for _ in range(10):
                base = bowl.as_estimator(0.5)
                estimators.append(
                    MomentumEstimator(base, beta=0.9) if with_momentum else base
                )
            sim = TrainingSimulation(
                aggregator=Krum(f=2),
                schedule=ConstantSchedule(0.1),
                honest_estimators=estimators,
                initial_params=np.full(8, 5.0),
                num_byzantine=2,
                attack=GaussianAttack(sigma=50.0),
                evaluate=lambda p: {"loss": bowl.value(p)},
                seed=4,
            )
            history = sim.run(250, eval_every=50)
            return history.final_loss

        assert plateau(True) < plateau(False)


class TestNonIidPartitions:
    @pytest.fixture
    def blobs(self):
        return make_blobs(400, num_classes=4, num_features=5, spread=0.6, seed=1)

    def test_label_shard_training_runs(self, blobs):
        model = SoftmaxRegressionModel(5, 4)
        sim = build_dataset_simulation(
            model,
            blobs,
            aggregator=Average(),
            num_workers=8,
            num_byzantine=0,
            batch_size=16,
            learning_rate=0.3,
            partition="label-shard",
            seed=0,
        )
        history = sim.run(60, eval_every=20)
        assert history.final_accuracy > 0.7

    def test_dirichlet_training_runs(self, blobs):
        model = SoftmaxRegressionModel(5, 4)
        sim = build_dataset_simulation(
            model,
            blobs,
            aggregator=Krum(f=1),
            num_workers=8,
            num_byzantine=1,
            attack=GaussianAttack(sigma=50.0),
            batch_size=16,
            learning_rate=0.3,
            partition="dirichlet",
            dirichlet_alpha=1.0,
            seed=0,
        )
        history = sim.run(60, eval_every=20)
        assert history.final_accuracy > 0.6

    def test_krum_noniid_caveat(self, blobs):
        """The known limitation: under extreme label skew Krum's distance
        filter treats minority-class workers as outliers, slowing
        learning relative to the i.i.d. case."""
        model_factory = lambda: SoftmaxRegressionModel(5, 4)

        def run(partition):
            sim = build_dataset_simulation(
                model_factory(),
                blobs,
                aggregator=Krum(f=2, strict=False),
                num_workers=8,
                num_byzantine=0,
                batch_size=16,
                learning_rate=0.3,
                partition=partition,
                seed=0,
            )
            return sim.run(60, eval_every=20).final_loss

        assert run("iid") < run("label-shard")

    def test_unknown_partition_rejected(self, blobs):
        with pytest.raises(ConfigurationError, match="partition"):
            build_dataset_simulation(
                SoftmaxRegressionModel(5, 4),
                blobs,
                aggregator=Average(),
                num_workers=4,
                num_byzantine=0,
                partition="random-nonsense",
            )
