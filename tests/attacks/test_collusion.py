"""Tests for the Figure 2 collusion attack."""

import numpy as np
import pytest

from repro.attacks.collusion import CollusionAttack
from repro.baselines.distance_based import ClosestToAll
from repro.core.krum import Krum
from repro.exceptions import ByzantineToleranceError, ConfigurationError
from tests.attacks.test_base import make_context


class TestCollusionAttack:
    def test_defeats_closest_to_all(self, rng):
        ctx = make_context(rng, num_honest=9, num_byzantine=3)
        crafted = CollusionAttack(decoy_distance=1e4).craft(ctx)
        stack = np.vstack([ctx.honest_gradients, crafted])
        result = ClosestToAll().aggregate_detailed(stack)
        # The trojan (last Byzantine slot) must be selected.
        assert int(result.selected[0]) == ctx.num_workers - 1

    def test_krum_resists_same_attack(self, rng):
        ctx = make_context(rng, num_honest=9, num_byzantine=3)
        crafted = CollusionAttack(decoy_distance=1e4).craft(ctx)
        stack = np.vstack([ctx.honest_gradients, crafted])
        result = Krum(f=3).aggregate_detailed(stack)
        assert int(result.selected[0]) < 9

    @pytest.mark.parametrize("distance", [10.0, 1e3, 1e7])
    def test_works_at_any_decoy_distance(self, rng, distance):
        ctx = make_context(rng, num_honest=7, num_byzantine=2)
        crafted = CollusionAttack(decoy_distance=distance).craft(ctx)
        stack = np.vstack([ctx.honest_gradients, crafted])
        result = ClosestToAll().aggregate_detailed(stack)
        assert int(result.selected[0]) == ctx.num_workers - 1

    def test_trojan_is_barycenter_of_others(self, rng):
        ctx = make_context(rng, num_honest=6, num_byzantine=3)
        crafted = CollusionAttack().craft(ctx)
        others = np.vstack([ctx.honest_gradients, crafted[:-1]])
        np.testing.assert_allclose(crafted[-1], others.mean(axis=0), rtol=1e-10)

    def test_decoys_identical(self, rng):
        ctx = make_context(rng, num_honest=8, num_byzantine=4)
        crafted = CollusionAttack().craft(ctx)
        for row in crafted[1:-1]:
            np.testing.assert_array_equal(row, crafted[0])

    def test_requires_two_byzantine(self, rng):
        ctx = make_context(rng, num_byzantine=1, num_honest=9)
        with pytest.raises(ByzantineToleranceError, match="f >= 2"):
            CollusionAttack().craft(ctx)

    def test_rejects_bad_distance(self):
        with pytest.raises(ConfigurationError):
            CollusionAttack(decoy_distance=0.0)

    def test_deterministic_direction(self, rng):
        ctx1 = make_context(np.random.default_rng(1))
        ctx2 = make_context(np.random.default_rng(1))
        a = CollusionAttack(direction_seed=3).craft(ctx1)
        b = CollusionAttack(direction_seed=3).craft(ctx2)
        np.testing.assert_array_equal(a, b)

    def test_against_gradient_reverses_selected_direction(self, rng):
        gradient = np.ones(4)
        ctx = make_context(
            rng, num_honest=7, num_byzantine=3, true_gradient=gradient
        )
        attack = CollusionAttack(decoy_distance=1e3, against_gradient=True)
        crafted = attack.craft(ctx)
        stack = np.vstack([ctx.honest_gradients, crafted])
        result = ClosestToAll().aggregate_detailed(stack)
        # The trojan wins the selection AND points against the gradient.
        assert int(result.selected[0]) == ctx.num_workers - 1
        assert result.vector @ gradient < 0
