"""Wall-clock measurement helpers for the complexity experiments (Lemma 4.1)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError

__all__ = ["Timer", "fit_power_law"]


@dataclass
class Timer:
    """Context manager accumulating wall-clock time over repeated runs.

    Example::

        timer = Timer()
        for _ in range(5):
            with timer:
                krum(vectors, f=2)
        print(timer.mean_seconds)
    """

    samples: list[float] = field(default_factory=list)
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is None:  # pragma: no cover - defensive
            return
        self.samples.append(time.perf_counter() - self._start)
        self._start = None

    @property
    def total_seconds(self) -> float:
        return float(sum(self.samples))

    @property
    def mean_seconds(self) -> float:
        if not self.samples:
            return 0.0
        return self.total_seconds / len(self.samples)

    @property
    def min_seconds(self) -> float:
        return min(self.samples) if self.samples else 0.0


def fit_power_law(sizes: np.ndarray, times: np.ndarray) -> float:
    """Fit ``time = c · size^k`` by least squares in log-log space; return k.

    Used to verify empirically that Krum scales ~quadratically in n and
    ~linearly in d.  Requires at least two strictly positive samples.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if sizes.shape != times.shape or sizes.ndim != 1 or sizes.size < 2:
        raise DimensionMismatchError(
            "need matching 1-d arrays with at least 2 samples"
        )
    if np.any(sizes <= 0) or np.any(times <= 0):
        raise ConfigurationError("sizes and times must be strictly positive")
    slope, _intercept = np.polyfit(np.log(sizes), np.log(times), deg=1)
    return float(slope)
