"""Tests for linear regression."""

import numpy as np
import pytest

from repro.data.synthetic import make_linear_regression
from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.models.linear import LinearRegressionModel
from tests.helpers import assert_gradients_close, numerical_gradient


class TestLinearRegression:
    def test_dimension(self):
        assert LinearRegressionModel(5).dimension == 6
        assert LinearRegressionModel(5, fit_bias=False).dimension == 5

    def test_gradient_matches_numeric(self, rng):
        model = LinearRegressionModel(4, l2=0.1)
        params = rng.standard_normal(5)
        inputs = rng.standard_normal((8, 4))
        targets = rng.standard_normal(8)
        analytic = model.gradient(params, inputs, targets)
        numeric = numerical_gradient(
            lambda p: model.loss(p, inputs, targets), params.copy()
        )
        assert_gradients_close(analytic, numeric, rtol=1e-6)

    def test_gradient_no_bias(self, rng):
        model = LinearRegressionModel(3, fit_bias=False)
        params = rng.standard_normal(3)
        inputs = rng.standard_normal((6, 3))
        targets = rng.standard_normal(6)
        numeric = numerical_gradient(
            lambda p: model.loss(p, inputs, targets), params.copy()
        )
        assert_gradients_close(model.gradient(params, inputs, targets), numeric)

    def test_zero_loss_at_closed_form_optimum(self, rng):
        dataset, true_params = make_linear_regression(
            200, num_features=6, noise=0.0, seed=3
        )
        model = LinearRegressionModel(6)
        optimum = model.closed_form_optimum(dataset.inputs, dataset.targets)
        np.testing.assert_allclose(optimum, true_params, atol=1e-8)
        assert model.loss(optimum, dataset.inputs, dataset.targets) < 1e-15

    def test_gradient_zero_at_optimum(self, rng):
        dataset, _params = make_linear_regression(100, num_features=4, noise=0.2, seed=1)
        model = LinearRegressionModel(4)
        optimum = model.closed_form_optimum(dataset.inputs, dataset.targets)
        grad = model.gradient(optimum, dataset.inputs, dataset.targets)
        np.testing.assert_allclose(grad, np.zeros(5), atol=1e-10)

    def test_l2_shrinks_weights(self, rng):
        dataset, _params = make_linear_regression(100, num_features=4, seed=2)
        plain = LinearRegressionModel(4)
        ridge = LinearRegressionModel(4, l2=10.0)
        w_plain = plain.closed_form_optimum(dataset.inputs, dataset.targets)
        w_ridge = ridge.closed_form_optimum(dataset.inputs, dataset.targets)
        assert np.linalg.norm(w_ridge[:-1]) < np.linalg.norm(w_plain[:-1])

    def test_rejects_bad_param_shape(self):
        model = LinearRegressionModel(3)
        with pytest.raises(DimensionMismatchError):
            model.loss(np.zeros(3), np.zeros((2, 3)), np.zeros(2))

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            LinearRegressionModel(0)
        with pytest.raises(ConfigurationError):
            LinearRegressionModel(3, l2=-1.0)
