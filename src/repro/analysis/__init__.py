"""Empirical verification machinery for the paper's theory.

* :mod:`repro.analysis.moments` — Monte-Carlo estimation of E‖·‖^r.
* :mod:`repro.analysis.resilience` — measures the two conditions of
  Definition 3.2 ((α, f)-Byzantine resilience) for any aggregator/attack
  pair.
* :mod:`repro.analysis.convergence` — convergence diagnostics on
  training histories.
"""

from repro.analysis.convergence import (
    has_converged,
    plateau_value,
    rounds_to_threshold,
)
from repro.analysis.moments import empirical_norm_moments
from repro.analysis.resilience import ResilienceReport, estimate_resilience

__all__ = [
    "empirical_norm_moments",
    "ResilienceReport",
    "estimate_resilience",
    "has_converged",
    "rounds_to_threshold",
    "plateau_value",
]
