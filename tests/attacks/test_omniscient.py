"""Tests for the omniscient attack."""

import numpy as np
import pytest

from repro.attacks.omniscient import OmniscientAttack
from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.exceptions import ConfigurationError
from tests.attacks.test_base import make_context


class TestOmniscientAttack:
    def test_proposes_negative_gradient(self, rng):
        gradient = np.array([1.0, 2.0, 3.0, 4.0])
        ctx = make_context(rng, true_gradient=gradient)
        out = OmniscientAttack(scale=5.0).craft(ctx)
        np.testing.assert_allclose(out, np.tile(-5.0 * gradient, (2, 1)))

    def test_compensating_variant_controls_average(self, rng):
        gradient = np.array([1.0, -1.0, 2.0, 0.0])
        ctx = make_context(rng, num_honest=8, num_byzantine=2, true_gradient=gradient)
        out = OmniscientAttack(scale=3.0, compensate_average=True).craft(ctx)
        stack = np.vstack([ctx.honest_gradients, out])
        np.testing.assert_allclose(
            Average().aggregate(stack), -3.0 * gradient, atol=1e-9
        )

    def test_average_descends_wrong_direction(self, rng):
        """Under the attack the average points against the gradient."""
        gradient = np.full(4, 2.0)
        ctx = make_context(rng, true_gradient=gradient)
        out = OmniscientAttack(scale=10.0).craft(ctx)
        stack = np.vstack([ctx.honest_gradients, out])
        aggregate = Average().aggregate(stack)
        assert aggregate @ gradient < 0

    def test_krum_filters_loud_omniscient(self, rng):
        gradient = np.full(4, 2.0)
        ctx = make_context(rng, num_honest=9, num_byzantine=2, true_gradient=gradient)
        out = OmniscientAttack(scale=100.0).craft(ctx)
        stack = np.vstack([ctx.honest_gradients, out])
        result = Krum(f=2).aggregate_detailed(stack)
        assert int(result.selected[0]) < 9
        assert result.vector @ gradient > 0

    def test_falls_back_to_honest_mean(self, rng):
        ctx = make_context(rng)
        out = OmniscientAttack(scale=1.0).craft(ctx)
        np.testing.assert_allclose(out[0], -ctx.honest_mean)

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            OmniscientAttack(scale=-2.0)
