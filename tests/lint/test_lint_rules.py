"""Fixture-driven tests: every rule fires on a known-bad snippet and
stays quiet on the matching good one.

The bad fixtures reproduce the historical bug shapes the rules exist
for: the PR 4 float64-literal/np-in-kernel shape (backend-purity), the
unseeded ``default_rng`` shape (rng-discipline), the PR 2 bare
``ValueError`` shape (error-taxonomy), the PR 6 stateful-attack reuse
shape (stateful-attack-declaration), and the raw-TypeError factory
shape (registry-factory-contract).
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import lint_source, make_rule

KERNEL_PATH = "src/repro/core/batched.py"
LIBRARY_PATH = "src/repro/distributed/server.py"


def run_rule(name: str, code: str, path: str = LIBRARY_PATH):
    return lint_source(
        textwrap.dedent(code), path=path, rules=[make_rule(name)]
    )


# ----------------------------------------------------------------------
# backend-purity
# ----------------------------------------------------------------------


class TestBackendPurity:
    def test_np_call_in_kernel_function_fires(self):
        findings = run_rule(
            "backend-purity",
            """
            import numpy as np

            def batched_mean(stacks, *, backend=None):
                return np.mean(stacks, axis=1)
            """,
            path=KERNEL_PATH,
        )
        assert [f.rule for f in findings] == ["backend-purity"]
        assert "np.mean" in findings[0].message

    def test_float_dtype_literal_fires(self):
        findings = run_rule(
            "backend-purity",
            """
            import numpy as np

            def stage(stacks, xp):
                out = xp.empty(stacks.shape, dtype=np.float64)
                return out
            """,
            path=KERNEL_PATH,
        )
        assert len(findings) == 1
        assert "float dtype literal" in findings[0].message

    def test_float_dtype_string_fires(self):
        findings = run_rule(
            "backend-purity",
            """
            def stage(stacks, xp):
                return stacks.astype("float32")
            """,
            path=KERNEL_PATH,
        )
        assert len(findings) == 1
        assert "'float32'" in findings[0].message

    def test_bare_np_empty_upcast_shape_fires(self):
        # The PR 4 audit shape: np.empty defaults to float64, silently
        # up-casting float32 kernel batches staged through it.
        findings = run_rule(
            "backend-purity",
            """
            import numpy as np

            def stage(stacks, *, backend=None):
                out = np.empty((2, 3))
                return out
            """,
            path=KERNEL_PATH,
        )
        assert len(findings) == 1
        assert "integer dtype" in findings[0].message

    def test_kernel_class_method_fires(self):
        findings = run_rule(
            "backend-purity",
            """
            import numpy as np

            class _BatchedThing(BatchedAggregator):
                def aggregate_batch(self, stacks):
                    return np.median(stacks, axis=1)
            """,
            path=KERNEL_PATH,
        )
        assert len(findings) == 1

    def test_loop_fallback_class_is_exempt(self):
        findings = run_rule(
            "backend-purity",
            """
            import numpy as np

            class LoopThing(BatchedAggregator):
                is_native = False

                def aggregate_batch(self, stacks):
                    return np.median(stacks, axis=1)
            """,
            path=KERNEL_PATH,
        )
        assert findings == []

    def test_host_side_int_bookkeeping_is_allowed(self):
        findings = run_rule(
            "backend-purity",
            """
            import numpy as np

            def select(stacks, xp):
                order = xp.argsort(stacks)
                return np.asarray(xp.to_numpy(order), dtype=np.int64)
            """,
            path=KERNEL_PATH,
        )
        assert findings == []

    def test_backend_namespace_code_is_clean(self):
        findings = run_rule(
            "backend-purity",
            """
            def batched_mean(stacks, *, backend=None):
                xp = resolve_backend(backend)
                return xp.mean(xp.asarray(stacks), axis=1)
            """,
            path=KERNEL_PATH,
        )
        assert findings == []

    def test_non_kernel_module_is_out_of_scope(self):
        findings = run_rule(
            "backend-purity",
            """
            import numpy as np

            def helper(stacks, *, backend=None):
                return np.mean(stacks)
            """,
            path=LIBRARY_PATH,
        )
        assert findings == []

    def test_module_level_numpy_is_out_of_scope(self):
        findings = run_rule(
            "backend-purity",
            """
            import numpy as np

            _EMPTY = np.array([], dtype=np.int64)
            TABLE = np.zeros(4)
            """,
            path=KERNEL_PATH,
        )
        assert findings == []


# ----------------------------------------------------------------------
# rng-discipline
# ----------------------------------------------------------------------


class TestRngDiscipline:
    def test_default_rng_call_fires(self):
        findings = run_rule(
            "rng-discipline",
            """
            import numpy as np

            def sample():
                return np.random.default_rng(7).normal()
            """,
        )
        assert [f.rule for f in findings] == ["rng-discipline"]
        assert "np.random.default_rng" in findings[0].message

    def test_legacy_global_draw_fires(self):
        findings = run_rule(
            "rng-discipline",
            """
            import numpy as np

            def sample():
                return np.random.normal(size=3)
            """,
        )
        assert len(findings) == 1

    def test_stdlib_random_import_and_usage_fire(self):
        findings = run_rule(
            "rng-discipline",
            """
            import random

            def pick(items):
                return random.choice(items)
            """,
        )
        assert len(findings) == 2
        assert "global state" in findings[0].message
        assert "random.choice" in findings[1].message

    def test_stdlib_random_alias_usage_fires(self):
        findings = run_rule(
            "rng-discipline",
            """
            import random as rnd

            def pick():
                return rnd.random()
            """,
        )
        assert any("rnd.random" in f.message for f in findings)

    def test_np_random_seed_global_state_message(self):
        findings = run_rule(
            "rng-discipline",
            """
            import numpy as np

            def reset():
                np.random.seed(0)
            """,
        )
        assert len(findings) == 1
        assert "process-global" in findings[0].message

    def test_from_numpy_random_import_fires(self):
        findings = run_rule(
            "rng-discipline",
            """
            from numpy.random import default_rng
            """,
        )
        assert len(findings) == 1

    def test_generator_annotations_are_allowed(self):
        findings = run_rule(
            "rng-discipline",
            """
            import numpy as np

            def estimate(params, rng: np.random.Generator) -> np.ndarray:
                return rng.normal(size=3)

            def key(worker: int) -> np.ndarray:
                return np.random.SeedSequence(
                    entropy=(1, worker)
                ).generate_state(2)
            """,
        )
        assert findings == []

    def test_sanctioned_module_is_exempt(self):
        findings = run_rule(
            "rng-discipline",
            """
            import numpy as np

            def as_generator(seed):
                return np.random.default_rng(seed)
            """,
            path="src/repro/utils/rng.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# error-taxonomy
# ----------------------------------------------------------------------


class TestErrorTaxonomy:
    def test_bare_valueerror_pr2_shape_fires(self):
        # The PR 2 Weiszfeld bug shape: a kernel precondition leaking a
        # bare ValueError instead of the taxonomy.
        findings = run_rule(
            "error-taxonomy",
            """
            def weiszfeld(vectors, tolerance):
                if tolerance <= 0:
                    raise ValueError(f"bad tolerance {tolerance}")
            """,
        )
        assert [f.rule for f in findings] == ["error-taxonomy"]
        assert "ValueError" in findings[0].message

    @pytest.mark.parametrize("exc", ["TypeError", "RuntimeError"])
    def test_other_banned_builtins_fire(self, exc):
        findings = run_rule(
            "error-taxonomy",
            f"""
            def check(x):
                raise {exc}("nope")
            """,
        )
        assert len(findings) == 1

    def test_uncalled_raise_fires(self):
        findings = run_rule(
            "error-taxonomy",
            """
            def check(x):
                raise ValueError
            """,
        )
        assert len(findings) == 1

    def test_taxonomy_raises_are_clean(self):
        findings = run_rule(
            "error-taxonomy",
            """
            from repro.exceptions import ConfigurationError

            def check(x):
                if x < 0:
                    raise ConfigurationError(f"x must be >= 0, got {x}")
                try:
                    return 1 / x
                except ZeroDivisionError:
                    raise  # re-raise is fine
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# stateful-attack-declaration
# ----------------------------------------------------------------------


class TestStatefulAttackDeclaration:
    PR6_SHAPE = """
    class StragglerLike(Attack):
        name = "straggler-like"

        def __init__(self, rounds: int = 3):
            self.rounds = rounds
            self._round = 0

        def craft(self, context):
            self._round += 1
            return context.honest_gradients[: context.num_byzantine]
    """

    def test_pr6_reuse_shape_fires_twice(self):
        findings = run_rule("stateful-attack-declaration", self.PR6_SHAPE)
        assert [f.rule for f in findings] == [
            "stateful-attack-declaration"
        ] * 2
        messages = " ".join(f.message for f in findings)
        assert "stateful = True" in messages
        assert "reset()" in messages
        assert "self.{_round}" in messages

    def test_declared_stateful_attack_is_clean(self):
        findings = run_rule(
            "stateful-attack-declaration",
            """
            class ProbeLike(Attack):
                stateful = True

                def __init__(self):
                    self.reset()

                def reset(self):
                    self._scale = 1.0

                def craft(self, context):
                    self._scale *= 2.0
                    return context.honest_gradients[:1]
            """,
        )
        assert findings == []

    def test_server_attack_subclasses_share_the_contract(self):
        findings = run_rule(
            "stateful-attack-declaration",
            """
            class ReplayLike(ServerAttack):
                name = "replay-like"

                def corrupt(self, context):
                    self._history = getattr(self, "_history", [])
                    self._history.append(context.params)
                    return context.params[None, :]
            """,
        )
        assert [f.rule for f in findings] == [
            "stateful-attack-declaration"
        ] * 2
        messages = " ".join(f.message for f in findings)
        assert "self.{_history}" in messages

    def test_declared_stateful_server_attack_is_clean(self):
        findings = run_rule(
            "stateful-attack-declaration",
            """
            class ReplayLike(ServerAttack):
                stateful = True

                def __init__(self):
                    self.reset()

                def reset(self):
                    self._history = []

                def corrupt(self, context):
                    self._history.append(context.params)
                    return context.params[None, :]
            """,
        )
        assert findings == []

    def test_declarations_inherit_within_module(self):
        findings = run_rule(
            "stateful-attack-declaration",
            """
            class BaseProbe(Attack):
                stateful = True

                def reset(self):
                    self._scale = 1.0

            class Tuned(BaseProbe):
                def craft(self, context):
                    self._scale *= 2.0
                    return context.honest_gradients[:1]
            """,
        )
        assert findings == []

    def test_init_only_configuration_is_clean(self):
        findings = run_rule(
            "stateful-attack-declaration",
            """
            class Gaussian(Attack):
                def __init__(self, sigma: float = 1.0):
                    self.sigma = sigma

                def craft(self, context):
                    return context.honest_gradients[:1] * self.sigma
            """,
        )
        assert findings == []

    def test_non_attack_classes_are_ignored(self):
        findings = run_rule(
            "stateful-attack-declaration",
            """
            class Accumulator:
                def push(self, x):
                    self.total = getattr(self, "total", 0) + x
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# registry-factory-contract
# ----------------------------------------------------------------------


class TestRegistryFactoryContract:
    def test_raw_splat_fires(self):
        findings = run_rule(
            "registry-factory-contract",
            """
            def make_widget(name, **kwargs):
                return _REGISTRY[name](**kwargs)
            """,
        )
        assert [f.rule for f in findings] == ["registry-factory-contract"]
        assert "make_widget" in findings[0].message

    def test_check_factory_kwargs_satisfies(self):
        findings = run_rule(
            "registry-factory-contract",
            """
            from repro.utils.validation import check_factory_kwargs

            def make_widget(name, kwargs=None):
                factory = _REGISTRY[name]
                resolved = dict(kwargs or {})
                check_factory_kwargs("widget", name, factory, resolved)
                return factory(**resolved)
            """,
        )
        assert findings == []

    def test_typeerror_wrapper_satisfies(self):
        findings = run_rule(
            "registry-factory-contract",
            """
            from repro.exceptions import ConfigurationError

            def make_widget(name, **kwargs):
                try:
                    return _REGISTRY[name](**kwargs)
                except TypeError as error:
                    raise ConfigurationError(
                        f"invalid arguments for widget {name!r}: {error}"
                    ) from error
            """,
        )
        assert findings == []

    def test_non_make_functions_are_ignored(self):
        findings = run_rule(
            "registry-factory-contract",
            """
            def build_widget(name, **kwargs):
                return _REGISTRY[name](**kwargs)
            """,
        )
        assert findings == []

    def test_make_without_splat_is_ignored(self):
        findings = run_rule(
            "registry-factory-contract",
            """
            def make_widget(name):
                return _REGISTRY[name]()
            """,
        )
        assert findings == []

    def test_topology_registry_shape_satisfies(self):
        """The topology registry's make function — look up, resolve,
        validate against the factory signature, then splat — is the
        contract the rule enforces."""
        findings = run_rule(
            "registry-factory-contract",
            """
            from repro.utils.validation import check_factory_kwargs

            _REGISTRY = {}

            def topology_factory(name):
                if name not in _REGISTRY:
                    raise ConfigurationError(
                        f"unknown topology {name!r}; "
                        f"available: {sorted(_REGISTRY)}"
                    )
                return _REGISTRY[name]

            def make_topology(name, kwargs=None):
                factory = topology_factory(name)
                resolved = dict(kwargs or {})
                check_factory_kwargs("topology", name, factory, resolved)
                return factory(**resolved)
            """,
        )
        assert findings == []

    def test_topology_registry_without_kwargs_check_fires(self):
        """The same shape minus the signature validation splats raw
        user kwargs into the factory — a TypeError instead of the
        registry taxonomy's ConfigurationError."""
        findings = run_rule(
            "registry-factory-contract",
            """
            _REGISTRY = {}

            def topology_factory(name):
                return _REGISTRY[name]

            def make_topology(name, kwargs=None):
                factory = topology_factory(name)
                resolved = dict(kwargs or {})
                return factory(**resolved)
            """,
        )
        assert [f.rule for f in findings] == ["registry-factory-contract"]
        assert "make_topology" in findings[0].message
