"""Tests for the Gaussian oracle estimator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.gradients.oracle import GaussianOracleEstimator


def quadratic_gradient(x):
    return 2.0 * x


class TestGaussianOracleEstimator:
    def test_zero_sigma_is_exact(self, rng):
        est = GaussianOracleEstimator(quadratic_gradient, 5, sigma=0.0)
        x = rng.standard_normal(5)
        np.testing.assert_array_equal(est.estimate(x, rng), 2.0 * x)

    def test_unbiased(self, rng):
        est = GaussianOracleEstimator(quadratic_gradient, 4, sigma=1.0)
        x = np.ones(4)
        samples = np.stack([est.estimate(x, rng) for _ in range(5000)])
        np.testing.assert_allclose(samples.mean(axis=0), 2.0 * x, atol=0.1)

    def test_variance_is_d_sigma_squared(self, rng):
        est = GaussianOracleEstimator(quadratic_gradient, 8, sigma=0.7)
        x = np.zeros(8)
        samples = np.stack([est.estimate(x, rng) for _ in range(5000)])
        total_var = np.mean(np.sum((samples - 2.0 * x) ** 2, axis=1))
        assert total_var == pytest.approx(8 * 0.7**2, rel=0.1)

    def test_expected_returns_true_gradient(self, rng):
        est = GaussianOracleEstimator(quadratic_gradient, 3, sigma=2.0)
        x = rng.standard_normal(3)
        np.testing.assert_array_equal(est.expected(x), 2.0 * x)

    def test_expected_returns_copy(self):
        est = GaussianOracleEstimator(quadratic_gradient, 2, sigma=0.0)
        x = np.ones(2)
        out = est.expected(x)
        out[:] = 99.0
        np.testing.assert_array_equal(est.expected(x), 2.0 * np.ones(2))

    def test_empirical_sigma(self, rng):
        est = GaussianOracleEstimator(quadratic_gradient, 12, sigma=0.4)
        measured = est.empirical_sigma(np.zeros(12), rng, num_samples=1500)
        assert measured == pytest.approx(0.4, rel=0.1)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            GaussianOracleEstimator(quadratic_gradient, 0, sigma=1.0)
        with pytest.raises(ConfigurationError):
            GaussianOracleEstimator(quadratic_gradient, 3, sigma=-1.0)
