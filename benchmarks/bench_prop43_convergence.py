"""E5 — Proposition 4.3: SGD with Krum converges despite f Byzantine workers.

On the analytic quadratic bowl (all of Prop. 4.3's conditions hold) with
γ_t = γ₀/(1 + t/τ), the gradient-norm series under Krum must enter and
stay in the basin ‖∇Q‖ ≤ η(n,f)·√d·σ; averaging under the same attack
must not.  Also sweeps f up to the tolerance bound (n−3)/2.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.analysis.convergence import has_converged
from repro.attacks.omniscient import OmniscientAttack
from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.core.theory import krum_variance_bound, max_tolerable_f
from repro.experiments.builders import build_quadratic_simulation
from repro.experiments.reporting import format_series, format_table
from repro.models.quadratic import QuadraticBowl

DIMENSION = 10
NUM_WORKERS = 25
SIGMA = 0.05
ROUNDS = 500


def _run(aggregator, f, seed=1):
    bowl = QuadraticBowl(DIMENSION)
    sim = build_quadratic_simulation(
        bowl,
        aggregator=aggregator,
        num_workers=NUM_WORKERS,
        num_byzantine=f,
        sigma=SIGMA,
        attack=OmniscientAttack(scale=5.0) if f else None,
        learning_rate=0.3,
        lr_timescale=150.0,
        seed=seed,
    )
    return sim.run(ROUNDS, eval_every=25)


def bench_prop43_krum_convergence_curves(benchmark):
    f_values = [0, 5, 11]  # 11 = max tolerable for n=25

    def run():
        return {f: _run(Krum(f=max(f, 1), strict=False) if f == 0 else Krum(f=f), f)
                for f in f_values}

    histories = run_once(benchmark, run)
    rounds, _ = histories[0].series("grad_norm")
    emit(
        format_series(
            "Prop 4.3 — ‖∇Q(x_t)‖ under Krum, omniscient attack (n=25)",
            rounds,
            {
                f"f={f}": histories[f].series("grad_norm")[1]
                for f in f_values
            },
        )
    )
    assert max_tolerable_f(NUM_WORKERS) == 11
    for f in f_values:
        basin = krum_variance_bound(NUM_WORKERS, max(f, 1), DIMENSION, SIGMA)
        _r, grad_norms = histories[f].series("grad_norm")
        assert has_converged(grad_norms, threshold=basin, window=3), (
            f"f={f}: ‖∇Q‖ tail {grad_norms[-3:]} above basin {basin:.4f}"
        )


def bench_prop43_average_diverges(benchmark):
    def run():
        return _run(Average(), 5)

    history = run_once(benchmark, run)
    rounds, grad_norms = history.series("grad_norm")
    emit(
        format_series(
            "Prop 4.3 contrast — ‖∇Q(x_t)‖ under averaging, f=5 omniscient",
            rounds,
            {"average": grad_norms},
        )
    )
    basin = krum_variance_bound(NUM_WORKERS, 5, DIMENSION, SIGMA)
    assert not has_converged(grad_norms, threshold=basin, window=3)
    # Under the omniscient attack the average ascends: gradient grows.
    assert grad_norms[-1] > grad_norms[0]


def bench_prop43_f_sweep_final_gradient(benchmark):
    """Final gradient norm as f sweeps to the bound: Krum stays in its
    basin across the whole tolerated range."""
    f_values = [0, 2, 5, 8, 11]

    def run():
        rows = []
        for f in f_values:
            rule = Krum(f=max(f, 1), strict=False) if f == 0 else Krum(f=f)
            history = _run(rule, f, seed=3)
            _r, grad_norms = history.series("grad_norm")
            basin = krum_variance_bound(
                NUM_WORKERS, max(f, 1), DIMENSION, SIGMA
            )
            rows.append((f, float(grad_norms[-1]), basin))
        return rows

    rows = run_once(benchmark, run)
    emit(
        format_table(
            ["f", "final ‖∇Q‖", "basin η√dσ"],
            [list(r) for r in rows],
            title="Prop 4.3 — f sweep to the tolerance bound (n=25)",
        )
    )
    for f, final_norm, basin in rows:
        assert final_norm <= basin, f"f={f} escaped the basin"
