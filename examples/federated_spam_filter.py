"""A federated spam filter surviving mixed real-world failures.

The paper's introduction motivates Byzantine tolerance with *realistic*
failure causes: stalled processes, biased data, and actual adversaries.
This scenario trains a logistic-regression spam filter across 16
organizations where 5 slots misbehave in different ways at once:

  * 2 crashed collectors that send zero vectors,
  * 1 straggler replaying stale gradients,
  * 2 poisoned silos computing *boosted* gradients on label-flipped data
    (the "model replacement" escalation from the federated-learning
    literature: the attacker scales its update to outweigh the honest
    mass).

Compares plain federated averaging against Krum and Multi-Krum.

Run:  python examples/federated_spam_filter.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Average,
    CompositeAttack,
    CrashAttack,
    Krum,
    LabelFlipAttack,
    MultiKrum,
    StragglerAttack,
)
from repro.data import make_spambase_like
from repro.experiments import build_dataset_simulation, format_table
from repro.models import LogisticRegressionModel

NUM_WORKERS = 16
NUM_BYZANTINE = 5
ROUNDS = 400


def build_attack(model: LogisticRegressionModel, train) -> CompositeAttack:
    rng = np.random.default_rng(99)
    poisoned_indices = rng.choice(len(train), size=400, replace=False)
    poisoned_shards = [
        (
            train.inputs[poisoned_indices[:200]],
            train.targets[poisoned_indices[:200]],
        ),
        (
            train.inputs[poisoned_indices[200:]],
            train.targets[poisoned_indices[200:]],
        ),
    ]
    return CompositeAttack(
        [
            (CrashAttack(), 2),
            (StragglerAttack(delay=10), 1),
            (
                LabelFlipAttack(
                    model,
                    poisoned_shards,
                    num_classes=2,
                    batch_size=32,
                    boost=8.0,
                ),
                2,
            ),
        ]
    )


def main() -> None:
    train = make_spambase_like(3000, seed=0)
    test = make_spambase_like(800, seed=1)

    rows = []
    for label, rule_factory in {
        "federated averaging": lambda: Average(),
        "krum": lambda: Krum(f=NUM_BYZANTINE),
        "multi-krum m=6": lambda: MultiKrum(f=NUM_BYZANTINE, m=6),
    }.items():
        model = LogisticRegressionModel(57)
        simulation = build_dataset_simulation(
            model,
            train,
            aggregator=rule_factory(),
            num_workers=NUM_WORKERS,
            num_byzantine=NUM_BYZANTINE,
            attack=build_attack(model, train),
            batch_size=32,
            learning_rate=0.05,
            eval_dataset=test,
            seed=3,
        )
        print(f"training spam filter with {label} ...")
        history = simulation.run(ROUNDS, eval_every=50)
        # The poisoned silos hold the two highest worker ids (composite
        # parts are assigned to Byzantine slots in order).
        poisoned_slots = {NUM_WORKERS - 2, NUM_WORKERS - 1}
        selecting = [r for r in history.records if r.selected]
        poisoned_rate = (
            sum(1 for r in selecting if set(r.selected) & poisoned_slots)
            / len(selecting)
            if selecting
            else 0.0
        )
        rows.append(
            [
                label,
                f"{100 * history.final_accuracy:.1f}%",
                history.final_loss,
                f"{100 * poisoned_rate:.1f}%",
            ]
        )

    print()
    print(
        format_table(
            ["rule", "test accuracy", "test loss", "poisoned silo selected"],
            rows,
            title=(
                f"spam filter across {NUM_WORKERS} orgs — "
                "2 crashed + 1 straggler + 2 boosted label-flip silos"
            ),
        )
    )
    print(
        "\nThe crash/straggler slots merely slow averaging down, but the"
        "\nboosted label-flip silos drag the linear aggregate toward a"
        "\nflipped decision boundary — averaging collapses.  Krum scores"
        "\nthe boosted gradients as far outliers and never selects them."
    )


if __name__ == "__main__":
    main()
