"""Argument validation helpers shared across the library.

All validators raise exceptions from :mod:`repro.exceptions` so that user
errors surface as ``ReproError`` subclasses with actionable messages.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    DimensionMismatchError,
    InvalidVectorError,
)

__all__ = [
    "check_positive_int",
    "check_probability",
    "check_finite",
    "check_vector_stack",
    "check_factory_kwargs",
]


def check_positive_int(value: int, name: str, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as a float."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a number in [0, 1], got {value!r}") from exc
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_finite(array: np.ndarray, name: str) -> np.ndarray:
    """Validate that every entry of ``array`` is finite and return it."""
    array = np.asarray(array)
    if not np.all(np.isfinite(array)):
        bad = int(np.size(array) - np.count_nonzero(np.isfinite(array)))
        raise InvalidVectorError(f"{name} contains {bad} non-finite entries (NaN or Inf)")
    return array


def check_vector_stack(
    vectors: np.ndarray,
    name: str = "vectors",
    *,
    require_finite: bool = True,
) -> np.ndarray:
    """Validate and normalize a stack of proposal vectors.

    Aggregation rules operate on an ``(n, d)`` float matrix: one row per
    worker proposal.  This accepts anything array-like of that shape,
    promotes to ``float64``, and optionally rejects non-finite entries.
    """
    array = np.asarray(vectors, dtype=np.float64)
    if array.ndim != 2:
        raise DimensionMismatchError(
            f"{name} must be a 2-d array of shape (n, d), got shape {array.shape}"
        )
    if array.shape[0] == 0 or array.shape[1] == 0:
        raise DimensionMismatchError(
            f"{name} must contain at least one vector of dimension >= 1, got shape {array.shape}"
        )
    if require_finite:
        check_finite(array, name)
    return array


def check_factory_kwargs(
    kind: str, name: str, factory, kwargs: dict
) -> None:
    """Validate ``kwargs`` against ``factory``'s signature before calling.

    Shared by the name-based registries (attacks, workloads): arguments
    that do not bind — unknown names, missing required parameters —
    raise :class:`ConfigurationError` naming the entry and the
    parameters its factory accepts, instead of leaking the factory's raw
    ``TypeError``.  Factories without an introspectable signature are
    let through for the call itself to check.
    """
    import inspect

    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return
    try:
        signature.bind(**kwargs)
    except TypeError as error:
        accepted = ", ".join(signature.parameters) or "none"
        raise ConfigurationError(
            f"invalid arguments for {kind} {name!r}: {error}; "
            f"accepted parameters: {accepted}"
        ) from error
