"""Procedural MNIST substitute: rendered digit glyphs with noise.

The full paper trains an MLP on MNIST.  This module synthesizes a
10-class 28×28 grayscale digit dataset offline: each digit has a 7×5
stroke template which is upscaled, randomly translated, brightness-
jittered and corrupted with pixel noise.  The resulting task is
learnable-but-noisy, which is the only property the Byzantine-SGD
experiments consume (see DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["make_mnist_like", "render_digit", "IMAGE_SIDE"]

IMAGE_SIDE = 28

# 7x5 stroke bitmaps for digits 0-9 (classic dot-matrix glyphs).
_TEMPLATE_ROWS: dict[int, tuple[str, ...]] = {
    0: ("01110", "10001", "10011", "10101", "11001", "10001", "01110"),
    1: ("00100", "01100", "00100", "00100", "00100", "00100", "01110"),
    2: ("01110", "10001", "00001", "00010", "00100", "01000", "11111"),
    3: ("01110", "10001", "00001", "00110", "00001", "10001", "01110"),
    4: ("00010", "00110", "01010", "10010", "11111", "00010", "00010"),
    5: ("11111", "10000", "11110", "00001", "00001", "10001", "01110"),
    6: ("00110", "01000", "10000", "11110", "10001", "10001", "01110"),
    7: ("11111", "00001", "00010", "00100", "01000", "01000", "01000"),
    8: ("01110", "10001", "10001", "01110", "10001", "10001", "01110"),
    9: ("01110", "10001", "10001", "01111", "00001", "00010", "01100"),
}


def _templates() -> np.ndarray:
    """Stack the 10 glyph bitmaps into a ``(10, 7, 5)`` float array."""
    glyphs = np.zeros((10, 7, 5), dtype=np.float64)
    for digit, rows in _TEMPLATE_ROWS.items():
        for r, row in enumerate(rows):
            for c, char in enumerate(row):
                glyphs[digit, r, c] = 1.0 if char == "1" else 0.0
    return glyphs


_GLYPHS = _templates()


def render_digit(
    digit: int,
    rng: np.random.Generator,
    *,
    noise: float = 0.15,
    max_shift: int = 3,
) -> np.ndarray:
    """Render one 28×28 image of ``digit`` with random jitter and noise.

    The 7×5 template is upscaled ×4 (to 28×20), padded to 28×28, shifted
    by up to ``max_shift`` pixels in each direction, scaled by a random
    stroke intensity, then corrupted with clipped Gaussian pixel noise.
    """
    if not 0 <= digit <= 9:
        raise ConfigurationError(f"digit must be in [0, 9], got {digit}")
    glyph = np.kron(_GLYPHS[digit], np.ones((4, 4)))  # (28, 20)
    canvas = np.zeros((IMAGE_SIDE, IMAGE_SIDE), dtype=np.float64)
    col0 = (IMAGE_SIDE - glyph.shape[1]) // 2
    canvas[:, col0 : col0 + glyph.shape[1]] = glyph
    if max_shift > 0:
        shift_r = int(rng.integers(-max_shift, max_shift + 1))
        shift_c = int(rng.integers(-max_shift, max_shift + 1))
        canvas = np.roll(np.roll(canvas, shift_r, axis=0), shift_c, axis=1)
    intensity = rng.uniform(0.7, 1.0)
    image = canvas * intensity
    if noise > 0:
        image = image + rng.normal(0.0, noise, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def make_mnist_like(
    num_samples: int,
    *,
    noise: float = 0.15,
    max_shift: int = 3,
    seed: SeedLike = None,
) -> Dataset:
    """Generate a balanced 10-class digit dataset of flattened images.

    Returns a :class:`Dataset` with ``inputs`` in ``[0, 1]^{784}`` and
    integer labels 0–9, classes drawn uniformly.
    """
    if num_samples < 1:
        raise ConfigurationError(f"num_samples must be >= 1, got {num_samples}")
    rng = as_generator(seed)
    labels = rng.integers(0, 10, size=num_samples)
    images = np.empty((num_samples, IMAGE_SIDE * IMAGE_SIDE), dtype=np.float64)
    for i, digit in enumerate(labels):
        images[i] = render_digit(
            int(digit), rng, noise=noise, max_shift=max_shift
        ).ravel()
    return Dataset(images, labels, task="multiclass", num_classes=10, name="mnist-like")
