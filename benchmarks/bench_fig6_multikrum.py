"""E8 — Full paper Fig. 6: Multi-Krum trades resilience slack for speed.

Multi-Krum averages the m best-scored proposals.  m = 1 is Krum; larger
m recovers averaging's variance reduction while the score filter still
excludes the f Byzantine proposals.  The figure's claim: with m = n − f
(here capped at n − f − 2 to stay in the trusted pool), Multi-Krum's
curve approaches averaging's attack-free curve while remaining robust.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.attacks.random_noise import GaussianAttack
from repro.baselines.average import Average
from repro.core.krum import MultiKrum
from repro.data.mnist_like import make_mnist_like
from repro.experiments.builders import build_dataset_simulation
from repro.experiments.reporting import format_table
from repro.models.mlp import MLPClassifier

NUM_WORKERS = 20
F = 4
M_VALUES = (1, 5, 10, 14)  # 14 = n - f - 2
ROUNDS = 100


def _run_arm(aggregator, num_byzantine, attack, train, test):
    model = MLPClassifier(784, 10, hidden_sizes=(32,), init_seed=0)
    sim = build_dataset_simulation(
        model,
        train,
        aggregator=aggregator,
        num_workers=NUM_WORKERS,
        num_byzantine=num_byzantine,
        attack=attack,
        batch_size=16,  # small batch → visible variance-reduction effect
        learning_rate=0.3,
        eval_dataset=test,
        seed=13,
    )
    return sim.run(ROUNDS, eval_every=20)


def bench_fig6_multikrum_m_sweep(benchmark):
    def run():
        train = make_mnist_like(1500, seed=0)
        test = make_mnist_like(400, seed=1)
        results = {}
        for m in M_VALUES:
            results[f"multi-krum m={m}"] = _run_arm(
                MultiKrum(f=F, m=m),
                F,
                GaussianAttack(sigma=200.0),
                train,
                test,
            )
        results["average f=0 (reference)"] = _run_arm(
            Average(), 0, None, train, test
        )
        return results

    results = run_once(benchmark, run)
    emit(
        format_table(
            ["arm", "final loss", "final error", "byz-sel%"],
            [
                [
                    label,
                    h.final_loss,
                    1.0 - h.final_accuracy,
                    100 * h.byzantine_selection_rate(),
                ]
                for label, h in results.items()
            ],
            title=(
                f"Fig 6 — Multi-Krum m sweep under 20% Gaussian attack "
                f"(n={NUM_WORKERS}, f={F}, round {ROUNDS})"
            ),
        )
    )
    losses = {m: results[f"multi-krum m={m}"].final_loss for m in M_VALUES}
    reference = results["average f=0 (reference)"].final_loss

    # Robustness holds across the whole m range.
    for m in M_VALUES:
        history = results[f"multi-krum m={m}"]
        assert history.byzantine_selection_rate() < 0.05, f"m={m} selected Byzantine"
        assert 1.0 - history.final_accuracy < 0.2, f"m={m} failed to learn"
    # Speed: large m strictly improves on m=1 and approaches the
    # attack-free averaging reference.
    assert losses[14] < losses[1], "m=n-f-2 should beat plain Krum"
    assert losses[14] < reference + 0.15, (
        f"m=14 loss {losses[14]:.3f} should approach averaging {reference:.3f}"
    )
