"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = ["numerical_gradient", "assert_gradients_close"]


def numerical_gradient(
    fn: Callable[[np.ndarray], float],
    params: np.ndarray,
    *,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of a scalar function."""
    params = np.asarray(params, dtype=np.float64)
    grad = np.zeros_like(params)
    flat = params.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        upper = fn(params)
        flat[i] = original - epsilon
        lower = fn(params)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * epsilon)
    return grad


def assert_gradients_close(
    analytic: np.ndarray,
    numeric: np.ndarray,
    *,
    rtol: float = 1e-5,
    atol: float = 1e-7,
) -> None:
    """Assert analytic and numeric gradients agree within tolerance."""
    analytic = np.asarray(analytic, dtype=np.float64)
    numeric = np.asarray(numeric, dtype=np.float64)
    assert analytic.shape == numeric.shape, (
        f"shape mismatch: {analytic.shape} vs {numeric.shape}"
    )
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
