"""Tests for the exponential minimal-diameter subset rule."""

import numpy as np
import pytest

from repro.baselines.majority import MinimalDiameterSubset
from repro.exceptions import ByzantineToleranceError, ConfigurationError


class TestMinimalDiameterSubset:
    def test_picks_tight_cluster(self, rng):
        cluster = 0.01 * rng.standard_normal((6, 3))
        outliers = 50.0 + rng.standard_normal((2, 3))
        stack = np.vstack([cluster, outliers])
        result = MinimalDiameterSubset(f=2).aggregate_detailed(stack)
        np.testing.assert_array_equal(np.sort(result.selected), np.arange(6))

    def test_output_is_subset_mean(self, rng):
        vectors = rng.standard_normal((7, 4))
        rule = MinimalDiameterSubset(f=2)
        result = rule.aggregate_detailed(vectors)
        np.testing.assert_allclose(
            result.vector, vectors[result.selected].mean(axis=0)
        )

    def test_f_zero_keeps_everything(self, rng):
        vectors = rng.standard_normal((5, 2))
        result = MinimalDiameterSubset(f=0).aggregate_detailed(vectors)
        assert result.selected.size == 5
        np.testing.assert_allclose(result.vector, vectors.mean(axis=0))

    def test_robust_to_colluding_attack_that_beats_closest_to_all(self, rng):
        honest = np.zeros((6, 3)) + 0.01 * rng.standard_normal((6, 3))
        decoy = np.full(3, 1e4)
        n = 8
        trojan = (honest.sum(axis=0) + decoy) / (n - 1)
        stack = np.vstack([honest, decoy[None, :], trojan[None, :]])
        result = MinimalDiameterSubset(f=2).aggregate_detailed(stack)
        assert np.all(result.selected < 6)

    def test_needs_two_survivors(self):
        with pytest.raises(ByzantineToleranceError):
            MinimalDiameterSubset(f=3).aggregate(np.zeros((4, 2)))

    def test_subset_budget_guard(self):
        rule = MinimalDiameterSubset(f=10, max_subsets=100)
        with pytest.raises(ConfigurationError, match="exponential"):
            rule.aggregate(np.zeros((30, 2)))

    def test_deterministic_tie_break(self):
        vectors = np.zeros((5, 2))  # every subset has diameter 0
        result = MinimalDiameterSubset(f=1).aggregate_detailed(vectors)
        np.testing.assert_array_equal(result.selected, [0, 1, 2, 3])
