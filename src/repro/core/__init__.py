"""The paper's contribution: Krum and the Byzantine-resilience machinery.

* :class:`Krum` / :class:`MultiKrum` — the choice functions of Section 4.
* :mod:`repro.core.theory` — η(n, f), the ``2f + 2 < n`` precondition and
  the (α, f)-resilience angle of Proposition 4.2.
* :class:`Aggregator` — the interface every choice function implements
  (the paper's ``F``), shared with the baselines.
"""

from repro.core.aggregator import (
    AggregationResult,
    Aggregator,
    SelectionAggregator,
)
from repro.core.batched import (
    BatchedAggregationResult,
    BatchedAggregator,
    batched_krum_scores,
    has_batched_kernel,
    make_batched_aggregator,
)
from repro.core.bulyan import Bulyan
from repro.core.krum import Krum, MultiKrum, krum_scores, krum_scores_reference
from repro.core.registry import available_aggregators, make_aggregator
from repro.core.staleness import KardamFilter, StalenessAwareAggregator
from repro.core.theory import (
    check_krum_precondition,
    eta,
    krum_variance_bound,
    max_tolerable_f,
    resilience_angle,
)

__all__ = [
    "Aggregator",
    "SelectionAggregator",
    "AggregationResult",
    "Krum",
    "MultiKrum",
    "Bulyan",
    "KardamFilter",
    "StalenessAwareAggregator",
    "krum_scores",
    "krum_scores_reference",
    "BatchedAggregator",
    "BatchedAggregationResult",
    "batched_krum_scores",
    "has_batched_kernel",
    "make_batched_aggregator",
    "eta",
    "check_krum_precondition",
    "max_tolerable_f",
    "resilience_angle",
    "krum_variance_bound",
    "make_aggregator",
    "available_aggregators",
]
