"""Convergence diagnostics over training histories (Proposition 4.3)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["has_converged", "rounds_to_threshold", "plateau_value"]


def has_converged(
    values: np.ndarray,
    *,
    threshold: float,
    window: int = 5,
) -> bool:
    """True if the last ``window`` values all lie at or below ``threshold``.

    Proposition 4.3 predicts ``‖∇Q(x_t)‖`` enters (and stays in) the
    basin ``‖∇Q‖ ≤ η(n,f)·√d·σ``; this is the corresponding empirical
    test on a gradient-norm series.
    """
    values = np.asarray(values, dtype=np.float64)
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if values.size < window:
        return False
    return bool(np.all(values[-window:] <= threshold))


def rounds_to_threshold(
    rounds: np.ndarray, values: np.ndarray, *, threshold: float
) -> int | None:
    """First round index at which the series reaches ``threshold``.

    Returns ``None`` when the series never gets there — the outcome for
    averaging under attack.
    """
    rounds = np.asarray(rounds)
    values = np.asarray(values, dtype=np.float64)
    if rounds.shape != values.shape:
        raise ConfigurationError(
            f"rounds {rounds.shape} and values {values.shape} must align"
        )
    below = np.flatnonzero(values <= threshold)
    if below.size == 0:
        return None
    return int(rounds[below[0]])


def plateau_value(values: np.ndarray, *, fraction: float = 0.2) -> float:
    """Mean of the last ``fraction`` of the series (the settled level)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ConfigurationError("empty series")
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
    tail = max(1, int(round(values.size * fraction)))
    return float(values[-tail:].mean())
