"""Server-side attacks — corrupted parameter broadcasts.

The paper assumes one reliable parameter server (footnote 2).  The
server tier drops that assumption the way ByzSGD and Garfield do: the
server is replicated, and up to ``byzantine_servers`` replicas may
return *corrupted parameter broadcasts* to the workers.  A
:class:`ServerAttack` is the strategy producing those corrupted
broadcasts — the server-side mirror of the worker-side
:class:`~repro.attacks.base.Attack` (which corrupts gradient
*proposals*), with the same craft contract: a validated fixed-shape
float64 output, determinism under a fixed RNG, a ``stateful`` flag and a
``reset()`` hook for attacks that carry per-run state.

Built-in strategies:

* ``sign-flip-broadcast`` — each Byzantine replica broadcasts
  ``−scale · x_t``, steering workers to compute ascent directions;
* ``stale-replay-broadcast`` — replays the canonical broadcast from
  ``delay`` rounds ago (stateful: it records the broadcast history);
* ``random-noise-broadcast`` — adds i.i.d. Gaussian noise of scale
  ``sigma`` to the true broadcast, blurring what workers train against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError

__all__ = [
    "ServerAttackContext",
    "ServerAttack",
    "SignFlipBroadcastAttack",
    "StaleReplayBroadcastAttack",
    "RandomNoiseBroadcastAttack",
]


@dataclass(frozen=True)
class ServerAttackContext:
    """Everything a Byzantine server replica knows when it broadcasts.

    A Byzantine replica sees the canonical parameter state ``params``
    (honest replicas stay lock-step on it — corruption perturbs only
    what workers *receive*), the round counter, the replica topology,
    and a dedicated RNG stream spawned from the cell's root seed.
    """

    round_index: int
    params: np.ndarray  # (d,) the canonical broadcast x_t
    num_servers: int
    byzantine_indices: np.ndarray  # replica ids the adversary controls
    rng: np.random.Generator

    @property
    def num_byzantine(self) -> int:
        return int(len(self.byzantine_indices))

    @property
    def dimension(self) -> int:
        return int(self.params.shape[0])

    def validate(self) -> None:
        if np.asarray(self.params).ndim != 1:
            raise DimensionMismatchError(
                f"params must be (d,), got shape {np.asarray(self.params).shape}"
            )
        if self.num_servers < 1:
            raise ConfigurationError(
                f"num_servers must be >= 1, got {self.num_servers}"
            )
        indices = np.asarray(self.byzantine_indices)
        if indices.size > self.num_servers:
            raise ConfigurationError(
                f"{indices.size} byzantine replicas exceed the "
                f"{self.num_servers}-replica group"
            )
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.num_servers
        ):
            raise ConfigurationError(
                f"byzantine replica ids must lie in [0, {self.num_servers}), "
                f"got {indices.tolist()}"
            )


class ServerAttack(ABC):
    """Strategy producing the corrupted replica broadcasts for one round."""

    name: str = "server-attack"
    #: True for attacks that carry mutable per-run state across rounds.
    #: Stateful attacks must implement :meth:`reset` so one instance can
    #: be reused across sequential runs, and must not be shared between
    #: concurrently-executing scenarios (the batched executor rejects
    #: such sharing, exactly as it does for worker-side attacks).
    stateful: bool = False

    @abstractmethod
    def corrupt(self, context: ServerAttackContext) -> np.ndarray:
        """Return a ``(byzantine_servers, d)`` array of corrupted
        broadcasts, one row per controlled replica."""

    def reset(self) -> None:
        """Discard per-run state so the instance can start a fresh run.

        Stateless attacks inherit this no-op; stateful ones override it.
        The server group calls it once at construction time, so reusing
        an attack instance sequentially is deterministic.
        """

    def _output(
        self, context: ServerAttackContext, vectors: np.ndarray
    ) -> np.ndarray:
        """Validate and shape an attack's output (helper for subclasses)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        expected = (context.num_byzantine, context.dimension)
        if vectors.shape != expected:
            raise DimensionMismatchError(
                f"{self.name} produced shape {vectors.shape}, expected {expected}"
            )
        return vectors

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class SignFlipBroadcastAttack(ServerAttack):
    """Broadcast ``−scale · x_t``: the mirrored parameter state.

    Workers that trust this replica compute gradients at the mirrored
    point, turning descent into ascent on symmetric objectives — a
    single Byzantine server defeats an unreplicated run outright, while
    a worker-side coordinate median over three or more replicas restores
    the true broadcast exactly (two honest copies out-vote the flip).
    """

    def __init__(self, scale: float = 1.0):
        if not scale > 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.scale = float(scale)
        self.name = (
            "sign-flip-broadcast"
            if self.scale == 1.0
            else f"sign-flip-broadcast(scale={self.scale})"
        )

    def corrupt(self, context: ServerAttackContext) -> np.ndarray:
        corrupted = np.tile(
            -self.scale * context.params, (context.num_byzantine, 1)
        )
        return self._output(context, corrupted)


class StaleReplayBroadcastAttack(ServerAttack):
    """Replay the canonical broadcast from ``delay`` rounds ago.

    Models a replica that stopped updating (or deliberately serves stale
    state): workers it reaches train against old parameters.  Stateful —
    it records the broadcast history it replays from, so one instance
    must not be shared across concurrently-executing scenarios.
    """

    stateful = True

    def __init__(self, delay: int = 5):
        if delay < 1:
            raise ConfigurationError(f"delay must be >= 1, got {delay}")
        self.delay = int(delay)
        self.name = f"stale-replay-broadcast(delay={self.delay})"
        self._history: list[np.ndarray] = []

    def corrupt(self, context: ServerAttackContext) -> np.ndarray:
        self._history.append(np.asarray(context.params, dtype=np.float64).copy())
        if len(self._history) > self.delay + 1:
            self._history.pop(0)
        stale = self._history[0]
        return self._output(
            context, np.tile(stale, (context.num_byzantine, 1))
        )

    def reset(self) -> None:
        """Clear the replay history (call between independent runs)."""
        self._history.clear()


class RandomNoiseBroadcastAttack(ServerAttack):
    """Broadcast ``x_t + sigma · N(0, I)``: a noisy parameter state.

    Each controlled replica adds independent Gaussian noise, drawn from
    the attack's dedicated RNG stream, to the true broadcast — the
    server-side analogue of the worker-side Gaussian attack.
    """

    def __init__(self, sigma: float = 1.0):
        if not sigma > 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        self.sigma = float(sigma)
        self.name = (
            "random-noise-broadcast"
            if self.sigma == 1.0
            else f"random-noise-broadcast(sigma={self.sigma})"
        )

    def corrupt(self, context: ServerAttackContext) -> np.ndarray:
        noise = self.sigma * context.rng.standard_normal(
            (context.num_byzantine, context.dimension)
        )
        return self._output(context, context.params + noise)
