"""The finding record every lint rule emits.

A finding pins one invariant violation to one source location.  Findings
are plain frozen data so the engine can sort, deduplicate, filter
(suppression comments) and serialize them without knowing which rule
produced them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``line`` and ``column`` are 1-based (``column`` follows the compiler
    convention of pointing at the offending token's first character).
    """

    rule: str
    path: str
    line: int
    column: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str, str]:
        return (self.path, self.line, self.column, self.rule, self.message)

    def as_dict(self) -> dict[str, object]:
        return asdict(self)

    def render(self) -> str:
        """The one-line text form: ``path:line:col: [rule] message``."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"[{self.rule}] {self.message}"
        )
