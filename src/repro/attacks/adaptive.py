"""Adaptive adversaries that exploit the defenses themselves.

The static attacks pick their poison once; the defenses added since —
Kardam dampening, the empirical-Lipschitz filter, selection-based rules —
are adaptive, so a faithful robustness evaluation needs adversaries that
adapt back.  Three strategies, each keyed to one defensive mechanism:

* :class:`StalenessGamingAttack` rides the dampening curve ``Λ(τ)``:
  it pre-amplifies its proposal by ``1 / Λ(τ)`` so a Kardam-style
  wrapper dampens it back to exactly the intended push, while an
  unfiltered rule receives the amplified vector raw.
* :class:`LipschitzMimicryAttack` estimates the honest workers'
  empirical Lipschitz rates from the omniscient context and steers the
  aggregate toward ``−scale · ∇Q`` only as fast as the filter's
  quantile window allows, so its own growth rate never looks like an
  outlier.
* :class:`DefenseProbingAttack` wraps any inner attack and adapts an
  amplitude multiplier each round from the
  ``AttackContext.selected_last_round`` feedback: scale up while the
  choice function keeps accepting the proposal, back off toward the
  honest barycenter when it gets filtered.
* :class:`BanditProbingAttack` replaces the probe's fixed grow/shrink
  walk with a UCB bandit over a grid of amplitude arms, treating
  "selected last round" as the reward — it converges on the largest
  amplitude the choice function still accepts instead of oscillating
  around it.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.core.staleness import DAMPENING_MODES
from repro.exceptions import ConfigurationError

__all__ = [
    "StalenessGamingAttack",
    "LipschitzMimicryAttack",
    "DefenseProbingAttack",
    "BanditProbingAttack",
]


class StalenessGamingAttack(Attack):
    """Pre-amplify by the inverse dampening factor ``1 / Λ(τ)``.

    Each Byzantine slot submitting with staleness ``τ`` sends
    ``−(scale / Λ(τ)) · ∇Q`` (honest barycenter when the exact gradient
    is hidden).  A staleness-aware rule using the same dampening mode
    shrinks the proposal back to a constant ``−scale · ∇Q`` — the attack
    never loses strength to the dampening — while any rule that ignores
    staleness receives the amplified vector at full magnitude, degrading
    the worse the more the adversary lags.  In a synchronous round
    (``byzantine_staleness`` absent) ``τ = 0`` and ``Λ = 1``, so the
    attack degenerates to a plain sign flip.

    Stateless: the timing information lives in the context.
    """

    def __init__(
        self, scale: float = 1.0, dampening: str = "inverse", gamma: float = 0.5
    ):
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        if dampening not in DAMPENING_MODES:
            raise ConfigurationError(
                f"dampening must be one of {DAMPENING_MODES}, got {dampening!r}"
            )
        if not 0.0 < float(gamma) <= 1.0:
            raise ConfigurationError(f"gamma must be in (0, 1], got {gamma}")
        self.scale = float(scale)
        self.dampening = dampening
        self.gamma = float(gamma)
        extras = "" if dampening == "inverse" else f",dampening={dampening}"
        if dampening == "exponential" and self.gamma != 0.5:
            extras += f",gamma={self.gamma:g}"
        self.name = f"staleness-gaming(scale={self.scale:g}{extras})"

    def _inverse_dampening(self, staleness: np.ndarray) -> np.ndarray:
        """``1 / Λ(τ)`` per Byzantine slot (the amplification factor)."""
        staleness = np.asarray(staleness, dtype=np.float64)
        if self.dampening == "none":
            return np.ones_like(staleness)
        if self.dampening == "inverse":
            return 1.0 + staleness
        return self.gamma ** (-staleness)

    def craft(self, context: AttackContext) -> np.ndarray:
        gradient = (
            context.true_gradient
            if context.true_gradient is not None
            else context.honest_mean
        )
        gradient = np.asarray(gradient, dtype=np.float64)
        if context.byzantine_staleness is None:
            staleness = np.zeros(context.num_byzantine, dtype=np.int64)
        else:
            staleness = context.byzantine_staleness
        amplification = self._inverse_dampening(staleness)
        proposals = (-self.scale * amplification)[:, None] * gradient[None, :]
        return self._output(context, proposals)


class LipschitzMimicryAttack(Attack):
    """Steer the mean while staying inside the Lipschitz quantile window.

    The empirical-Lipschitz filter drops a slot whose growth rate
    ``‖v(t) − v(t−1)‖ / ‖x(t) − x(t−1)‖`` exceeds a quantile of the
    recently accepted rates.  This adversary runs the same estimator on
    the honest proposals it observes (the omniscient context exposes
    them, with the stale parameters each was computed at), takes the
    ``quantile`` of its own rate window shrunk by ``margin``, and moves
    its proposal toward ``−scale · ∇Q`` no faster than that budget per
    round.  Its rate therefore sits *inside* the filter's learned
    distribution while the proposal drifts adversarial.

    The first round sends the honest barycenter (perfect mimicry, and
    the anchor the drift starts from).  Stateful across rounds — one
    instance per simulation cell.
    """

    stateful = True

    #: How many of its own past parameter snapshots the adversary keeps
    #: for stale-parameter lookups; comfortably above any realistic
    #: bounded-staleness window.
    _PARAMS_MEMORY = 64

    def __init__(
        self,
        scale: float = 1.0,
        quantile: float = 0.9,
        window: int = 256,
        margin: float = 0.9,
    ):
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        if not 0.0 < float(quantile) <= 1.0:
            raise ConfigurationError(
                f"quantile must be in (0, 1], got {quantile}"
            )
        if int(window) < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if margin <= 0:
            raise ConfigurationError(f"margin must be positive, got {margin}")
        self.scale = float(scale)
        self.quantile = float(quantile)
        self.window = int(window)
        self.margin = float(margin)
        self.name = (
            f"lipschitz-mimicry(scale={self.scale:g},"
            f"quantile={self.quantile:g})"
        )
        self.reset()

    def reset(self) -> None:
        # x_t by round index, for reconstructing the stale parameters a
        # lagging Byzantine slot is judged at.
        self._params_by_round: dict[int, np.ndarray] = {}
        # Per honest worker id: previous (gradient, params) observation.
        self._prev_honest: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # Observed honest growth rates (the filter's window, mimicked).
        self._rates: deque[float] = deque(maxlen=self.window)
        # Our previous shared proposal, and per Byzantine slot the
        # parameters that proposal was judged against.
        self._prev_vector: np.ndarray | None = None
        self._prev_judged: dict[int, np.ndarray] = {}

    def _judged_params(
        self, context: AttackContext, slot: int, tau: int
    ) -> np.ndarray:
        """The parameters slot ``slot``'s proposal is filtered at:
        ``x_{t−τ}`` when retained, else the freshest known vector."""
        stored = self._params_by_round.get(context.round_index - tau)
        return context.params if stored is None else stored

    def _observe_honest(self, context: AttackContext) -> None:
        honest_params = context.honest_params
        for row, worker_id in enumerate(context.honest_indices):
            gradient = context.honest_gradients[row]
            params = (
                context.params
                if honest_params is None
                else honest_params[row]
            )
            previous = self._prev_honest.get(int(worker_id))
            if previous is not None:
                prev_gradient, prev_params = previous
                displacement = float(np.linalg.norm(params - prev_params))
                if displacement > 0.0:
                    rate = (
                        float(np.linalg.norm(gradient - prev_gradient))
                        / displacement
                    )
                    if np.isfinite(rate):
                        self._rates.append(rate)
            self._prev_honest[int(worker_id)] = (
                gradient.copy(),
                params.copy(),
            )

    def craft(self, context: AttackContext) -> np.ndarray:
        t = context.round_index
        self._params_by_round[t] = np.asarray(
            context.params, dtype=np.float64
        ).copy()
        for old in [
            r for r in self._params_by_round if r < t - self._PARAMS_MEMORY
        ]:
            del self._params_by_round[old]
        self._observe_honest(context)

        gradient = (
            context.true_gradient
            if context.true_gradient is not None
            else context.honest_mean
        )
        target = -self.scale * np.asarray(gradient, dtype=np.float64)

        if context.byzantine_staleness is None:
            staleness = np.zeros(context.num_byzantine, dtype=np.int64)
        else:
            staleness = context.byzantine_staleness
        judged = {
            int(slot): self._judged_params(context, int(slot), int(tau))
            for slot, tau in zip(context.byzantine_indices, staleness)
        }

        if self._prev_vector is None:
            # Perfect mimicry on the first round: indistinguishable from
            # a correct worker, and the anchor the drift starts from.
            vector = context.honest_mean.copy()
        else:
            # The filter measures each slot's rate against how far *its*
            # judged parameters moved; the tightest slot constrains the
            # shared proposal.
            displacements = [
                float(np.linalg.norm(judged[slot] - self._prev_judged[slot]))
                for slot in judged
                if slot in self._prev_judged
            ]
            positive = [d for d in displacements if d > 0.0]
            step = target - self._prev_vector
            step_norm = float(np.linalg.norm(step))
            if not positive or not self._rates:
                # No measurable rate this round (parameters static, or
                # no honest observations yet): the filter has nothing to
                # reject, jump straight to the target.
                vector = target
            else:
                threshold = float(
                    np.quantile(
                        np.asarray(self._rates, dtype=np.float64),
                        self.quantile,
                    )
                )
                allowed = self.margin * threshold * min(positive)
                if step_norm <= allowed or step_norm == 0.0:
                    vector = target
                else:
                    vector = self._prev_vector + (allowed / step_norm) * step

        self._prev_vector = vector.copy()
        self._prev_judged = {
            slot: params.copy() for slot, params in judged.items()
        }
        return self._output(
            context, np.tile(vector, (context.num_byzantine, 1))
        )


class DefenseProbingAttack(Attack):
    """Adapt an inner attack's amplitude to the selection feedback.

    Each round the wrapper reads ``context.selected_last_round``: if any
    of its slots was selected by the choice function, the defense
    accepted the previous proposal and the scale multiplies by ``grow``;
    if every slot was rejected, it multiplies by ``shrink``.  The inner
    attack's proposals are then interpolated away from the honest
    barycenter: ``mean + scale · (inner − mean)``, so ``scale → 0``
    degenerates to benign-looking behaviour and ``scale > 1``
    extrapolates beyond the inner attack.  Against selection-based rules
    (krum, multi-krum, bulyan) this walks the amplitude to the largest
    value the rule still accepts.

    Rules that select nothing (statistical rules like the medians or
    plain averaging report an empty selected set) always read as
    "rejected", so the probe decays toward benign against them — the
    honest outcome for an adversary whose probe signal is silent.

    Stateful across rounds — one instance per simulation cell.
    """

    stateful = True

    def __init__(
        self,
        inner: Attack | None = None,
        *,
        grow: float = 2.0,
        shrink: float = 0.5,
        initial_scale: float = 1.0,
        min_scale: float = 1e-3,
        max_scale: float = 1e3,
    ):
        if inner is None:
            from repro.attacks.simple import SignFlipAttack

            inner = SignFlipAttack()
        if not isinstance(inner, Attack):
            raise ConfigurationError(
                f"inner must be an Attack, got {type(inner).__name__}"
            )
        if grow < 1.0:
            raise ConfigurationError(f"grow must be >= 1, got {grow}")
        if not 0.0 < float(shrink) <= 1.0:
            raise ConfigurationError(
                f"shrink must be in (0, 1], got {shrink}"
            )
        if initial_scale <= 0:
            raise ConfigurationError(
                f"initial_scale must be positive, got {initial_scale}"
            )
        if not 0.0 < float(min_scale) <= float(max_scale):
            raise ConfigurationError(
                f"need 0 < min_scale <= max_scale, got "
                f"{min_scale} and {max_scale}"
            )
        self.inner = inner
        self.grow = float(grow)
        self.shrink = float(shrink)
        self.initial_scale = float(
            np.clip(initial_scale, min_scale, max_scale)
        )
        self.min_scale = float(min_scale)
        self.max_scale = float(max_scale)
        self.name = f"probe({inner.name})"
        self.reset()

    def reset(self) -> None:
        self._scale = self.initial_scale
        self.inner.reset()

    @property
    def scale(self) -> float:
        """The current amplitude multiplier (probing state)."""
        return self._scale

    def craft(self, context: AttackContext) -> np.ndarray:
        feedback = context.selected_last_round
        if feedback is not None:
            if bool(np.any(feedback)):
                self._scale = min(self._scale * self.grow, self.max_scale)
            else:
                self._scale = max(self._scale * self.shrink, self.min_scale)
        base = self.inner.craft(context)
        mean = context.honest_mean[None, :]
        proposals = mean + self._scale * (base - mean)
        return self._output(context, proposals)


class BanditProbingAttack(Attack):
    """UCB amplitude search over the selection feedback.

    Where :class:`DefenseProbingAttack` walks its amplitude with a fixed
    grow/shrink rule — forever oscillating around the acceptance
    boundary — this adversary treats each amplitude in ``arms`` as a
    bandit arm.  A round's reward is 1 when any of its slots appears in
    ``selected_last_round`` (the choice function accepted the previous
    proposal, which was crafted at the previously pulled arm) and 0
    otherwise.  Arms are pulled by the UCB1 index
    ``mean + exploration · sqrt(ln N / n_arm)`` after one warm-up pull
    each, so play concentrates on the largest amplitude the defense
    still accepts while cheaper arms keep a logarithmic trial budget.

    The proposal is the probe interpolation ``mean + arm · (inner −
    mean)``.  Fully deterministic — ties break toward the first
    (smallest) arm and no RNG is consumed — so loop and batched
    executors agree.  Stateful across rounds — one instance per
    simulation cell.
    """

    stateful = True

    def __init__(
        self,
        inner: Attack | None = None,
        *,
        arms: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
        exploration: float = 1.0,
    ):
        if inner is None:
            from repro.attacks.simple import SignFlipAttack

            inner = SignFlipAttack()
        if not isinstance(inner, Attack):
            raise ConfigurationError(
                f"inner must be an Attack, got {type(inner).__name__}"
            )
        arms = tuple(float(a) for a in arms)
        if not arms or any(a <= 0 for a in arms):
            raise ConfigurationError(
                f"arms must be a non-empty tuple of positive amplitudes, "
                f"got {arms}"
            )
        if len(set(arms)) != len(arms):
            raise ConfigurationError(f"arms must be distinct, got {arms}")
        if exploration < 0:
            raise ConfigurationError(
                f"exploration must be >= 0, got {exploration}"
            )
        self.inner = inner
        self.arms = arms
        self.exploration = float(exploration)
        self.name = f"probe-bandit({inner.name})"
        self.reset()

    def reset(self) -> None:
        self._pulls = np.zeros(len(self.arms), dtype=np.int64)
        self._rewards = np.zeros(len(self.arms), dtype=np.float64)
        self._last_arm: int | None = None
        self.inner.reset()

    @property
    def scale(self) -> float:
        """The amplitude the bandit pulled in the most recent round."""
        if self._last_arm is None:
            return self.arms[0]
        return self.arms[self._last_arm]

    def _choose_arm(self) -> int:
        unplayed = np.flatnonzero(self._pulls == 0)
        if unplayed.size:
            return int(unplayed[0])
        total = float(self._pulls.sum())
        means = self._rewards / self._pulls
        index = means + self.exploration * np.sqrt(
            np.log(total) / self._pulls
        )
        return int(np.argmax(index))

    def craft(self, context: AttackContext) -> np.ndarray:
        feedback = context.selected_last_round
        if feedback is not None and self._last_arm is not None:
            # Credit the previous round's arm: the feedback describes
            # the proposal that arm produced.
            self._pulls[self._last_arm] += 1
            self._rewards[self._last_arm] += float(bool(np.any(feedback)))
        arm = self._choose_arm()
        self._last_arm = arm
        base = self.inner.craft(context)
        mean = context.honest_mean[None, :]
        proposals = mean + self.arms[arm] * (base - mean)
        return self._output(context, proposals)
