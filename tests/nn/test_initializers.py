"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn.initializers import he_normal, normal, xavier_uniform, zeros


class TestZeros:
    def test_all_zero(self, rng):
        out = zeros((3, 4), rng)
        np.testing.assert_array_equal(out, np.zeros((3, 4)))


class TestNormal:
    def test_shape_and_scale(self, rng):
        out = normal((2000,), rng, std=0.5)
        assert out.shape == (2000,)
        assert out.std() == pytest.approx(0.5, rel=0.1)

    def test_reproducible(self):
        a = normal((5,), np.random.default_rng(0))
        b = normal((5,), np.random.default_rng(0))
        np.testing.assert_array_equal(a, b)


class TestXavierUniform:
    def test_within_limit(self, rng):
        fan_in, fan_out = 30, 50
        out = xavier_uniform((fan_in, fan_out), rng)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        assert np.all(np.abs(out) <= limit)

    def test_variance_close_to_glorot(self, rng):
        fan_in, fan_out = 100, 100
        out = xavier_uniform((fan_in, fan_out), rng)
        expected_var = 2.0 / (fan_in + fan_out)
        assert out.var() == pytest.approx(expected_var, rel=0.1)


class TestHeNormal:
    def test_std_matches_fan_in(self, rng):
        fan_in = 200
        out = he_normal((fan_in, 300), rng)
        assert out.std() == pytest.approx(np.sqrt(2.0 / fan_in), rel=0.05)

    def test_1d_shape_uses_own_size(self, rng):
        out = he_normal((50,), rng)
        assert out.shape == (50,)
