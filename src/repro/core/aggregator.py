"""Aggregator interface — the paper's choice function ``F``.

The parameter server computes ``F(V_1, ..., V_n)`` from the workers'
proposed vectors and applies ``x_{t+1} = x_t − γ_t · F(...)``.  Every
rule in this library (Krum, averaging, medians, ...) implements this
interface: a pure function from an ``(n, d)`` stack of proposals to one
``(d,)`` vector, plus an optional structured result carrying selection
metadata for the experiments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ByzantineToleranceError
from repro.utils.validation import check_vector_stack

__all__ = ["Aggregator", "SelectionAggregator", "AggregationResult"]


@dataclass(frozen=True)
class AggregationResult:
    """Outcome of one aggregation.

    ``selected`` lists the indices of input vectors the rule chose (for
    selection-based rules like Krum; empty for statistical rules like
    averaging), and ``scores`` carries per-input scores when the rule
    computes them — the experiments use both to count how often a
    Byzantine proposal is chosen.
    """

    vector: np.ndarray
    selected: np.ndarray = field(default_factory=lambda: np.array([], dtype=np.int64))
    scores: np.ndarray | None = None


class Aggregator(ABC):
    """A deterministic choice function on worker proposals."""

    #: Human-readable rule name used in reports and the registry.
    name: str = "aggregator"

    @abstractmethod
    def aggregate_detailed(self, vectors: np.ndarray) -> AggregationResult:
        """Aggregate an ``(n, d)`` proposal stack, returning metadata too."""

    def aggregate(self, vectors: np.ndarray) -> np.ndarray:
        """Aggregate an ``(n, d)`` proposal stack into one ``(d,)`` vector."""
        return self.aggregate_detailed(vectors).vector

    def __call__(self, vectors: np.ndarray) -> np.ndarray:
        return self.aggregate(vectors)

    def check_tolerance(self, num_workers: int) -> None:
        """Raise ``ByzantineToleranceError`` if ``num_workers`` is too small.

        Default: any n >= 1 is accepted.  Rules with (n, f) preconditions
        (Krum's ``2f + 2 < n``, trimmed mean's ``2f < n``) override this.
        """
        if num_workers < 1:
            raise ByzantineToleranceError(
                f"need at least one worker, got {num_workers}", n=num_workers
            )

    def _validated(self, vectors: np.ndarray) -> np.ndarray:
        vectors = check_vector_stack(vectors, "proposals", require_finite=False)
        self.check_tolerance(vectors.shape[0])
        return vectors

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class SelectionAggregator(Aggregator):
    """An aggregator that returns (an average of) selected input vectors.

    Implementations provide :meth:`select`; the aggregate is the mean of
    the selected rows (a single row for Krum with m = 1).
    """

    @abstractmethod
    def select(self, vectors: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Return ``(selected_indices, scores_or_None)`` for the stack."""

    def aggregate_detailed(self, vectors: np.ndarray) -> AggregationResult:
        vectors = self._validated(vectors)
        selected, scores = self.select(vectors)
        selected = np.asarray(selected, dtype=np.int64)
        if selected.size == 1:
            vector = vectors[int(selected[0])].copy()
        else:
            vector = vectors[selected].mean(axis=0)
        return AggregationResult(vector=vector, selected=selected, scores=scores)
