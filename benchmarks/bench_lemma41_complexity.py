"""E3 — Lemma 4.1: Krum runs in O(n² · d); the subset rule is exponential.

Measures Krum wall-clock over sweeps of n (fixed d) and d (fixed n) and
fits log-log slopes: ~2 in n, ~1 in d.  Contrast: the majority-based
minimal-diameter rule's runtime grows with C(n, n−f) subset enumerations.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.baselines.majority import MinimalDiameterSubset
from repro.core.krum import Krum, krum_scores
from repro.experiments.reporting import format_table
from repro.utils.timing import Timer, fit_power_law

REPEATS = 5


def _time_krum(n, d, f, repeats=REPEATS, seed=0):
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n, d))
    krum_scores(vectors, f)  # warm-up (BLAS thread pools etc.)
    timer = Timer()
    for _ in range(repeats):
        with timer:
            krum_scores(vectors, f)
    return timer.min_seconds


def bench_lemma41_scaling_in_n(benchmark):
    ns = np.array([20, 40, 80, 160, 320])
    d = 1000

    def run():
        return np.array([_time_krum(n, d, f=max(1, n // 4)) for n in ns])

    times = run_once(benchmark, run)
    slope = fit_power_law(ns.astype(float), times)
    emit(
        format_table(
            ["n", "seconds (min of 5)"],
            [[int(n), t] for n, t in zip(ns, times)],
            title=f"Lemma 4.1 — Krum time vs n at d={d} (log-log slope {slope:.2f})",
        )
    )
    # O(n^2): allow slack for BLAS constant factors at small sizes.
    assert 1.3 <= slope <= 2.8, f"n-scaling slope {slope:.2f} not ~quadratic"


def bench_lemma41_scaling_in_d(benchmark):
    ds = np.array([1_000, 4_000, 16_000, 64_000, 256_000])
    n = 30

    def run():
        return np.array([_time_krum(n, int(d), f=7) for d in ds])

    times = run_once(benchmark, run)
    slope = fit_power_law(ds.astype(float), times)
    emit(
        format_table(
            ["d", "seconds (min of 5)"],
            [[int(d), t] for d, t in zip(ds, times)],
            title=f"Lemma 4.1 — Krum time vs d at n={n} (log-log slope {slope:.2f})",
        )
    )
    assert 0.7 <= slope <= 1.3, f"d-scaling slope {slope:.2f} not ~linear"


def bench_lemma41_exponential_subset_rule(benchmark):
    """The contrast the paper draws: the majority-based rule enumerates
    C(n, n−f) subsets — its cost explodes with f while Krum's stays flat."""
    from math import comb

    d = 100
    cases = [(12, 2), (14, 3), (16, 4), (18, 5)]

    def run():
        rows = []
        rng = np.random.default_rng(0)
        for n, f in cases:
            vectors = rng.standard_normal((n, d))
            subset_rule = MinimalDiameterSubset(f=f, max_subsets=10**7)
            timer_subset, timer_krum = Timer(), Timer()
            with timer_subset:
                subset_rule.aggregate(vectors)
            krum_rule = Krum(f=f)
            with timer_krum:
                krum_rule.aggregate(vectors)
            rows.append(
                (n, f, comb(n, n - f), timer_subset.total_seconds,
                 timer_krum.total_seconds)
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        format_table(
            ["n", "f", "C(n, n-f)", "subset rule s", "krum s"],
            [list(r) for r in rows],
            title="Lemma 4.1 contrast — exponential subset rule vs Krum",
        )
    )
    # Subset-rule time must blow up much faster than Krum time.
    subset_growth = rows[-1][3] / max(rows[0][3], 1e-9)
    krum_growth = rows[-1][4] / max(rows[0][4], 1e-9)
    assert subset_growth > 10 * krum_growth, (
        f"subset rule grew {subset_growth:.1f}x vs krum {krum_growth:.1f}x"
    )


def bench_krum_single_call_microbenchmark(benchmark):
    """Micro-benchmark of one Krum aggregation at figure scale
    (n=30 workers, d=100k — a realistic deep-model gradient)."""
    rng = np.random.default_rng(1)
    vectors = rng.standard_normal((30, 100_000))
    rule = Krum(f=7)
    result = benchmark(lambda: rule.aggregate(vectors))
    assert result.shape == (100_000,)
