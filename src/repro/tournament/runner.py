"""The attack × defense tournament.

The reproduction's robustness claims were, until now, demonstrated on
hand-picked attack/defense pairings.  The tournament closes the gap:
:class:`TournamentRunner` expands **every** registered attack against
**every** registered defense over a slate of workloads, seeds and
asynchrony cells, executes the cells through the scenario-grid engine,
and condenses each pairing into one :class:`LeagueRow` — final error,
error ratio against the defense's attack-free baseline,
rounds-to-threshold, and a breakdown flag.  The resulting league table
is the repo's robustness scoreboard (``BENCH_tournament.json``): a new
attack must face every defense, a new defense every attack, and a
regression in either direction shows up as a moved row, not a missing
experiment.

Failure isolation: each (attack, defense) pairing runs in its own grid,
so a pairing that *legitimately* explodes — e.g. the non-finite attack
destroying a rule that propagates NaN — is recorded as a breakdown row
(with the library's exception taxonomy name) instead of aborting the
tournament.  No pairing is silently omitted.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.attacks.registry import available_attacks
from repro.core.registry import available_aggregators
from repro.distributed.metrics import TrainingHistory
from repro.engine.grid import ScenarioGrid
from repro.engine.runner import run_grid
from repro.exceptions import ConfigurationError, ReproError

__all__ = [
    "AsyncCell",
    "LeagueRow",
    "TournamentResult",
    "TournamentRunner",
    "default_attack_slate",
    "default_defense_slate",
]


@dataclass(frozen=True)
class AsyncCell:
    """One asynchrony condition of the slate: the server's staleness
    bound plus a delay schedule (``None`` schedule = synchronous)."""

    max_staleness: int = 0
    delay_schedule: str | None = None
    delay_kwargs: Mapping = field(default_factory=dict)

    def __hash__(self) -> int:
        # The generated hash would raise on the kwargs dict; hash a
        # frozen encoding instead (repr-encoded, collision-safe enough
        # for the slate-key use).  Equality stays field-wise.
        return hash(
            (
                self.max_staleness,
                self.delay_schedule,
                tuple(
                    sorted(
                        (k, repr(v)) for k, v in self.delay_kwargs.items()
                    )
                ),
            )
        )

    @property
    def label(self) -> str:
        if self.max_staleness == 0 and self.delay_schedule is None:
            return "sync"
        schedule = self.delay_schedule or "no-delay"
        return f"stale<={self.max_staleness}|{schedule}"


def default_defense_slate(
    num_workers: int, num_byzantine: int
) -> tuple[tuple[str, dict], ...]:
    """Every registered aggregation rule, with the minimal kwargs each
    needs beyond the grid's automatic ``f`` injection.

    ``multi-krum`` selects the paper's ``m = n − f − 2`` proposals;
    ``weighted-average`` gets uniform weights (it has no f-free
    default).  Everything else rides the registry defaults.
    """
    n, f = int(num_workers), int(num_byzantine)
    extras: dict[str, dict] = {
        "multi-krum": {"m": max(1, n - f - 2)},
        "weighted-average": {"weights": [1.0] * n},
    }
    return tuple(
        (name, extras.get(name, {})) for name in available_aggregators()
    )


def default_attack_slate(num_byzantine: int) -> tuple[tuple[str, dict], ...]:
    """Every registered attack strategy, default-configured.

    ``composite`` — the one registered attack without a self-contained
    default — splits the Byzantine slots between a crash and a sign
    flip; with a single slot it degenerates to the crash alone.
    """
    f = int(num_byzantine)
    if f < 1:
        raise ConfigurationError(
            f"the attack slate needs num_byzantine >= 1, got {f}"
        )
    if f > 1:
        parts = (("crash", {}, 1), ("sign-flip", {}, f - 1))
    else:
        parts = (("crash", {}, 1),)
    extras: dict[str, dict] = {"composite": {"parts": parts}}
    return tuple((name, extras.get(name, {})) for name in available_attacks())


@dataclass(frozen=True)
class LeagueRow:
    """One (attack, defense) pairing condensed over the slate.

    ``final_error`` is the mean terminal error over the pairing's
    finite cells; ``baseline_error`` the same defense's attack-free
    mean; ``error_ratio`` their quotient.  ``rounds_to_threshold`` is
    the mean first evaluated round at which a cell's error dropped to
    ``threshold_factor ×`` its matched baseline (over the cells that
    got there; ``reached_fraction`` says how many did).  ``breakdown``
    marks pairings that diverged (non-finite or ``breakdown_factor ×``
    past baseline) or raised, with the reason recorded.
    """

    attack: str
    defense: str
    cells: int
    final_error: float | None
    baseline_error: float | None
    error_ratio: float | None
    rounds_to_threshold: float | None
    reached_fraction: float
    breakdown: bool
    breakdown_reason: str | None = None

    def to_payload(self) -> dict:
        return {
            "attack": self.attack,
            "defense": self.defense,
            "cells": self.cells,
            "final_error": self.final_error,
            "baseline_error": self.baseline_error,
            "error_ratio": self.error_ratio,
            "rounds_to_threshold": self.rounds_to_threshold,
            "reached_fraction": self.reached_fraction,
            "breakdown": self.breakdown,
            "breakdown_reason": self.breakdown_reason,
        }


@dataclass(frozen=True)
class TournamentResult:
    """The full league: one row per (attack, defense) pairing."""

    rows: tuple[LeagueRow, ...]
    attacks: tuple[str, ...]
    defenses: tuple[str, ...]
    num_workers: int
    num_byzantine: int
    num_rounds: int
    seeds: tuple[int, ...]
    mode: str

    def row(self, attack: str, defense: str) -> LeagueRow:
        for row in self.rows:
            if row.attack == attack and row.defense == defense:
                return row
        raise KeyError(f"no league row for ({attack!r}, {defense!r})")

    def covers_product(self) -> bool:
        """Whether every (attack, defense) pairing has exactly one row."""
        pairs = {(row.attack, row.defense) for row in self.rows}
        expected = {
            (a, d) for a in self.attacks for d in self.defenses
        }
        return pairs == expected and len(self.rows) == len(expected)

    def to_payload(self) -> dict:
        """JSON-ready summary.  Deterministic for a fixed configuration:
        no wall times or environment facts, so a same-seed rerun
        reproduces the payload byte for byte."""
        return {
            "tournament": {
                "num_workers": self.num_workers,
                "num_byzantine": self.num_byzantine,
                "num_rounds": self.num_rounds,
                "seeds": list(self.seeds),
                "mode": self.mode,
                "attacks": list(self.attacks),
                "defenses": list(self.defenses),
            },
            "league": [row.to_payload() for row in self.rows],
        }


def _finite_or_none(value: float) -> float | None:
    """JSON has no Inf/NaN; non-finite errors report as ``None`` (the
    breakdown flag carries the signal)."""
    return float(value) if math.isfinite(value) else None


def _error_series(
    history: TrainingHistory,
) -> tuple[list[int], list[float]]:
    """The evaluated (round, error) points of one cell's history.

    Error prefers the workload's distance-to-optimum extra (the analytic
    workloads expose it), then the loss — the same precedence the
    reproduction benches use.
    """
    rounds: list[int] = []
    values: list[float] = []
    for record in history.records:
        if record.extras and "dist_to_opt" in record.extras:
            value = record.extras["dist_to_opt"]
        elif record.loss is not None:
            value = record.loss
        else:
            continue
        rounds.append(int(record.round_index))
        values.append(float(value))
    if not values:
        raise ConfigurationError(
            "tournament workloads must evaluate a loss or dist_to_opt "
            "metric; got a history with neither"
        )
    return rounds, values


class TournamentRunner:
    """Run the attack × defense league over a declarative slate.

    Parameters
    ----------
    attacks / defenses:
        ``(registry_name, kwargs)`` pairs; default to every registered
        attack and every registered rule (see
        :func:`default_attack_slate` / :func:`default_defense_slate`).
    seeds, workloads, async_cells:
        The slate each pairing is measured over: every combination of
        seed × workload × asynchrony condition contributes one cell.
    num_workers / num_byzantine:
        Cluster shape shared by all cells.  The defaults (15, 3) satisfy
        every registered rule's tolerance precondition, including
        Bulyan's ``n ≥ 4f + 3``.
    num_rounds, eval_every, learning_rate, lr_timescale:
        Per-cell training knobs, threaded to the grid.
    mode:
        Grid execution mode (``"batched"`` default, ``"loop"``).
    threshold_factor:
        A cell "reaches threshold" at the first evaluated round with
        error ``<= threshold_factor × `` its matched baseline's final
        error.
    breakdown_factor:
        A pairing breaks down when its mean error exceeds
        ``breakdown_factor ×`` baseline (or goes non-finite/raises).
    """

    def __init__(
        self,
        *,
        attacks: Sequence[tuple[str, Mapping]] | None = None,
        defenses: Sequence[tuple[str, Mapping]] | None = None,
        seeds: Sequence[int] = (0,),
        workloads: Sequence[tuple[str, Mapping]] = (
            ("quadratic", {"dimension": 20, "sigma": 0.5}),
        ),
        async_cells: Sequence[AsyncCell] = (
            AsyncCell(),
            AsyncCell(max_staleness=3, delay_schedule="periodic",
                      delay_kwargs={"tau": 3, "period": 2}),
        ),
        num_workers: int = 15,
        num_byzantine: int = 3,
        num_rounds: int = 40,
        eval_every: int = 5,
        learning_rate: float = 0.1,
        lr_timescale: float | None = 100.0,
        mode: str = "batched",
        threshold_factor: float = 2.0,
        breakdown_factor: float = 25.0,
    ):
        if num_byzantine < 1:
            raise ConfigurationError(
                f"the tournament needs num_byzantine >= 1, got {num_byzantine}"
            )
        if num_byzantine >= num_workers:
            raise ConfigurationError(
                f"need f < n, got f={num_byzantine}, n={num_workers}"
            )
        if threshold_factor <= 0 or breakdown_factor <= 0:
            raise ConfigurationError(
                "threshold_factor and breakdown_factor must be positive"
            )
        self.num_workers = int(num_workers)
        self.num_byzantine = int(num_byzantine)
        self.attacks = tuple(
            (name, dict(kwargs))
            for name, kwargs in (
                default_attack_slate(self.num_byzantine)
                if attacks is None
                else attacks
            )
        )
        self.defenses = tuple(
            (name, dict(kwargs))
            for name, kwargs in (
                default_defense_slate(self.num_workers, self.num_byzantine)
                if defenses is None
                else defenses
            )
        )
        if not self.attacks or not self.defenses:
            raise ConfigurationError(
                "the tournament needs at least one attack and one defense"
            )
        for axis, label in ((self.attacks, "attack"), (self.defenses, "defense")):
            names = [name for name, _kwargs in axis]
            if len(set(names)) != len(names):
                raise ConfigurationError(
                    f"duplicate {label} names in the slate: {sorted(names)}"
                )
        self.seeds = tuple(int(s) for s in seeds)
        self.workloads = tuple(
            (name, dict(kwargs)) for name, kwargs in workloads
        )
        self.async_cells = tuple(async_cells)
        if not self.seeds or not self.workloads or not self.async_cells:
            raise ConfigurationError(
                "the slate needs at least one seed, workload and async cell"
            )
        self.num_rounds = int(num_rounds)
        self.eval_every = int(eval_every)
        self.learning_rate = float(learning_rate)
        self.lr_timescale = lr_timescale
        self.mode = mode
        self.threshold_factor = float(threshold_factor)
        self.breakdown_factor = float(breakdown_factor)

    # ------------------------------------------------------------------

    @property
    def cells_per_pair(self) -> int:
        """How many slate cells each (attack, defense) pairing runs:
        seeds × workloads × async cells."""
        return (
            len(self.seeds) * len(self.workloads) * len(self.async_cells)
        )

    def _grid(
        self,
        cell: AsyncCell,
        *,
        defense: tuple[str, dict],
        attack: tuple[str, dict] | None,
    ) -> ScenarioGrid:
        """One pairing's (or baseline's) sub-grid on one async cell."""
        return ScenarioGrid(
            seeds=self.seeds,
            attacks=() if attack is None else (attack,),
            aggregators=(defense,),
            f_values=(0,) if attack is None else (self.num_byzantine,),
            num_workers=self.num_workers,
            num_rounds=self.num_rounds,
            workloads=self.workloads,
            learning_rate=self.learning_rate,
            lr_timescale=self.lr_timescale,
            max_staleness=cell.max_staleness,
            delay_schedule=cell.delay_schedule,
            delay_kwargs=dict(cell.delay_kwargs),
        )

    def _cell_errors(
        self,
        cell: AsyncCell,
        *,
        defense: tuple[str, dict],
        attack: tuple[str, dict] | None,
    ) -> list[tuple[list[int], list[float]]]:
        """Run one sub-grid and extract each cell's error series, in the
        grid's deterministic cell order."""
        result = run_grid(
            self._grid(cell, defense=defense, attack=attack),
            mode=self.mode,
            eval_every=self.eval_every,
        )
        return [
            _error_series(result.histories[spec.label])
            for spec in result.specs
        ]

    def _baselines(
        self,
    ) -> dict[tuple[str, AsyncCell], list[float]]:
        """Attack-free final error per (defense, async cell), one entry
        per slate cell in grid order — the yardstick every pairing's
        cells are matched against positionally."""
        baselines: dict[tuple[str, AsyncCell], list[float]] = {}
        for defense in self.defenses:
            for cell in self.async_cells:
                series = self._cell_errors(cell, defense=defense, attack=None)
                baselines[(defense[0], cell)] = [
                    values[-1] for _rounds, values in series
                ]
        return baselines

    def _pair_row(
        self,
        attack: tuple[str, dict],
        defense: tuple[str, dict],
        baselines: dict[tuple[str, AsyncCell], list[float]],
    ) -> LeagueRow:
        finals: list[float] = []
        matched_baselines: list[float] = []
        reach_rounds: list[int] = []
        reached = 0
        total = 0
        try:
            for cell in self.async_cells:
                series = self._cell_errors(
                    cell, defense=defense, attack=attack
                )
                cell_baselines = baselines[(defense[0], cell)]
                for (rounds, values), baseline in zip(
                    series, cell_baselines
                ):
                    total += 1
                    finals.append(values[-1])
                    matched_baselines.append(baseline)
                    threshold = self.threshold_factor * baseline
                    hit = next(
                        (
                            r
                            for r, v in zip(rounds, values)
                            if v <= threshold
                        ),
                        None,
                    )
                    if hit is not None:
                        reached += 1
                        reach_rounds.append(hit)
        except ReproError as error:
            # A pairing that *raises* (e.g. non-finite proposals driving
            # an iterative rule past its convergence guard) is a
            # breakdown, not a hole in the league.
            return LeagueRow(
                attack=attack[0],
                defense=defense[0],
                cells=self.cells_per_pair,
                final_error=None,
                baseline_error=None,
                error_ratio=None,
                rounds_to_threshold=None,
                reached_fraction=0.0,
                breakdown=True,
                breakdown_reason=type(error).__name__,
            )
        mean_final = float(np.mean(finals))
        mean_baseline = float(np.mean(matched_baselines))
        ratio = (
            mean_final / mean_baseline
            if math.isfinite(mean_final) and mean_baseline > 0
            else float("inf")
        )
        breakdown = not math.isfinite(mean_final) or (
            math.isfinite(ratio) and ratio > self.breakdown_factor
        ) or not math.isfinite(ratio)
        reason = None
        if breakdown:
            reason = (
                "non-finite error"
                if not math.isfinite(mean_final)
                else f"error {ratio:.3g}x baseline"
            )
        return LeagueRow(
            attack=attack[0],
            defense=defense[0],
            cells=total,
            final_error=_finite_or_none(mean_final),
            baseline_error=_finite_or_none(mean_baseline),
            error_ratio=_finite_or_none(ratio),
            rounds_to_threshold=(
                float(np.mean(reach_rounds)) if reach_rounds else None
            ),
            reached_fraction=reached / total if total else 0.0,
            breakdown=bool(breakdown),
            breakdown_reason=reason,
        )

    def run(self) -> TournamentResult:
        """Execute the full league: every attack × every defense."""
        baselines = self._baselines()
        rows = [
            self._pair_row(attack, defense, baselines)
            for attack in self.attacks
            for defense in self.defenses
        ]
        return TournamentResult(
            rows=tuple(rows),
            attacks=tuple(name for name, _kwargs in self.attacks),
            defenses=tuple(name for name, _kwargs in self.defenses),
            num_workers=self.num_workers,
            num_byzantine=self.num_byzantine,
            num_rounds=self.num_rounds,
            seeds=self.seeds,
            mode=self.mode,
        )
