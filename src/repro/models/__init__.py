"""Learning problems used as the cost functions ``Q`` of the paper.

* :class:`QuadraticBowl` — an analytic strongly-convex cost with a known
  optimum, used for the convergence experiments of Proposition 4.3 where
  the gradient norm must be measurable exactly.
* :class:`LinearRegressionModel`, :class:`LogisticRegressionModel`,
  :class:`SoftmaxRegressionModel` — convex data-driven models.
* :class:`MLPClassifier` — the multi-layer perceptron matching the full
  paper's MNIST/spambase experiments (non-convex, d in the 10³–10⁵ range).
"""

from repro.models.base import ClassifierMixin, Model
from repro.models.linear import LinearRegressionModel
from repro.models.logistic import LogisticRegressionModel
from repro.models.mlp import MLPClassifier
from repro.models.quadratic import QuadraticBowl
from repro.models.softmax import SoftmaxRegressionModel

__all__ = [
    "Model",
    "ClassifierMixin",
    "QuadraticBowl",
    "LinearRegressionModel",
    "LogisticRegressionModel",
    "SoftmaxRegressionModel",
    "MLPClassifier",
]
