"""Experiment harness: declarative configs, builders and ASCII reporting.

The benches in ``benchmarks/`` and the scripts in ``examples/`` assemble
their workloads through this package so every figure of the paper is
regenerated from the same code path.
"""

from repro.experiments.builders import (
    build_dataset_simulation,
    build_quadratic_simulation,
    model_evaluator,
    quadratic_evaluator,
)
from repro.experiments.config import SGDExperimentConfig
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import compare_aggregators, run_experiment

__all__ = [
    "SGDExperimentConfig",
    "build_quadratic_simulation",
    "build_dataset_simulation",
    "quadratic_evaluator",
    "model_evaluator",
    "run_experiment",
    "compare_aggregators",
    "format_table",
    "format_series",
]
