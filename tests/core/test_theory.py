"""Tests for the resilience theory helpers (Prop. 4.2 constants)."""

import numpy as np
import pytest

from repro.core.theory import (
    check_krum_precondition,
    eta,
    krum_variance_bound,
    max_tolerable_f,
    resilience_angle,
)
from repro.exceptions import ByzantineToleranceError, ConfigurationError


class TestPrecondition:
    @pytest.mark.parametrize("n,f", [(5, 1), (7, 2), (23, 10), (4, 0)])
    def test_accepts_valid_pairs(self, n, f):
        check_krum_precondition(n, f)  # must not raise

    @pytest.mark.parametrize("n,f", [(4, 1), (6, 2), (3, 1), (2, 0)])
    def test_rejects_invalid_pairs(self, n, f):
        with pytest.raises(ByzantineToleranceError):
            check_krum_precondition(n, f)

    def test_rejects_negative_f(self):
        with pytest.raises(ConfigurationError):
            check_krum_precondition(10, -1)

    def test_error_reports_max_f(self):
        with pytest.raises(ByzantineToleranceError, match="max tolerable f is 3"):
            check_krum_precondition(9, 4)


class TestMaxTolerableF:
    @pytest.mark.parametrize("n,expected", [(3, 0), (5, 1), (10, 3), (100, 48)])
    def test_values(self, n, expected):
        assert max_tolerable_f(n) == expected

    def test_consistency_with_precondition(self):
        for n in range(3, 60):
            f = max_tolerable_f(n)
            check_krum_precondition(n, f)
            with pytest.raises(ByzantineToleranceError):
                check_krum_precondition(n, f + 1)

    def test_asymptotically_half(self):
        # "up to half the workers": f/n -> 1/2 as n grows.
        assert max_tolerable_f(10_001) / 10_001 == pytest.approx(0.5, abs=0.001)

    def test_rejects_tiny_n(self):
        with pytest.raises(ConfigurationError):
            max_tolerable_f(2)


class TestEta:
    def test_f_zero_value(self):
        # With f = 0 the formula reduces to sqrt(2 n).
        assert eta(10, 0) == pytest.approx(np.sqrt(20.0))

    def test_sqrt_n_regime_for_constant_f(self):
        # f = O(1): eta(n, f) / sqrt(n) should approach a constant.
        ratios = [eta(n, 2) / np.sqrt(n) for n in (100, 1000, 10000)]
        assert ratios[2] == pytest.approx(ratios[1], rel=0.05)

    def test_linear_regime_for_proportional_f(self):
        # f = n/4: eta(n, f) / n should approach a constant.
        ratios = [eta(n, n // 4) / n for n in (100, 1000, 10000)]
        assert ratios[2] == pytest.approx(ratios[1], rel=0.05)

    def test_monotone_in_f(self):
        values = [eta(25, f) for f in range(0, 11)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_rejects_precondition_violation(self):
        with pytest.raises(ByzantineToleranceError):
            eta(6, 2)


class TestResilienceAngle:
    def test_zero_sigma_gives_zero_angle(self):
        assert resilience_angle(11, 2, 10, 0.0, 1.0) == 0.0

    def test_angle_increases_with_sigma(self):
        angles = [resilience_angle(11, 2, 4, s, 10.0) for s in (0.01, 0.05, 0.1)]
        assert angles[0] < angles[1] < angles[2]

    def test_violation_raises(self):
        with pytest.raises(ByzantineToleranceError, match="variance condition"):
            resilience_angle(11, 2, 100, 1.0, 0.1)

    def test_angle_below_pi_half(self):
        alpha = resilience_angle(11, 2, 4, 0.01, 10.0)
        assert 0.0 <= alpha < np.pi / 2

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            resilience_angle(11, 2, 0, 0.1, 1.0)
        with pytest.raises(ConfigurationError):
            resilience_angle(11, 2, 5, -0.1, 1.0)
        with pytest.raises(ConfigurationError):
            resilience_angle(11, 2, 5, 0.1, 0.0)


class TestVarianceBound:
    def test_formula(self):
        assert krum_variance_bound(11, 2, 9, 0.5) == pytest.approx(
            eta(11, 2) * 3.0 * 0.5
        )

    def test_zero_sigma(self):
        assert krum_variance_bound(11, 2, 9, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            krum_variance_bound(11, 2, 0, 0.5)
