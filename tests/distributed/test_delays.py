"""Tests for the delay-schedule registry and built-in schedules."""

import numpy as np
import pytest

from repro.distributed.delays import (
    ConstantDelay,
    DelaySchedule,
    PeriodicDelay,
    SeededRandomDelay,
    ZeroDelay,
    available_delay_schedules,
    delay_schedule_factory,
    make_delay_schedule,
    register_delay_schedule,
)
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_builtins_registered(self):
        names = available_delay_schedules()
        for expected in ("none", "constant", "periodic", "random"):
            assert expected in names

    def test_make_by_name(self):
        schedule = make_delay_schedule("constant", {"tau": 2})
        assert isinstance(schedule, ConstantDelay)
        assert schedule.tau == 2

    def test_none_passthrough(self):
        assert make_delay_schedule(None) is None

    def test_kwargs_without_name_rejected(self):
        with pytest.raises(ConfigurationError, match="without a"):
            make_delay_schedule(None, {"tau": 2})

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigurationError, match="available"):
            make_delay_schedule("no-such-schedule")
        with pytest.raises(ConfigurationError, match="available"):
            delay_schedule_factory("no-such-schedule")

    def test_bad_kwargs_name_schedule_and_params(self):
        with pytest.raises(
            ConfigurationError, match="delay schedule 'constant'"
        ):
            make_delay_schedule("constant", {"nope": 1})

    def test_register_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            register_delay_schedule("", ZeroDelay)

    def test_register_custom(self):
        class EveryOther(DelaySchedule):
            name = "every-other"

            def staleness(self, worker_id, round_index):
                return worker_id % 2

        register_delay_schedule("every-other-test", EveryOther)
        try:
            schedule = make_delay_schedule("every-other-test")
            assert schedule.staleness(3, 0) == 1
        finally:
            from repro.distributed import delays

            delays._REGISTRY.pop("every-other-test", None)


class TestSchedules:
    def test_zero_delay(self):
        schedule = ZeroDelay()
        assert schedule.staleness(5, 17) == 0
        assert schedule.bind(np.random.default_rng(0)) is schedule

    def test_constant_uniform(self):
        schedule = ConstantDelay(tau=3)
        assert schedule.staleness(0, 0) == 3
        assert schedule.staleness(7, 99) == 3

    def test_constant_straggler_subset(self):
        schedule = ConstantDelay(tau=2, workers=[1, 4])
        assert schedule.staleness(1, 10) == 2
        assert schedule.staleness(4, 10) == 2
        assert schedule.staleness(0, 10) == 0

    def test_constant_validation(self):
        with pytest.raises(ConfigurationError, match="tau"):
            ConstantDelay(tau=-1)
        with pytest.raises(ConfigurationError, match="worker ids"):
            ConstantDelay(tau=1, workers=[-2])

    def test_periodic_rotates_through_workers(self):
        schedule = PeriodicDelay(tau=2, period=4, stagger=1)
        # Worker i is stale on rounds where (t + i) % 4 == 0.
        assert schedule.staleness(0, 0) == 2
        assert schedule.staleness(0, 1) == 0
        assert schedule.staleness(3, 1) == 2
        assert schedule.staleness(1, 3) == 2

    def test_periodic_cluster_hiccup(self):
        schedule = PeriodicDelay(tau=1, period=3, stagger=0)
        for worker in range(5):
            assert schedule.staleness(worker, 3) == 1
            assert schedule.staleness(worker, 4) == 0

    def test_periodic_validation(self):
        with pytest.raises(ConfigurationError, match="period"):
            PeriodicDelay(tau=1, period=0)
        with pytest.raises(ConfigurationError, match="stagger"):
            PeriodicDelay(tau=1, stagger=-1)

    def test_random_requires_binding(self):
        schedule = SeededRandomDelay(max_delay=3)
        with pytest.raises(ConfigurationError, match="unbound"):
            schedule.staleness(0, 0)

    def test_random_is_pure_and_reproducible(self):
        bound_a = SeededRandomDelay(max_delay=4).bind(
            np.random.default_rng(7)
        )
        bound_b = SeededRandomDelay(max_delay=4).bind(
            np.random.default_rng(7)
        )
        grid_a = [
            bound_a.staleness(w, t) for w in range(6) for t in range(20)
        ]
        # Query in a different order: values must not depend on call
        # order (the loop and batched executors interleave differently).
        grid_b = [
            bound_b.staleness(w, t)
            for w, t in sorted(
                ((w, t) for w in range(6) for t in range(20)),
                key=lambda pair: (pair[1], -pair[0]),
            )
        ]
        lookup = {
            (w, t): bound_b.staleness(w, t)
            for w in range(6)
            for t in range(20)
        }
        assert grid_a == [
            lookup[(w, t)] for w in range(6) for t in range(20)
        ]
        assert all(0 <= tau <= 4 for tau in grid_a)
        assert any(tau > 0 for tau in grid_a)
        assert len(grid_b) == len(grid_a)

    def test_random_different_entropy_differs(self):
        a = SeededRandomDelay(max_delay=4).bind(np.random.default_rng(1))
        b = SeededRandomDelay(max_delay=4).bind(np.random.default_rng(2))
        draws_a = [a.staleness(w, t) for w in range(8) for t in range(16)]
        draws_b = [b.staleness(w, t) for w in range(8) for t in range(16)]
        assert draws_a != draws_b

    def test_random_prob_zero_never_stale(self):
        schedule = SeededRandomDelay(max_delay=5, prob=0.0).bind(
            np.random.default_rng(0)
        )
        assert all(
            schedule.staleness(w, t) == 0
            for w in range(4)
            for t in range(10)
        )

    def test_random_validation(self):
        with pytest.raises(ConfigurationError, match="max_delay"):
            SeededRandomDelay(max_delay=0)
        with pytest.raises(ConfigurationError, match="prob"):
            SeededRandomDelay(max_delay=2, prob=1.5)
