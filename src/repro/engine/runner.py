"""Materialize and execute scenario grids.

``run_grid(grid, mode="batched")`` expands a
:class:`~repro.engine.grid.ScenarioGrid` into simulations — each cell's
workload is resolved through the registry of
:mod:`repro.engine.workloads` — and executes them either

* ``mode="loop"`` — each cell through its own
  :class:`~repro.distributed.TrainingSimulation` round loop (the seed
  code's execution model), or
* ``mode="batched"`` — cells stacked into ``(B, n, d)`` tensors by
  :class:`~repro.engine.simulation.BatchedSimulation`, one batch per
  parameter dimension (so a grid mixing, say, the quadratic bowl with
  an MNIST MLP still batches — per workload dimension).

Both modes produce identical :class:`~repro.distributed.TrainingHistory`
objects (bit-for-bit — see ``tests/engine/test_differential.py``); the
batched mode is simply faster, which ``BENCH_engine.json`` and
``BENCH_engine_workloads.json`` record.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.attacks.registry import make_attack
from repro.backend import ArrayBackend, resolve_backend
from repro.core.aggregator import Aggregator
from repro.core.registry import aggregator_factory, make_aggregator
from repro.distributed.delays import make_delay_schedule
from repro.distributed.metrics import TrainingHistory
from repro.distributed.simulator import TrainingSimulation
from repro.engine.grid import ScenarioGrid, ScenarioSpec, _accepts_f
from repro.engine.simulation import BatchedSimulation
from repro.engine.workloads import Workload, make_workload, workload_key
from repro.exceptions import ConfigurationError
from repro.servers.registry import make_server_attack
from repro.topology.gossip import GossipSimulation
from repro.topology.registry import make_topology

__all__ = [
    "GridResult",
    "build_scenario_simulation",
    "build_gossip_simulation",
    "run_grid",
]


@dataclass(frozen=True)
class GridResult:
    """Outcome of one grid execution.

    ``histories`` and ``final_params`` are keyed by each cell's
    :attr:`~repro.engine.grid.ScenarioSpec.label`; ``wall_time`` is the
    execution time of the round loops only (materialization excluded),
    which is what the engine benchmark compares across modes.
    ``native_fraction`` is the fraction of cells aggregated by vectorized
    kernels (``None`` in loop mode, where the question does not arise) —
    the engine benchmark records it so a rule silently regressing to the
    per-scenario fallback shows up in ``BENCH_engine.json``.
    ``backend`` reports the resolved array backend the aggregation
    kernels computed through (e.g. ``"numpy[float64]"``,
    ``"torch[float32,cuda:0]"``); loop mode always executes the numpy
    per-scenario rules, so it reports the default.
    """

    mode: str
    specs: tuple[ScenarioSpec, ...]
    histories: dict[str, TrainingHistory]
    final_params: dict[str, np.ndarray]
    wall_time: float
    native_fraction: float | None = None
    backend: str = "numpy[float64]"

    def __len__(self) -> int:
        return len(self.specs)

    def history(self, label: str) -> TrainingHistory:
        return self.histories[label]


def build_scenario_simulation(
    spec: ScenarioSpec, *, workload: Workload | None = None
) -> TrainingSimulation:
    """Build one cell's simulation on its workload.

    ``workload`` lets callers share one workload object across cells
    (datasets and models are materialized once per workload instance);
    when omitted, the spec's workload is resolved through the registry.
    """
    if workload is None:
        workload = make_workload(spec.workload, spec.workload_kwargs)
    aggregator = make_aggregator(spec.aggregator, **spec.aggregator_kwargs)
    attack = make_attack(spec.attack, spec.attack_kwargs)
    delay_schedule = make_delay_schedule(spec.delay_schedule, spec.delay_kwargs)
    return workload.build(
        aggregator=aggregator,
        num_workers=spec.num_workers,
        num_byzantine=spec.num_byzantine,
        attack=attack,
        learning_rate=spec.learning_rate,
        lr_timescale=spec.lr_timescale,
        byzantine_slots=spec.byzantine_slots,
        max_staleness=spec.max_staleness,
        delay_schedule=delay_schedule,
        num_servers=spec.num_servers,
        byzantine_servers=spec.byzantine_servers,
        num_shards=spec.num_shards,
        server_attack=make_server_attack(
            spec.server_attack, spec.server_attack_kwargs
        ),
        halt_on_nonfinite=spec.halt_on_nonfinite,
        seed=spec.seed,
    )


def _gossip_rule_builder(spec: ScenarioSpec):
    """Per-neighborhood rule factory for a gossip cell.

    When the cell's aggregator factory takes an ``f`` parameter the
    returned closure rebuilds the rule at each node's *local* Byzantine
    bound — a Krum node surrounded by one adversary defends against one,
    not against the global ``f``.  F-free rules return ``None`` and the
    engine copies the fixed rule per node instead.
    """
    if not _accepts_f(aggregator_factory(spec.aggregator)):
        return None

    def build(f_local: int) -> Aggregator:
        kwargs = dict(spec.aggregator_kwargs)
        kwargs["f"] = int(f_local)
        return make_aggregator(spec.aggregator, **kwargs)

    return build


def build_gossip_simulation(
    spec: ScenarioSpec, *, workload: Workload | None = None
) -> GossipSimulation:
    """Build one gossip cell's simulation on its workload.

    The workload builds a degenerate server-path template (same
    estimators, cast, schedule, initial parameters and seed), and the
    gossip engine takes over from it — so a gossip cell differs from its
    server-path sibling *only* in the communication structure.  The
    cell's delay schedule, if any, becomes the per-edge delay.
    """
    if not spec.is_gossip:
        raise ConfigurationError(
            f"spec {spec.label!r} is a complete-graph cell; it runs on "
            f"the server path via build_scenario_simulation"
        )
    if workload is None:
        workload = make_workload(spec.workload, spec.workload_kwargs)
    aggregator = make_aggregator(spec.aggregator, **spec.aggregator_kwargs)
    attack = make_attack(spec.attack, spec.attack_kwargs)
    template = workload.build(
        aggregator=aggregator,
        num_workers=spec.num_workers,
        num_byzantine=spec.num_byzantine,
        attack=attack,
        learning_rate=spec.learning_rate,
        lr_timescale=spec.lr_timescale,
        byzantine_slots=spec.byzantine_slots,
        max_staleness=0,
        delay_schedule=None,
        num_servers=1,
        byzantine_servers=0,
        num_shards=1,
        server_attack=None,
        halt_on_nonfinite=spec.halt_on_nonfinite,
        seed=spec.seed,
    )
    return GossipSimulation.from_template(
        template,
        topology=make_topology(spec.topology, spec.topology_kwargs),
        aggregator_builder=_gossip_rule_builder(spec),
        edge_delay=make_delay_schedule(spec.delay_schedule, spec.delay_kwargs),
        seed=spec.seed,
    )


def run_grid(
    grid: ScenarioGrid,
    *,
    mode: str = "batched",
    eval_every: int = 10,
    chunk_size: int | None = None,
    backend: ArrayBackend | str | None = None,
) -> GridResult:
    """Expand and execute every cell of ``grid``.

    ``chunk_size`` (batched mode only) caps the distance-kernel batch
    chunks; see
    :func:`~repro.utils.linalg.batched_pairwise_sq_distances`.

    ``backend`` (batched mode only) selects the array backend the
    native aggregation kernels compute through — a registered name
    ("numpy", "torch"), a configured
    :class:`~repro.backend.ArrayBackend`, or ``None`` for the default
    numpy backend.  The default keeps the bit-for-bit loop/batched
    differential guarantee; non-default backends are parity-tested
    drop-ins (see ``tests/backend/``).  Loop mode always runs the numpy
    per-scenario rules, so combining it with an explicit backend is a
    configuration error rather than a silent ignore.
    """
    if mode not in ("batched", "loop"):
        raise ConfigurationError(
            f"mode must be 'batched' or 'loop', got {mode!r}"
        )
    if mode == "loop" and backend is not None:
        raise ConfigurationError(
            "backend selection applies to mode='batched' only; "
            "mode='loop' always executes the per-scenario numpy rules"
        )
    resolved_backend = resolve_backend(backend)
    specs = grid.scenarios()
    labels = [spec.label for spec in specs]
    if len(set(labels)) != len(labels):
        raise ConfigurationError(
            "grid produced duplicate cell labels; make workload/aggregator/"
            "attack specs distinguishable"
        )

    # One workload object per distinct (name, kwargs) spec: datasets and
    # models materialize once and are shared by every cell that names
    # them — in both execution modes, so the trajectories stay identical.
    workloads: dict[tuple, Workload] = {}

    def cell_workload(spec: ScenarioSpec) -> Workload:
        key = workload_key(spec.workload, spec.workload_kwargs)
        if key not in workloads:
            workloads[key] = make_workload(spec.workload, spec.workload_kwargs)
        return workloads[key]

    native_fraction = None
    if mode == "loop":
        # Cells run one at a time, so materialize them one at a time —
        # a dataset-backed grid then holds one cell's shard copies at
        # once instead of all cells'.  Only the round loops are timed,
        # matching the batched branch's wall_time semantics.
        histories = []
        finals = []
        wall_time = 0.0
        for spec in specs:
            if spec.is_gossip:
                sim: TrainingSimulation | GossipSimulation = (
                    build_gossip_simulation(spec, workload=cell_workload(spec))
                )
            else:
                sim = build_scenario_simulation(
                    spec, workload=cell_workload(spec)
                )
            start = perf_counter()
            histories.append(sim.run(grid.num_rounds, eval_every=eval_every))
            wall_time += perf_counter() - start
            finals.append(sim.params)
    else:
        # Gossip cells are event-driven and run per-scenario in both
        # modes (identical trajectories by construction); only the
        # server-path cells stack into (B, n, d) tensors.  Gossip cells
        # count toward the native_fraction denominator with weight 0,
        # so a grid silently routing everything through the event queue
        # shows up in the benchmark's native fraction.
        simulations = {
            index: build_scenario_simulation(
                spec, workload=cell_workload(spec)
            )
            for index, spec in enumerate(specs)
            if not spec.is_gossip
        }
        gossip_sims = {
            index: build_gossip_simulation(
                spec, workload=cell_workload(spec)
            )
            for index, spec in enumerate(specs)
            if spec.is_gossip
        }
        # Cells sharing a parameter dimension batch together (the
        # executor requires a rectangular (B, n, d) tensor); a
        # mixed-workload grid runs one batch per dimension group.
        groups: dict[int, list[int]] = {}
        for index in simulations:
            dim = cell_workload(specs[index]).dimension
            groups.setdefault(dim, []).append(index)
        histories = [None] * len(specs)  # type: ignore[list-item]
        finals = [None] * len(specs)  # type: ignore[list-item]
        native_cells = 0.0
        start = perf_counter()
        for indices in groups.values():
            batched = BatchedSimulation(
                [simulations[i] for i in indices],
                chunk_size=chunk_size,
                backend=resolved_backend,
            )
            native_cells += batched.native_fraction * len(indices)
            group_histories = batched.run(
                grid.num_rounds, eval_every=eval_every
            )
            group_params = batched.params
            for offset, index in enumerate(indices):
                histories[index] = group_histories[offset]
                finals[index] = group_params[offset]
        for index, gossip_sim in gossip_sims.items():
            histories[index] = gossip_sim.run(
                grid.num_rounds, eval_every=eval_every
            )
            finals[index] = gossip_sim.params
        native_fraction = native_cells / len(specs)
        wall_time = perf_counter() - start

    return GridResult(
        mode=mode,
        specs=tuple(specs),
        histories=dict(zip(labels, histories)),
        final_params=dict(zip(labels, finals)),
        wall_time=wall_time,
        native_fraction=native_fraction,
        backend=resolved_backend.describe(),
    )
