"""The round-based training simulation.

``TrainingSimulation`` wires together the paper's cast: one reliable
parameter server, ``n − f`` correct workers with private i.i.d. gradient
estimators, ``f`` Byzantine slots whose proposals an omniscient
:class:`~repro.attacks.Attack` crafts after seeing everything, and a
choice function ``F``.  ``run`` executes rounds and records metrics.

Rounds are synchronous by default.  The asynchronous mode —
``max_staleness > 0`` and/or a ``delay_schedule`` — relaxes the barrier:
a worker whose schedule says it lags ``τ`` at round ``t`` submits the
gradient it computed at ``x_{t−τ}``, tagged with round ``t − τ``, and
the server accepts it inside its bounded-staleness window.  Effective
staleness is ``min(τ, t, max_staleness)`` (a worker cannot predate
round 0, and the bounded-staleness protocol caps the lag — the
stale-synchronous-parallel contract), so ``max_staleness = 0`` is the
synchronous loop bit for bit, whatever schedule is configured.

The server side is a :class:`~repro.servers.ReplicatedServerGroup`:
``num_servers`` replicas of which up to ``byzantine_servers`` broadcast
corrupted parameters (crafted by a registered server attack), defended
by a worker-side coordinate median over the replica broadcasts, with
``num_shards`` splitting aggregation across coordinate slices.  The
degenerate tier ``num_servers=1, byzantine_servers=0, num_shards=1`` is
the paper's single reliable server, bit for bit.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.core.aggregator import Aggregator
from repro.distributed.delays import DelaySchedule, make_delay_schedule
from repro.distributed.messages import GradientMessage, ParameterBroadcast
from repro.distributed.metrics import RoundRecord, TrainingHistory
from repro.distributed.schedules import LearningRateSchedule
from repro.distributed.worker import ByzantineWorker, HonestWorker
from repro.exceptions import ConfigurationError, SimulationError
from repro.gradients.base import GradientEstimator
from repro.servers.attacks import ServerAttack
from repro.servers.replication import ReplicatedServerGroup
from repro.utils.linalg import stack_vectors
from repro.utils.rng import SeedLike, spawn_generators

__all__ = ["TrainingSimulation"]

Evaluator = Callable[[np.ndarray], dict[str, float]]


class TrainingSimulation:
    """Distributed SGD under Byzantine attack, as one reproducible object.

    Parameters
    ----------
    aggregator:
        The server's choice function F.
    schedule:
        Learning-rate schedule γ_t.
    honest_estimators:
        One gradient estimator per correct worker (n − f of them).
    initial_params:
        The ``x_0`` vector.
    num_byzantine:
        f; requires ``attack`` when positive.
    attack:
        Crafts the f Byzantine proposals each round.
    byzantine_slots:
        Which worker ids the adversary controls: "last" (default),
        "first", or an explicit sequence of f distinct ids in [0, n).
        Krum's tie-break depends on identifiers, so the placement is an
        ablation knob.
    true_gradient_fn:
        Optional exact-gradient oracle ∇Q(x) exposed to omniscient
        attacks and recorded as ``grad_norm`` each evaluation.
    evaluate:
        Optional callable mapping params to metric dict; recognized keys
        ``loss``/``accuracy`` land in the record fields, everything else
        goes into ``extras``.
    halt_on_nonfinite:
        Threaded to the :class:`~repro.distributed.server.ParameterServer`:
        when true, a non-finite parameter vector after an update raises
        ``SimulationError`` instead of silently training on NaN.
    max_staleness:
        The server's bounded-staleness window (0 = synchronous).
    delay_schedule:
        A :class:`~repro.distributed.delays.DelaySchedule` instance or
        registry name modeling per-worker lag; ``None`` keeps every
        worker fresh.  Randomized schedules are bound to a stream
        spawned from the root seed, so the delay pattern is reproducible
        from the cell's seed alone.
    num_servers:
        Parameter-server replica count (1 = the paper's single server).
    byzantine_servers:
        How many replicas broadcast corrupted parameters; requires
        ``server_attack`` when positive.
    num_shards:
        Coordinate shards for per-shard aggregation (1 = unsharded).
    server_attack:
        A :class:`~repro.servers.ServerAttack` instance or registry name
        crafting the corrupted replica broadcasts.
    seed:
        Root seed; worker streams, the attack stream, the delay stream
        and the server-attack stream are spawned from it independently.
    """

    def __init__(
        self,
        *,
        aggregator: Aggregator,
        schedule: LearningRateSchedule,
        honest_estimators: Sequence[GradientEstimator],
        initial_params: np.ndarray,
        num_byzantine: int = 0,
        attack: Attack | None = None,
        byzantine_slots: str | Sequence[int] = "last",
        true_gradient_fn: Callable[[np.ndarray], np.ndarray] | None = None,
        evaluate: Evaluator | None = None,
        halt_on_nonfinite: bool = False,
        max_staleness: int = 0,
        delay_schedule: DelaySchedule | str | None = None,
        num_servers: int = 1,
        byzantine_servers: int = 0,
        num_shards: int = 1,
        server_attack: ServerAttack | str | None = None,
        seed: SeedLike = 0,
    ):
        if num_byzantine < 0:
            raise ConfigurationError(f"num_byzantine must be >= 0, got {num_byzantine}")
        if num_byzantine > 0 and attack is None:
            raise ConfigurationError(
                f"num_byzantine={num_byzantine} requires an attack"
            )
        if num_byzantine == 0 and attack is not None:
            raise ConfigurationError("an attack was supplied but num_byzantine=0")
        if not honest_estimators:
            raise ConfigurationError("need at least one honest estimator")
        if int(max_staleness) < 0:
            raise ConfigurationError(
                f"max_staleness must be >= 0, got {max_staleness}"
            )

        self.num_honest = len(honest_estimators)
        self.num_byzantine = int(num_byzantine)
        self.num_workers = self.num_honest + self.num_byzantine
        aggregator.check_tolerance(self.num_workers)

        self.byzantine_ids = self._resolve_slots(byzantine_slots)
        honest_ids = [
            i for i in range(self.num_workers) if i not in set(self.byzantine_ids)
        ]

        # num_honest worker streams, the attack stream, one delay stream
        # used to bind randomized delay schedules, and the server-attack
        # stream.  Spawning is sequential and prefix-stable, so the
        # earlier streams are identical to the pre-tier (and pre-async)
        # layouts — existing trajectories are unchanged.
        streams = spawn_generators(seed, self.num_honest + 3)
        self.attack_rng = streams[self.num_honest]
        self.honest_workers = [
            HonestWorker(worker_id, estimator, rng)
            for worker_id, estimator, rng in zip(
                honest_ids, honest_estimators, streams[: self.num_honest]
            )
        ]
        self.byzantine_workers = [ByzantineWorker(i) for i in self.byzantine_ids]

        self.max_staleness = int(max_staleness)
        if isinstance(delay_schedule, str):
            delay_schedule = make_delay_schedule(delay_schedule)
        if delay_schedule is not None and not isinstance(
            delay_schedule, DelaySchedule
        ):
            raise ConfigurationError(
                f"delay_schedule must be a DelaySchedule, registry name or "
                f"None, got {type(delay_schedule).__name__}"
            )
        self.delay_schedule = (
            None
            if delay_schedule is None
            else delay_schedule.bind(streams[self.num_honest + 1])
        )

        self.server = ReplicatedServerGroup(
            initial_params,
            aggregator,
            schedule,
            num_servers=num_servers,
            byzantine_servers=byzantine_servers,
            num_shards=num_shards,
            server_attack=server_attack,
            rng=streams[self.num_honest + 2],
            halt_on_nonfinite=halt_on_nonfinite,
            max_staleness=self.max_staleness,
        )
        dims = {est.dimension for est in honest_estimators}
        if dims != {self.server.dimension}:
            raise ConfigurationError(
                f"estimator dimensions {sorted(dims)} do not match parameter "
                f"dimension {self.server.dimension}"
            )
        self.attack = attack
        if self.attack is not None:
            # Fresh run: discard any state a reused attack instance may
            # carry from a previous simulation (stragglers' queues,
            # probing scales, ...), so sequential reuse is deterministic.
            self.attack.reset()
        self.true_gradient_fn = true_gradient_fn
        self.evaluate = evaluate

    def _resolve_slots(self, spec: str | Sequence[int]) -> list[int]:
        n, f = self.num_workers, self.num_byzantine
        if isinstance(spec, str):
            if spec == "last":
                return list(range(n - f, n))
            if spec == "first":
                return list(range(f))
            raise ConfigurationError(
                f"byzantine_slots must be 'first', 'last' or explicit ids, "
                f"got {spec!r}"
            )
        slots = sorted(int(s) for s in spec)
        if len(slots) != f:
            raise ConfigurationError(
                f"expected {f} byzantine slots, got {len(slots)}"
            )
        if len(set(slots)) != len(slots) or any(s < 0 or s >= n for s in slots):
            raise ConfigurationError(
                f"byzantine slots must be distinct ids in [0, {n}), got {slots}"
            )
        return slots

    @property
    def params(self) -> np.ndarray:
        return self.server.params

    @property
    def is_async(self) -> bool:
        """Whether this simulation runs the staleness-aware round path
        (a delay schedule and/or a positive staleness window)."""
        return self.delay_schedule is not None or self.max_staleness > 0

    def effective_staleness(self, worker_id: int, round_index: int) -> int:
        """The lag actually applied to a worker's round-t proposal:
        the schedule's desired τ, clipped by the start of time and by
        the bounded-staleness window (SSP semantics — a worker cannot
        fall further behind than the server's bound)."""
        if self.delay_schedule is None:
            return 0
        tau = int(self.delay_schedule.staleness(worker_id, round_index))
        if tau < 0:
            raise SimulationError(
                f"delay schedule produced negative staleness {tau} for "
                f"worker {worker_id} at round {round_index}"
            )
        return min(tau, round_index, self.max_staleness)

    def run_round(self) -> RoundRecord:
        """Execute one round (synchronous or bounded-stale) and return
        its record."""
        broadcast = self.server.broadcast()
        t = broadcast.round_index
        rate = self.server.schedule(t)
        is_async = self.is_async

        honest_messages = []
        honest_staleness = []
        for worker in self.honest_workers:
            tau = self.effective_staleness(worker.worker_id, t)
            if tau == 0:
                honest_messages.append(worker.compute(broadcast))
            else:
                stale = ParameterBroadcast(
                    round_index=t - tau,
                    params=self.server.params_at(t - tau),
                )
                honest_messages.append(worker.compute(stale))
            honest_staleness.append(tau)
        messages = list(honest_messages)

        if self.num_byzantine > 0:
            assert self.attack is not None
            byzantine_staleness = [
                self.effective_staleness(worker.worker_id, t)
                for worker in self.byzantine_workers
            ]
            context = AttackContext(
                round_index=t,
                params=broadcast.params,
                honest_gradients=stack_vectors(
                    [m.vector for m in honest_messages]
                ),
                byzantine_indices=np.asarray(self.byzantine_ids, dtype=np.int64),
                honest_indices=np.asarray(
                    [w.worker_id for w in self.honest_workers], dtype=np.int64
                ),
                num_workers=self.num_workers,
                rng=self.attack_rng,
                aggregator=self.server.aggregator,
                true_gradient=(
                    self.true_gradient_fn(broadcast.params)
                    if self.true_gradient_fn is not None
                    else None
                ),
                honest_staleness=(
                    np.asarray(honest_staleness, dtype=np.int64)
                    if is_async
                    else None
                ),
                byzantine_staleness=(
                    np.asarray(byzantine_staleness, dtype=np.int64)
                    if is_async
                    else None
                ),
                honest_params=(
                    np.stack(
                        [
                            self.server.params_at(t - tau)
                            for tau in honest_staleness
                        ]
                    )
                    if is_async
                    else None
                ),
                selected_last_round=(
                    np.isin(
                        np.asarray(self.byzantine_ids, dtype=np.int64),
                        self.server.last_selected,
                    )
                    if self.server.last_selected is not None
                    else None
                ),
            )
            crafted = self.attack.craft(context)
            for worker, vector, tau in zip(
                self.byzantine_workers, crafted, byzantine_staleness
            ):
                messages.append(
                    GradientMessage(
                        round_index=t - tau,
                        worker_id=worker.worker_id,
                        vector=vector,
                    )
                )

        result = self.server.step(messages)
        byzantine_set = set(self.byzantine_ids)
        selected = tuple(int(i) for i in result.selected)
        return RoundRecord(
            round_index=t,
            learning_rate=rate,
            aggregate_norm=float(np.linalg.norm(result.vector)),
            params_norm=float(np.linalg.norm(self.server.params)),
            selected=selected,
            byzantine_selected=sum(1 for i in selected if i in byzantine_set),
        )

    def run(self, num_rounds: int, *, eval_every: int = 10) -> TrainingHistory:
        """Run ``num_rounds`` rounds, evaluating every ``eval_every``-th.

        The final round is always evaluated so ``history.final_loss`` is
        well defined when an evaluator is configured.
        """
        if num_rounds < 1:
            raise ConfigurationError(f"num_rounds must be >= 1, got {num_rounds}")
        if eval_every < 1:
            raise ConfigurationError(f"eval_every must be >= 1, got {eval_every}")
        history = TrainingHistory()
        for t in range(num_rounds):
            record = self.run_round()
            if t % eval_every == 0 or t == num_rounds - 1:
                record = self.evaluate_record(record)
            history.append(record)
        return history

    def evaluate_record(
        self, record: RoundRecord, params: np.ndarray | None = None
    ) -> RoundRecord:
        """Attach this simulation's evaluation metrics to a round record.

        ``params`` defaults to the server's current parameters; the
        batched engine executor passes the scenario's externally-tracked
        parameter vector instead (it advances parameters outside the
        server).
        """
        if params is None:
            params = self.server.params
        loss = accuracy = grad_norm = None
        extras: dict[str, float] = {}
        if self.evaluate is not None:
            metrics = dict(self.evaluate(params))
            loss = metrics.pop("loss", None)
            accuracy = metrics.pop("accuracy", None)
            grad_norm = metrics.pop("grad_norm", None)
            extras = {k: float(v) for k, v in metrics.items()}
        if grad_norm is None and self.true_gradient_fn is not None:
            grad_norm = float(np.linalg.norm(self.true_gradient_fn(params)))
        return RoundRecord(
            round_index=record.round_index,
            learning_rate=record.learning_rate,
            aggregate_norm=record.aggregate_norm,
            params_norm=record.params_norm,
            selected=record.selected,
            byzantine_selected=record.byzantine_selected,
            loss=None if loss is None else float(loss),
            accuracy=None if accuracy is None else float(accuracy),
            grad_norm=None if grad_norm is None else float(grad_norm),
            extras=extras,
        )
