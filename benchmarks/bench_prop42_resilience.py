"""E4 — Proposition 4.2: Krum is (α, f)-Byzantine resilient.

Monte-Carlo verification of Definition 3.2 against every attack in the
suite: condition (i) ⟨E Kr, g⟩ ≥ (1 − sin α)‖g‖², and condition (ii)
bounded moments, over a grid of (n, f, σ) inside the variance condition —
plus a demonstration that outside the condition (σ too large) the
guarantee is void.

The trial aggregations run through the engine's batched kernels
(``estimate_resilience(batched=True)``, the default): all trial stacks
go through one ``(trials, n, d)`` tensor call.  The kernels are
bit-for-bit identical to the per-trial loop, which the first bench
cross-checks explicitly.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.analysis.resilience import estimate_resilience
from repro.attacks.collusion import CollusionAttack
from repro.attacks.modern import InnerProductAttack, LittleIsEnoughAttack
from repro.attacks.omniscient import OmniscientAttack
from repro.attacks.random_noise import GaussianAttack
from repro.attacks.simple import SignFlipAttack
from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.core.theory import eta
from repro.experiments.reporting import format_table

TRIALS = 400
DIMENSION = 4
SIGMA = 0.02  # small: keeps eta * sqrt(d) * sigma < ||g|| = 1


def _attacks():
    return [
        GaussianAttack(sigma=200.0),
        OmniscientAttack(scale=10.0),
        SignFlipAttack(scale=5.0),
        CollusionAttack(decoy_distance=100.0),
        InnerProductAttack(epsilon=0.5),
        LittleIsEnoughAttack(z=1.0),
    ]


def bench_prop42_krum_resilient_under_all_attacks(benchmark):
    def run():
        reports = []
        for seed, attack in enumerate(_attacks()):
            reports.append(
                estimate_resilience(
                    Krum(f=2),
                    attack,
                    n=11,
                    f=2,
                    dimension=DIMENSION,
                    sigma=SIGMA,
                    trials=TRIALS,
                    seed=seed,
                )
            )
        return reports

    reports = run_once(benchmark, run)
    emit(
        format_table(
            ["attack", "<EF,g>", "bound (1-sinα)‖g‖²", "E‖F‖²/E‖G‖²", "byz-sel%", "ok"],
            [
                [
                    r.attack,
                    r.scalar_product,
                    r.threshold,
                    r.moment_ratios[2],
                    100 * r.byzantine_selection_rate,
                    r.satisfied,
                ]
                for r in reports
            ],
            title="Prop 4.2 — Krum (n=11, f=2, d=4, σ=0.02) vs all attacks",
        )
    )
    for report in reports:
        assert report.satisfied, f"Krum failed condition (i) under {report.attack}"
        assert report.moment_ratios[4] < 25.0, (
            f"condition (ii) moment blow-up under {report.attack}"
        )

    # Differential guard: the batched-kernel path must reproduce the
    # per-trial loop exactly (same report, float for float).
    loop_report = estimate_resilience(
        Krum(f=2),
        _attacks()[0],
        n=11,
        f=2,
        dimension=DIMENSION,
        sigma=SIGMA,
        trials=TRIALS,
        seed=0,
        batched=False,
    )
    assert loop_report == reports[0], "batched kernels diverged from loop path"


def bench_prop42_nf_grid(benchmark):
    """Sweep (n, f) pairs inside 2f + 2 < n: condition (i) holds everywhere.

    η(n, f) = O(n) when f = Θ(n), so the estimator noise σ admissible by
    the variance condition shrinks as f approaches the (n−3)/2 bound;
    the sweep uses a σ small enough for the *hardest* grid point
    (η(51, 24) ≈ 177 → σ < 1/(η·√d) ≈ 0.0028).
    """
    grid = [(7, 2), (11, 2), (11, 4), (25, 5), (25, 11), (51, 24)]
    grid_sigma = 0.002

    def run():
        return [
            estimate_resilience(
                Krum(f=f),
                OmniscientAttack(scale=10.0),
                n=n,
                f=f,
                dimension=DIMENSION,
                sigma=grid_sigma,
                trials=TRIALS,
                seed=n * 100 + f,
            )
            for n, f in grid
        ]

    reports = run_once(benchmark, run)
    emit(
        format_table(
            ["n", "f", "eta(n,f)", "sinα", "<EF,g>", "bound", "ok"],
            [
                [
                    r.n,
                    r.f,
                    eta(r.n, r.f),
                    r.sin_alpha,
                    r.scalar_product,
                    r.threshold,
                    r.satisfied,
                ]
                for r in reports
            ],
            title=f"Prop 4.2 — (n, f) grid under omniscient attack (σ={grid_sigma})",
        )
    )
    for report in reports:
        assert report.satisfied


def bench_prop42_variance_condition_boundary(benchmark):
    """Outside η(n,f)·√d·σ < ‖g‖ the guarantee is void — the checker
    reports the violation rather than a vacuous pass."""

    def run():
        inside = estimate_resilience(
            Krum(f=2), GaussianAttack(sigma=100.0),
            n=11, f=2, dimension=16, sigma=0.01, trials=200, seed=0,
        )
        outside = estimate_resilience(
            Krum(f=2), GaussianAttack(sigma=100.0),
            n=11, f=2, dimension=16, sigma=5.0, trials=200, seed=0,
        )
        return inside, outside

    inside, outside = run_once(benchmark, run)
    emit(
        format_table(
            ["σ", "condition holds", "sinα", "bound"],
            [
                [inside.sigma, inside.condition_holds, inside.sin_alpha, inside.threshold],
                [outside.sigma, outside.condition_holds, "≥1", outside.threshold],
            ],
            title="Prop 4.2 — variance condition boundary",
        )
    )
    assert inside.condition_holds and inside.satisfied
    assert not outside.condition_holds


def bench_prop42_average_contrast(benchmark):
    """The same measurement for averaging: condition (i) fails under the
    direction-reversing attacks (Lemma 3.1's consequence)."""

    def run():
        return [
            estimate_resilience(
                Average(), attack,
                n=11, f=2, dimension=DIMENSION, sigma=SIGMA,
                trials=TRIALS, seed=seed,
            )
            for seed, attack in enumerate(
                [OmniscientAttack(scale=10.0), SignFlipAttack(scale=20.0)]
            )
        ]

    reports = run_once(benchmark, run)
    emit(
        format_table(
            ["attack", "<EF,g>", "bound", "ok"],
            [[r.attack, r.scalar_product, r.threshold, r.satisfied] for r in reports],
            title="Prop 4.2 contrast — averaging fails condition (i)",
        )
    )
    for report in reports:
        assert not report.satisfied
        assert report.scalar_product < 0
