"""Trainable parameter container."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable tensor together with the gradient of the current loss.

    ``grad`` always has the same shape as ``value``; backward passes
    overwrite it (one backward per forward), and ``zero_grad`` resets it.
    """

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "param"):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.value.shape)

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.shape})"
