"""Registry-wide attack-contract sweep.

Every name in ``available_attacks()`` must honour the craft contract:
an ``(f, d)`` float64 output, no mutation of the context's arrays,
determinism under a fixed RNG (with ``reset()`` restoring stateful
attacks to a fresh run), and an empty block at ``f = 0`` for attacks
whose adversary model permits an empty coalition.  The sweep is
registry-driven, so a newly registered attack is contract-tested by
construction — forgetting to extend this file is impossible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.base import AttackContext
from repro.attacks.registry import available_attacks, make_attack

DIMENSION = 5
NUM_HONEST = 6

#: Per-name kwargs for attacks whose factory needs more than defaults.
DEFAULT_KWARGS: dict[str, dict] = {
    "composite": {"parts": (("crash", {}, 1), ("sign-flip", {}, 2))},
}

#: Minimum coalition size an attack's adversary model requires.
MIN_F: dict[str, int] = {
    "collusion": 2,  # needs a colluding majority of >= 2
    "composite": 3,  # the DEFAULT_KWARGS parts sum to exactly 3
}

#: Attacks whose f is pinned by construction (cannot craft other sizes).
FIXED_F = {"composite"}


def build_attack(name: str):
    return make_attack(name, DEFAULT_KWARGS.get(name, {}))


def make_context(
    *,
    num_byzantine: int,
    seed: int = 0,
    round_index: int = 0,
    with_async: bool = False,
    with_selection: bool = False,
    params_scale: float = 1.0,
) -> AttackContext:
    """A deterministic, fully-populated context (true gradient included,
    so gradient-steering attacks take their omniscient branch)."""
    rng = np.random.default_rng(seed + 7919 * round_index)
    n = NUM_HONEST + num_byzantine
    honest = 1.0 + 0.1 * rng.standard_normal((NUM_HONEST, DIMENSION))
    params = params_scale * (1.0 + rng.standard_normal(DIMENSION))
    byzantine = np.arange(NUM_HONEST, n, dtype=np.int64)
    context = AttackContext(
        round_index=round_index,
        params=params,
        honest_gradients=honest,
        byzantine_indices=byzantine,
        honest_indices=np.arange(NUM_HONEST, dtype=np.int64),
        num_workers=n,
        rng=np.random.default_rng(seed),
        true_gradient=params.copy(),
        honest_staleness=(
            np.arange(NUM_HONEST, dtype=np.int64) % 3 if with_async else None
        ),
        byzantine_staleness=(
            np.arange(num_byzantine, dtype=np.int64) % 3
            if with_async
            else None
        ),
        honest_params=(
            params + 0.01 * rng.standard_normal((NUM_HONEST, DIMENSION))
            if with_async
            else None
        ),
        selected_last_round=(
            (np.arange(num_byzantine) % 2 == 0)
            if with_selection and num_byzantine
            else None
        ),
    )
    context.validate()
    return context


def craft_rounds(attack, *, rounds: int = 3, seed: int = 0, **kwargs):
    """Craft over several evolving rounds (exercises stateful paths)."""
    return [
        attack.craft(
            make_context(
                num_byzantine=3, seed=seed, round_index=t, **kwargs
            )
        )
        for t in range(rounds)
    ]


@pytest.mark.parametrize("name", available_attacks())
class TestAttackContract:
    def test_output_shape_and_dtype(self, name):
        attack = build_attack(name)
        for out in craft_rounds(attack):
            assert out.shape == (3, DIMENSION)
            assert out.dtype == np.float64

    def test_async_context_output_shape(self, name):
        attack = build_attack(name)
        for out in craft_rounds(attack, with_async=True, with_selection=True):
            assert out.shape == (3, DIMENSION)
            assert out.dtype == np.float64

    def test_does_not_mutate_context(self, name):
        attack = build_attack(name)
        context = make_context(
            num_byzantine=3, with_async=True, with_selection=True
        )
        arrays = {
            field: np.asarray(getattr(context, field)).copy()
            for field in (
                "params",
                "honest_gradients",
                "byzantine_indices",
                "honest_indices",
                "true_gradient",
                "honest_staleness",
                "byzantine_staleness",
                "honest_params",
                "selected_last_round",
            )
        }
        attack.craft(context)
        for field, before in arrays.items():
            after = np.asarray(getattr(context, field))
            assert after.tobytes() == before.tobytes(), (
                f"{name} mutated context.{field}"
            )

    def test_deterministic_under_fixed_rng(self, name):
        """Two fresh instances on identical context streams agree
        bit for bit (attack RNG is the only sanctioned entropy)."""
        first = craft_rounds(build_attack(name), seed=11)
        second = craft_rounds(build_attack(name), seed=11)
        for a, b in zip(first, second):
            assert a.tobytes() == b.tobytes()

    def test_reset_restores_fresh_run(self, name):
        """One instance re-used sequentially (reset between runs, as the
        simulator does) matches a fresh instance."""
        attack = build_attack(name)
        craft_rounds(attack, seed=3)
        attack.reset()
        reused = craft_rounds(attack, seed=3)
        fresh = craft_rounds(build_attack(name), seed=3)
        for a, b in zip(reused, fresh):
            assert a.tobytes() == b.tobytes()

    def test_stateful_flag_is_honest(self, name):
        """Attacks declaring themselves stateless must craft identically
        without a reset; this catches hidden state behind
        ``stateful = False`` (which would silently break the batched
        engine's sharing assumptions)."""
        attack = build_attack(name)
        if attack.stateful:
            pytest.skip("stateful attacks are covered by the reset test")
        first = craft_rounds(attack, seed=5)
        second = craft_rounds(attack, seed=5)
        for a, b in zip(first, second):
            assert a.tobytes() == b.tobytes()

    def test_f0_returns_empty_block(self, name):
        if name in MIN_F and MIN_F[name] > 0:
            pytest.skip(f"{name} requires f >= {MIN_F[name]}")
        attack = build_attack(name)
        out = attack.craft(make_context(num_byzantine=0))
        assert out.shape == (0, DIMENSION)
        assert out.dtype == np.float64

    def test_min_f_boundary(self, name):
        """The smallest admissible coalition still crafts a full block."""
        if name in FIXED_F:
            pytest.skip(f"{name} pins f by construction")
        f = max(MIN_F.get(name, 1), 1)
        attack = build_attack(name)
        out = attack.craft(make_context(num_byzantine=f))
        assert out.shape == (f, DIMENSION)
