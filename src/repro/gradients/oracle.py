"""Analytical gradient oracle with Gaussian noise."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gradients.base import GradientEstimator

__all__ = ["GaussianOracleEstimator"]


class GaussianOracleEstimator(GradientEstimator):
    """``G(x, ξ) = ∇Q(x) + ξ`` with ``ξ ~ N(0, σ² I_d)``.

    This is the cleanest instantiation of the paper's estimator model:
    exactly unbiased, with ``E‖G − g‖² = d σ²``, so the resilience
    condition ``η(n,f)·√d·σ < ‖g‖`` of Proposition 4.2 can be dialed
    precisely.
    """

    def __init__(
        self,
        gradient_fn: Callable[[np.ndarray], np.ndarray],
        dimension: int,
        sigma: float,
    ):
        if dimension < 1:
            raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
        if sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
        self._gradient_fn = gradient_fn
        self._dimension = int(dimension)
        self.sigma = float(sigma)

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def gradient_fn(self) -> Callable[[np.ndarray], np.ndarray]:
        """The wrapped exact-gradient callable (shared across workers when
        several estimators are built from the same model)."""
        return self._gradient_fn

    def estimate(self, params: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        grad = np.asarray(self._gradient_fn(params), dtype=np.float64)
        return self.sample_about(grad, rng)

    def sample_about(
        self, expected: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one estimate given the precomputed expected gradient.

        Bit-for-bit equivalent to :meth:`estimate` when ``expected`` is
        ``gradient_fn(params)``; the batched engine uses this to evaluate
        the (deterministic) gradient once per scenario instead of once
        per worker.
        """
        if self.sigma == 0.0:
            return expected.copy()
        return expected + rng.normal(0.0, self.sigma, size=self._dimension)

    def expected(self, params: np.ndarray) -> np.ndarray:
        return np.asarray(self._gradient_fn(params), dtype=np.float64).copy()
