"""SARIF 2.1.0 emitter: schema shape, stable ids, round-trip, CLI smoke."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import repro
from repro.lint import lint_paths
from repro.lint.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    as_sarif,
    sarif_report,
)

BAD_MODULE = """
import numpy as np


def sample():
    return np.random.default_rng(3).normal()


def check(x):
    raise ValueError("nope")
"""


def report_for(tmp_path: Path):
    (tmp_path / "bad.py").write_text(textwrap.dedent(BAD_MODULE))
    return lint_paths([tmp_path / "bad.py"])


def test_schema_shape(tmp_path):
    document = sarif_report(report_for(tmp_path))
    assert document["version"] == SARIF_VERSION == "2.1.0"
    assert document["$schema"] == SARIF_SCHEMA_URI
    assert len(document["runs"]) == 1
    run = document["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert {"tool", "results"} <= set(run)
    for rule in driver["rules"]:
        assert set(rule) >= {"id", "shortDescription", "defaultConfiguration"}
        assert rule["defaultConfiguration"]["level"] == "error"
    for result in run["results"]:
        assert result["level"] == "error"
        assert result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"]
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1


def test_rule_ids_are_stable_and_indexed(tmp_path):
    report = report_for(tmp_path)
    document = sarif_report(report)
    driver = document["runs"][0]["tool"]["driver"]
    ids = [rule["id"] for rule in driver["rules"]]
    assert ids == list(report.rule_names)
    for result in document["runs"][0]["results"]:
        assert result["ruleId"] in ids
        assert ids[result["ruleIndex"]] == result["ruleId"]


def test_findings_round_trip(tmp_path):
    # Every native finding appears as exactly one SARIF result, in the
    # same order, carrying the same anchor.
    report = report_for(tmp_path)
    assert report.findings  # the fixture must actually trip rules
    results = json.loads(as_sarif(report))["runs"][0]["results"]
    assert len(results) == len(report.findings)
    for finding, result in zip(report.findings, results):
        assert result["ruleId"] == finding.rule
        assert result["message"]["text"] == finding.message
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == finding.line
        assert region["startColumn"] == finding.column


def test_artifact_uris_are_forward_slash(tmp_path):
    document = sarif_report(report_for(tmp_path))
    for result in document["runs"][0]["results"]:
        uri = result["locations"][0]["physicalLocation"]["artifactLocation"][
            "uri"
        ]
        assert "\\" not in uri
        assert not uri.startswith("/")


def test_cli_sarif_subprocess_smoke(tmp_path):
    (tmp_path / "bad.py").write_text(textwrap.dedent(BAD_MODULE))
    out_file = tmp_path / "lint.sarif"
    src_root = str(Path(repro.__file__).parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.lint",
            str(tmp_path / "bad.py"),
            "--format",
            "sarif",
            "--output",
            str(out_file),
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    assert completed.returncode == 1, completed.stderr
    stdout_doc = json.loads(completed.stdout)
    file_doc = json.loads(out_file.read_text())
    assert stdout_doc == file_doc
    assert file_doc["version"] == "2.1.0"
    assert file_doc["runs"][0]["results"]
