"""Tests for the momentum estimator wrapper."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.gradients.momentum import MomentumEstimator
from repro.gradients.oracle import GaussianOracleEstimator


def _oracle(sigma=0.0, dim=4):
    return GaussianOracleEstimator(lambda x: 2.0 * x, dim, sigma=sigma)


class TestMomentumEstimator:
    def test_bias_corrected_first_step_matches_gradient(self, rng):
        est = MomentumEstimator(_oracle(), beta=0.9)
        x = np.ones(4)
        np.testing.assert_allclose(est.estimate(x, rng), 2.0 * x)

    def test_uncorrected_first_step_is_shrunk(self, rng):
        est = MomentumEstimator(_oracle(), beta=0.9, correct_bias=False)
        x = np.ones(4)
        np.testing.assert_allclose(est.estimate(x, rng), 0.1 * 2.0 * x)

    def test_converges_to_stationary_gradient(self, rng):
        est = MomentumEstimator(_oracle(), beta=0.8)
        x = np.full(4, 3.0)
        for _ in range(100):
            out = est.estimate(x, rng)
        np.testing.assert_allclose(out, 2.0 * x, rtol=1e-6)

    def test_variance_reduction(self, rng):
        """The EMA's stationary variance is ~(1−β)/(1+β) of the base's."""
        base_sigma = 1.0
        beta = 0.9
        est = MomentumEstimator(_oracle(sigma=base_sigma, dim=50), beta=beta)
        x = np.zeros(50)
        for _ in range(100):  # reach stationarity
            est.estimate(x, rng)
        samples = np.stack([est.estimate(x, rng) for _ in range(500)])
        measured_var = samples.var(axis=0).mean()
        expected_var = base_sigma**2 * (1 - beta) / (1 + beta)
        assert measured_var == pytest.approx(expected_var, rel=0.3)

    def test_expected_is_base_mean(self, rng):
        est = MomentumEstimator(_oracle(sigma=1.0), beta=0.5)
        x = np.ones(4)
        np.testing.assert_allclose(est.expected(x), 2.0 * x)

    def test_reset(self, rng):
        est = MomentumEstimator(_oracle(), beta=0.9)
        x = np.ones(4)
        first = est.estimate(x, rng)
        est.estimate(x, rng)
        est.reset()
        np.testing.assert_allclose(est.estimate(x, rng), first)

    def test_dimension_passthrough(self):
        assert MomentumEstimator(_oracle(dim=7), beta=0.5).dimension == 7

    def test_rejects_bad_beta(self):
        with pytest.raises(ConfigurationError):
            MomentumEstimator(_oracle(), beta=1.0)
        with pytest.raises(ConfigurationError):
            MomentumEstimator(_oracle(), beta=-0.1)
