"""Degenerate-identity differential: gossip vs the server path.

The acceptance bar for the topology subsystem: on the ``complete``
graph with zero edge delay, every node hears every proposal fresh and
the local ``f`` equals the global ``f``, so the gossip engine must
reproduce the server-path trajectory **bit for bit** — not
approximately.  Pinned three ways:

* engine-level: ``GossipSimulation.from_template`` vs
  ``TrainingSimulation`` per round, across rules × attacks (including
  the stateful kardam and the feedback-driven probes);
* grid-level: a grid pinning ``topology="complete"`` must produce the
  same labels, histories and final parameters as the identical grid
  with no topology axis at all, in **both** executors;
* executor-level: gossip cells themselves run loop == batched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.registry import make_attack
from repro.core.registry import make_aggregator
from repro.distributed.schedules import ConstantSchedule
from repro.distributed.simulator import TrainingSimulation
from repro.engine.grid import ScenarioGrid
from repro.engine.runner import run_grid
from repro.gradients.oracle import GaussianOracleEstimator
from repro.topology import GossipSimulation

DIMENSION = 6
NUM_WORKERS = 10
NUM_BYZANTINE = 2


def gradient_fn(x: np.ndarray) -> np.ndarray:
    return x


def server_simulation(aggregator, attack, seed=17) -> TrainingSimulation:
    return TrainingSimulation(
        aggregator=make_aggregator(**aggregator),
        schedule=ConstantSchedule(0.05),
        honest_estimators=[
            GaussianOracleEstimator(gradient_fn, DIMENSION, 0.5)
            for _ in range(NUM_WORKERS - NUM_BYZANTINE)
        ],
        initial_params=np.ones(DIMENSION),
        num_byzantine=NUM_BYZANTINE,
        attack=make_attack(attack, {}),
        true_gradient_fn=gradient_fn,
        seed=seed,
    )


def assert_records_identical(a, b, context=""):
    assert len(a) == len(b), context
    for ra, rb in zip(a, b):
        assert ra.round_index == rb.round_index, context
        assert ra.learning_rate == rb.learning_rate, context
        assert ra.aggregate_norm == rb.aggregate_norm, (context, ra.round_index)
        assert ra.params_norm == rb.params_norm, (context, ra.round_index)
        assert ra.selected == rb.selected, (context, ra.round_index)
        assert ra.byzantine_selected == rb.byzantine_selected, context
        assert ra.loss == rb.loss and ra.accuracy == rb.accuracy, context
        assert ra.grad_norm == rb.grad_norm, context


RULES = [
    {"name": "krum", "f": NUM_BYZANTINE},
    {"name": "average"},
    {"name": "coordinate-median"},
    {"name": "kardam", "f": NUM_BYZANTINE},
]
ATTACKS = ["gaussian", "omniscient", "sign-flip", "probe", "probe-bandit"]


class TestEngineIdentity:
    @pytest.mark.parametrize("aggregator", RULES, ids=lambda r: r["name"])
    @pytest.mark.parametrize("attack", ATTACKS)
    def test_complete_graph_matches_server_path_per_round(
        self, aggregator, attack
    ):
        reference = server_simulation(aggregator, attack)
        gossip = GossipSimulation.from_template(
            server_simulation(aggregator, attack), topology="complete",
            seed=17,
        )
        # Round-by-round, so a divergence pins the exact round.
        for _ in range(12):
            ref_history = reference.run(1, eval_every=1)
            gossip_history = gossip.run(1, eval_every=1)
            assert np.array_equal(reference.params, gossip.params)
            ra, rg = ref_history.records[0], gossip_history.records[0]
            assert ra.aggregate_norm == rg.aggregate_norm
            assert ra.params_norm == rg.params_norm
            assert ra.selected == rg.selected
            assert ra.byzantine_selected == rg.byzantine_selected

    def test_all_honest_nodes_track_the_server_trajectory(self):
        aggregator = {"name": "krum", "f": NUM_BYZANTINE}
        reference = server_simulation(aggregator, "gaussian")
        gossip = GossipSimulation.from_template(
            server_simulation(aggregator, "gaussian"), topology="complete",
            seed=17,
        )
        reference.run(10)
        gossip.run(10)
        for node in gossip.honest_ids:
            assert np.array_equal(reference.params, gossip.node_params(node))

    def test_from_template_rejects_non_degenerate_templates(self):
        from repro.exceptions import ConfigurationError

        stepped = server_simulation({"name": "average"}, "gaussian")
        stepped.run(1)
        with pytest.raises(ConfigurationError, match="unstepped"):
            GossipSimulation.from_template(stepped, topology="complete")


def grid_kwargs(**overrides):
    kwargs = dict(
        seeds=(0, 1),
        num_workers=NUM_WORKERS,
        num_rounds=10,
        attacks=(("gaussian", {}), ("sign-flip", {})),
        aggregators=(("krum", {}), ("average", {})),
        f_values=(NUM_BYZANTINE,),
        dimension=DIMENSION,
    )
    kwargs.update(overrides)
    return kwargs


class TestGridIdentity:
    @pytest.mark.parametrize("mode", ["loop", "batched"])
    def test_pinned_complete_cell_equals_axis_free_grid(self, mode):
        """The degenerate cell is invisible: pinning topology="complete"
        changes neither labels nor trajectories, in either executor."""
        axis_free = run_grid(
            ScenarioGrid(**grid_kwargs()), mode=mode, eval_every=5
        )
        pinned = run_grid(
            ScenarioGrid(**grid_kwargs(topology="complete")),
            mode=mode,
            eval_every=5,
        )
        assert list(axis_free.histories) == list(pinned.histories)
        for label in axis_free.histories:
            assert_records_identical(
                axis_free.histories[label].records,
                pinned.histories[label].records,
                context=(mode, label),
            )
            assert np.array_equal(
                axis_free.final_params[label], pinned.final_params[label]
            ), (mode, label)

    def test_gossip_cells_loop_equals_batched(self):
        grid = ScenarioGrid(
            **grid_kwargs(
                topology_values=("complete", "ring", "erdos-renyi"),
                degree=6,
                edge_prob=0.7,
            )
        )
        loop = run_grid(grid, mode="loop", eval_every=5)
        batched = run_grid(grid, mode="batched", eval_every=5)
        assert list(loop.histories) == list(batched.histories)
        gossip_labels = [k for k in loop.histories if "topo=" in k]
        assert len(gossip_labels) == 2 * len(loop.histories) // 3
        for label in loop.histories:
            assert_records_identical(
                loop.histories[label].records,
                batched.histories[label].records,
                context=label,
            )
            records = loop.histories[label].records
            if "topo=" in label:
                evaluated = [r for r in records if r.extras]
                assert evaluated, label
                assert all(
                    "consensus_error" in r.extras
                    and "disagreement" in r.extras
                    for r in evaluated
                )
            assert np.array_equal(
                loop.final_params[label], batched.final_params[label]
            ), label

    def test_gossip_cells_with_edge_delay_loop_equals_batched(self):
        grid = ScenarioGrid(
            **grid_kwargs(
                seeds=(3,),
                topology="ring",
                degree=6,
                delay_schedule="random",
                delay_kwargs={"max_delay": 2},
            )
        )
        loop = run_grid(grid, mode="loop", eval_every=5)
        batched = run_grid(grid, mode="batched", eval_every=5)
        for label in loop.histories:
            assert_records_identical(
                loop.histories[label].records,
                batched.histories[label].records,
                context=label,
            )
