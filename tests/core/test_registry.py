"""Tests for the aggregator registry."""

import pytest

from repro.core.aggregator import Aggregator
from repro.core.registry import (
    available_aggregators,
    make_aggregator,
    register_aggregator,
)
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_builtin_rules_registered(self):
        names = available_aggregators()
        for expected in (
            "krum",
            "multi-krum",
            "average",
            "weighted-average",
            "closest-to-all",
            "minimal-diameter",
            "coordinate-median",
            "trimmed-mean",
            "geometric-median",
        ):
            assert expected in names

    def test_make_krum(self):
        rule = make_aggregator("krum", f=2)
        assert isinstance(rule, Aggregator)
        assert rule.f == 2

    def test_make_multikrum_with_kwargs(self):
        rule = make_aggregator("multi-krum", f=2, m=3)
        assert rule.m == 3

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="available"):
            make_aggregator("no-such-rule")

    def test_register_custom(self):
        class Custom(Aggregator):
            name = "custom"

            def aggregate_detailed(self, vectors):
                raise NotImplementedError

        register_aggregator("custom-test-rule", Custom)
        try:
            assert isinstance(make_aggregator("custom-test-rule"), Custom)
        finally:
            # Keep the global registry clean for other tests.
            from repro.core import registry

            registry._REGISTRY.pop("custom-test-rule", None)

    def test_register_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            register_aggregator("", lambda: None)
