"""Model interface: a parameterized cost over (inputs, targets) batches.

A ``Model`` is stateless with respect to parameters — every method takes
the flat ``(d,)`` parameter vector explicitly.  This matches the paper's
formulation where the parameter vector ``x_t`` lives at the server and is
broadcast each round, and makes the models trivially shareable across
simulated workers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Model", "ClassifierMixin"]


class Model(ABC):
    """A differentiable cost ``Q(params; batch)`` with exact gradients."""

    @property
    @abstractmethod
    def dimension(self) -> int:
        """Number of parameters d."""

    @abstractmethod
    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        """Draw an initial flat parameter vector."""

    @abstractmethod
    def loss(self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Average loss of ``params`` on the batch."""

    @abstractmethod
    def gradient(
        self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Flat ``(d,)`` gradient of :meth:`loss` with respect to ``params``."""

    def loss_and_gradient(
        self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Both loss and gradient; override when one pass computes both."""
        return (
            self.loss(params, inputs, targets),
            self.gradient(params, inputs, targets),
        )


class ClassifierMixin:
    """Adds label prediction and accuracy to classification models."""

    def predict(self, params: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Predicted integer labels for ``inputs``."""
        raise NotImplementedError

    def accuracy(
        self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray
    ) -> float:
        """Fraction of correctly classified samples."""
        predictions = self.predict(params, inputs)
        targets = np.asarray(targets).astype(np.int64)
        return float(np.mean(predictions == targets))

    def error_rate(
        self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray
    ) -> float:
        """Misclassification rate — the y-axis of the full paper's figures."""
        return 1.0 - self.accuracy(params, inputs, targets)
