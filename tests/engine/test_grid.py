"""Unit tests for the ScenarioGrid spec and the engine executors."""

import numpy as np
import pytest

from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.engine import (
    BatchedSimulation,
    ScenarioGrid,
    ScenarioSpec,
    build_scenario_simulation,
    run_grid,
)
from repro.exceptions import ConfigurationError
from repro.experiments.builders import build_quadratic_simulation
from repro.models.quadratic import QuadraticBowl


def small_grid(**overrides):
    defaults = dict(
        seeds=(0, 1),
        attacks=(("gaussian", {"sigma": 50.0}),),
        aggregators=(("krum", {}), ("average", {})),
        f_values=(0, 2),
        num_workers=9,
        dimension=5,
        sigma=0.3,
        num_rounds=6,
    )
    defaults.update(overrides)
    return ScenarioGrid(**defaults)


class TestScenarioGrid:
    def test_cartesian_expansion_and_len(self):
        grid = small_grid()
        cells = grid.scenarios()
        # 2 seeds × (2 rules × 1 attack at f=2  +  2 rules attack-free at f=0)
        assert len(cells) == 8
        assert len(grid) == len(cells)

    def test_f_zero_collapses_attack_axis(self):
        grid = small_grid(
            attacks=(
                ("gaussian", {"sigma": 50.0}),
                ("omniscient", {"scale": 2.0}),
            )
        )
        cells = grid.scenarios()
        f0 = [c for c in cells if c.num_byzantine == 0]
        assert all(c.attack is None for c in f0)
        # one attack-free cell per (seed, rule), not per attack
        assert len(f0) == 2 * 2

    def test_f_injected_only_where_accepted(self):
        cells = small_grid().scenarios()
        krum_cells = [c for c in cells if c.aggregator == "krum"]
        average_cells = [c for c in cells if c.aggregator == "average"]
        assert all(c.aggregator_kwargs.get("f") == c.num_byzantine for c in krum_cells)
        assert all("f" not in c.aggregator_kwargs for c in average_cells)

    def test_explicit_f_kwarg_wins(self):
        grid = small_grid(aggregators=(("krum", {"f": 1}),), f_values=(2,))
        cells = grid.scenarios()
        assert all(c.aggregator_kwargs["f"] == 1 for c in cells)

    def test_labels_unique(self):
        labels = [c.label for c in small_grid().scenarios()]
        assert len(set(labels)) == len(labels)

    def test_specs_are_hashable(self):
        cells = small_grid().scenarios()
        assert len(set(cells)) == len(cells)  # dedup via set must work

    def test_attack_parameter_sweep_labels_distinct(self):
        """Regression: sweeping the same attack at different strengths
        must produce distinct cell labels (attack kwargs are encoded)."""
        grid = small_grid(
            attacks=(
                ("gaussian", {"sigma": 1.0}),
                ("gaussian", {"sigma": 200.0}),
            ),
            f_values=(2,),
        )
        labels = [c.label for c in grid.scenarios()]
        assert len(set(labels)) == len(labels)
        result = run_grid(grid, mode="batched", eval_every=3)
        assert len(result.histories) == len(grid)

    def test_structural_character_kwargs_labels_distinct(self):
        """Regression: kwargs values containing the label's structural
        characters (',', '=', '|') used to be able to collide — e.g.
        {"a": "1,b=2"} and {"a": 1, "b": 2} both encoded as "a=1,b=2".
        The repr-based encoding keeps them distinct."""
        colliding_pairs = [
            ({"a": "1,b=2"}, {"a": 1, "b": 2}),
            ({"a": "x|f=3"}, {"a": "x", "f": 3}),
            ({"scale": "2"}, {"scale": 2}),
            ({"parts": (("crash", 2),)}, {"parts": "(('crash', 2),)"}),
        ]
        for kwargs_a, kwargs_b in colliding_pairs:
            spec_a = ScenarioSpec(
                seed=0, aggregator="average", attack="gaussian",
                attack_kwargs=kwargs_a, num_byzantine=2,
            )
            spec_b = ScenarioSpec(
                seed=0, aggregator="average", attack="gaussian",
                attack_kwargs=kwargs_b, num_byzantine=2,
            )
            assert spec_a.label != spec_b.label, (kwargs_a, kwargs_b)

    def test_workload_kwargs_labels_distinct(self):
        """Workload kwargs are encoded into the label too, so a grid can
        sweep one workload at several configurations."""
        specs = [
            ScenarioSpec(
                seed=0, aggregator="average",
                workload="logistic-spambase",
                workload_kwargs={"partition": partition},
            )
            for partition in ("iid", "dirichlet")
        ]
        assert specs[0].label != specs[1].label

    def test_validate_builds_each_distinct_rule_once(self, monkeypatch):
        """Regression: validate() used to build one aggregator per cell;
        it must build each distinct (rule, kwargs, n) combination once."""
        import repro.engine.grid as grid_module

        calls = []
        real = grid_module.make_aggregator

        def counting(name, **kwargs):
            calls.append((name, tuple(sorted(kwargs.items()))))
            return real(name, **kwargs)

        monkeypatch.setattr(grid_module, "make_aggregator", counting)
        grid = small_grid(seeds=tuple(range(10)))
        grid.validate()
        # 2 rules × 2 f values (krum resolves f per cell; average is
        # f-free so both f cells share one combination) = 2 + 1 distinct.
        assert len(calls) == len(set(calls)) == 3
        assert len(calls) < len(grid)

    def test_invalid_f_rejected(self):
        with pytest.raises(ConfigurationError, match="0 <= f < n"):
            small_grid(f_values=(9,))

    def test_positive_f_requires_attacks(self):
        with pytest.raises(ConfigurationError, match="no attacks"):
            small_grid(attacks=(), f_values=(2,))

    def test_validate_surfaces_preconditions(self):
        # f = 4 violates Krum's 2f + 2 < n for n = 9.
        grid = small_grid(f_values=(4,))
        with pytest.raises(Exception, match="n"):
            grid.validate()

    def test_build_scenario_simulation(self):
        spec = small_grid().scenarios()[0]
        sim = build_scenario_simulation(spec)
        assert sim.num_workers == spec.num_workers
        assert sim.server.dimension == spec.dimension


class TestRunGrid:
    def test_result_shape(self):
        grid = small_grid()
        result = run_grid(grid, mode="batched", eval_every=3)
        assert len(result) == len(grid)
        for label, history in result.histories.items():
            assert len(history) == grid.num_rounds
            assert result.final_params[label].shape == (grid.dimension,)
        assert result.wall_time > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            run_grid(small_grid(), mode="warp")


class TestBatchedSimulation:
    def _sims(self, count=3, n=9, d=5):
        bowl = QuadraticBowl(d)
        return [
            build_quadratic_simulation(
                bowl,
                aggregator=Krum(f=2) if i % 2 else Average(),
                num_workers=n,
                num_byzantine=0,
                sigma=0.2,
                seed=i,
            )
            for i in range(count)
        ]

    def test_histories_in_input_order(self):
        sims = self._sims()
        batched = BatchedSimulation(sims)
        histories = batched.run(4, eval_every=2)
        assert len(histories) == len(sims)
        # Scenario order must survive the internal group reordering:
        # seeds differ, so the final params must match per-seed solo runs.
        solo = [s.run(4, eval_every=2) for s in self._sims()]
        for batched_history, solo_history in zip(histories, solo):
            assert batched_history.records == solo_history.records

    def test_params_property_in_input_order(self):
        sims = self._sims()
        batched = BatchedSimulation(sims)
        batched.run(3, eval_every=2)
        params = batched.params
        for i, solo in enumerate(self._sims()):
            solo.run(3, eval_every=2)
            np.testing.assert_array_equal(params[i], solo.params)

    def test_native_fraction(self):
        batched = BatchedSimulation(self._sims())
        assert batched.native_fraction == 1.0

    def test_mismatched_shapes_rejected(self):
        bowl5, bowl7 = QuadraticBowl(5), QuadraticBowl(7)
        sims = [
            build_quadratic_simulation(
                bowl, aggregator=Average(), num_workers=9,
                num_byzantine=0, sigma=0.1, seed=0,
            )
            for bowl in (bowl5, bowl7)
        ]
        with pytest.raises(ConfigurationError, match="share d"):
            BatchedSimulation(sims)

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            BatchedSimulation([])

    def test_partially_run_simulation_rejected(self):
        """Regression: a warm sim would silently restart schedules and
        attack round counters at t = 0; the constructor must refuse it."""
        sims = self._sims(count=2)
        sims[0].run_round()
        with pytest.raises(ConfigurationError, match="freshly built"):
            BatchedSimulation(sims)

    def test_consumed_simulations_rejected_on_reuse(self):
        """Regression: a batched run consumes its sims' RNG streams, so
        feeding them to a second BatchedSimulation (or running them
        directly) must trip the freshness guard, not silently diverge."""
        sims = self._sims(count=2)
        BatchedSimulation(sims).run(3, eval_every=2)
        with pytest.raises(ConfigurationError, match="freshly built"):
            BatchedSimulation(sims)

    def test_halt_on_nonfinite_guard_enforced(self):
        """Regression: the batched executor advances parameters outside
        ParameterServer.step, so it must enforce the server's
        halt_on_nonfinite guard itself — same error as the loop path."""
        from repro.attacks.simple import NonFiniteAttack
        from repro.exceptions import SimulationError

        def build():
            return build_quadratic_simulation(
                QuadraticBowl(4),
                aggregator=Average(),
                num_workers=7,
                num_byzantine=2,
                sigma=0.1,
                attack=NonFiniteAttack(),
                seed=0,
            )

        loop_sim, batched_sim = build(), build()
        loop_sim.server.halt_on_nonfinite = True
        batched_sim.server.halt_on_nonfinite = True
        with pytest.raises(SimulationError, match="non-finite") as loop_err:
            loop_sim.run(5)
        batched = BatchedSimulation([batched_sim])
        with pytest.raises(SimulationError, match="non-finite") as batched_err:
            batched.run(5)
        assert str(loop_err.value) == str(batched_err.value)


class TestTopologyAxis:
    def test_no_axis_means_no_label_suffix(self):
        assert all("topo=" not in c.label for c in small_grid().scenarios())

    def test_topology_axis_multiplies_len_and_suffixes_labels(self):
        grid = small_grid(
            topology_values=("complete", "ring"), degree=4
        )
        cells = grid.scenarios()
        assert len(cells) == 2 * len(small_grid())
        assert len(grid) == len(cells)
        complete = [c for c in cells if c.topology == "complete"]
        ring = [c for c in cells if c.topology == "ring"]
        assert all("topo=" not in c.label for c in complete)
        assert all("topo=ring(degree=4)" in c.label for c in ring)
        assert len(set(c.label for c in cells)) == len(cells)

    def test_degree_axis_collapses_where_not_accepted(self):
        """The degree sweep expands only under graph families that take
        a degree; the complete cells collapse to one — no duplicate
        labels."""
        grid = small_grid(
            topology_values=("complete", "ring"),
            degree_values=(4, 6),
        )
        cells = grid.scenarios()
        base = len(small_grid())
        # complete × 1 + ring × 2 degrees
        assert len(cells) == base + 2 * base
        labels = [c.label for c in cells]
        assert len(set(labels)) == len(labels)
        ring_degrees = {
            c.degree for c in cells if c.topology == "ring"
        }
        assert ring_degrees == {4, 6}
        assert all(
            c.degree is None for c in cells if c.topology == "complete"
        )

    def test_singular_and_plural_axes_exclusive(self):
        with pytest.raises(ConfigurationError, match="not both"):
            small_grid(topology="ring", topology_values=("ring",), degree=4)
        with pytest.raises(ConfigurationError, match="not both"):
            small_grid(
                topology="ring", degree=4, degree_values=(4, 6)
            )

    def test_knob_must_land_somewhere(self):
        with pytest.raises(ConfigurationError, match="edge_prob"):
            small_grid(topology="ring", degree=4, edge_prob=0.5)
        with pytest.raises(ConfigurationError, match="degree"):
            small_grid(topology="erdos-renyi", edge_prob=0.5, degree=4)

    def test_unknown_topology_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="available"):
            small_grid(topology_values=("complete", "torus"))

    def test_gossip_excludes_staleness_sweep_and_server_axes(self):
        with pytest.raises(ConfigurationError):
            small_grid(topology="ring", degree=4, max_staleness_values=(0, 2))
        with pytest.raises(ConfigurationError):
            small_grid(topology="ring", degree=4, num_servers=3)

    def test_gossip_spec_routes_to_gossip_simulation(self):
        from repro.engine.runner import build_gossip_simulation
        from repro.topology import GossipSimulation

        spec = small_grid(topology="ring", degree=4).scenarios()[0]
        assert spec.is_gossip
        simulation = build_gossip_simulation(spec)
        assert isinstance(simulation, GossipSimulation)

    def test_build_gossip_rejects_degenerate_spec(self):
        from repro.engine.runner import build_gossip_simulation

        spec = small_grid().scenarios()[0]
        with pytest.raises(ConfigurationError):
            build_gossip_simulation(spec)
