"""Backend-registry round trips and the ConfigurationError taxonomy.

The fourth registry must behave exactly like the aggregator/attack/
workload registries: unknown names raise ``ConfigurationError`` listing
the available entries, kwargs that do not bind raise a readable error
naming the backend and its accepted parameters, and registration
round-trips.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.backend import (
    ArrayBackend,
    NumpyBackend,
    available_backends,
    backend_factory,
    backend_installed,
    default_backend,
    make_backend,
    register_backend,
    resolve_backend,
)
from repro.backend.registry import _REGISTRY
from repro.exceptions import ConfigurationError

TORCH_PRESENT = importlib.util.find_spec("torch") is not None


@pytest.fixture
def scratch_registry():
    """Snapshot/restore the registry so tests can register freely."""
    saved = dict(_REGISTRY)
    try:
        yield
    finally:
        _REGISTRY.clear()
        _REGISTRY.update(saved)


class TestBuiltins:
    def test_numpy_and_torch_are_registered(self):
        names = available_backends()
        assert "numpy" in names
        assert "torch" in names

    def test_numpy_is_always_installed(self):
        assert backend_installed("numpy")

    def test_torch_installed_matches_importability(self):
        assert backend_installed("torch") == TORCH_PRESENT

    def test_make_numpy_backend(self):
        backend = make_backend("numpy")
        assert isinstance(backend, NumpyBackend)
        assert backend.name == "numpy"
        assert backend.float_dtype == np.dtype(np.float64)
        assert backend.describe() == "numpy[float64]"
        assert backend.device == "cpu"

    def test_numpy_float32_configuration(self):
        backend = make_backend("numpy", {"dtype": "float32"})
        assert backend.float_dtype == np.dtype(np.float32)
        assert backend.numpy_float_dtype == np.dtype(np.float32)
        assert backend.describe() == "numpy[float32]"

    def test_default_backend_is_numpy_float64(self):
        backend = default_backend()
        assert isinstance(backend, NumpyBackend)
        assert backend.describe() == "numpy[float64]"


class TestErrorTaxonomy:
    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigurationError) as excinfo:
            make_backend("jax")
        message = str(excinfo.value)
        assert "unknown backend 'jax'" in message
        assert "numpy" in message and "torch" in message

    def test_unknown_name_in_backend_installed(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            backend_installed("jax")

    def test_bad_kwargs_name_backend_and_accepted_params(self):
        with pytest.raises(ConfigurationError) as excinfo:
            make_backend("numpy", {"precision": "double"})
        message = str(excinfo.value)
        assert "backend 'numpy'" in message
        assert "accepted parameters" in message
        assert "dtype" in message

    def test_bad_dtype_value_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="dtype"):
            make_backend("numpy", {"dtype": "float16"})

    def test_register_rejects_bad_names(self):
        for bad in ("", None, 42):
            with pytest.raises(ConfigurationError, match="name"):
                register_backend(bad, NumpyBackend)

    @pytest.mark.skipif(
        TORCH_PRESENT, reason="only meaningful without torch installed"
    )
    def test_torch_absent_raises_actionable_error(self):
        with pytest.raises(ConfigurationError) as excinfo:
            make_backend("torch")
        message = str(excinfo.value)
        assert "torch" in message
        assert "[torch]" in message  # points at the packaging extra

    def test_resolve_rejects_junk(self):
        with pytest.raises(ConfigurationError, match="backend must be"):
            resolve_backend(3.14)


class TestRoundTrip:
    def test_register_and_make(self, scratch_registry):
        class TracingBackend(NumpyBackend):
            name = "tracing"

            def __init__(self, dtype: str = "float64", label: str = "x"):
                super().__init__(dtype=dtype)
                self.label = label

        register_backend("tracing", TracingBackend)
        assert "tracing" in available_backends()
        assert backend_factory("tracing") is TracingBackend
        built = make_backend("tracing", {"label": "probe"})
        assert isinstance(built, TracingBackend)
        assert built.label == "probe"
        assert backend_installed("tracing")
        # And the shared kwargs contract applies to registered entries.
        with pytest.raises(ConfigurationError, match="tracing"):
            make_backend("tracing", {"nope": 1})

    def test_later_registration_overrides(self, scratch_registry):
        register_backend("numpy", lambda: NumpyBackend(dtype="float32"))
        assert make_backend("numpy").describe() == "numpy[float32]"


class TestResolve:
    def test_none_resolves_to_shared_default(self):
        assert resolve_backend(None) is resolve_backend(None)
        assert resolve_backend(None) is default_backend()

    def test_string_resolves_through_registry(self):
        assert isinstance(resolve_backend("numpy"), NumpyBackend)

    def test_instance_passes_through(self):
        backend = NumpyBackend(dtype="float32")
        assert resolve_backend(backend) is backend

    def test_namespace_is_fully_implemented_by_numpy(self):
        # Every abstract op of the protocol must be concrete on the
        # reference backend — a new op added to ArrayBackend without a
        # numpy implementation should fail here, not in a kernel.
        assert not getattr(NumpyBackend, "__abstractmethods__", None)
        assert isinstance(default_backend(), ArrayBackend)
