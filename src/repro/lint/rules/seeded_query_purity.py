"""seeded-query-purity: bound queries stay pure, transitively.

The loop and batched executors query ``Topology.neighbors`` and
``DelaySchedule.staleness`` in *different orders*; the bit-for-bit
differential guarantee therefore requires both to be pure functions of
their arguments and bind-time state.  The contract is documented on the
ABCs, but a violation hides easily one helper call deep: a memo cache
written from ``neighbors``, a module-level counter, a stray
``rng.integers`` draw that consumes shared stream state.

This rule walks the project call graph from every override of the
configured query methods (across all subclasses, resolved through the
whole-program class table) plus the configured pure helper functions
(``counter_uniform`` and anything it calls), and flags in any reachable
function:

- assignment to ``self.*`` (instance mutation — queries may only read),
- ``global``/``nonlocal`` declarations and stores through module-level
  names (hidden shared state),
- RNG draw-method calls (``integers``, ``random``, ``choice``,
  ``permutation``, ...) — draws are legal only inside ``bind``, which is
  never a purity root.

Counter-based machinery stays legal: ``SeedSequence(...).generate_state``
is a pure function of its key, exactly the discipline the randomized
schedules/topologies use.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.base import ProjectRule
from repro.lint.findings import Finding
from repro.lint.project import ProjectContext, SymbolKey

__all__ = ["SeededQueryPurityRule", "QUERY_ROOTS", "PURE_FUNCTIONS"]

#: ``(root class name, query method)`` pairs: every project subclass's
#: override of the method is a purity root.
QUERY_ROOTS: tuple[tuple[str, str], ...] = (
    ("Topology", "neighbors"),
    ("DelaySchedule", "staleness"),
)

#: Top-level functions that must be pure wherever they are defined.
PURE_FUNCTIONS: tuple[str, ...] = ("counter_uniform",)

#: ``numpy.random.Generator`` draw methods — any call spelled
#: ``<receiver>.<draw>(...)`` in a pure region consumes stream state.
_DRAW_METHODS = frozenset(
    {
        "integers",
        "random",
        "normal",
        "standard_normal",
        "uniform",
        "choice",
        "permutation",
        "permuted",
        "shuffle",
        "exponential",
        "standard_exponential",
        "poisson",
        "binomial",
        "gamma",
        "standard_gamma",
        "beta",
        "bytes",
    }
)


class SeededQueryPurityRule(ProjectRule):
    """neighbors/staleness/counter_uniform are transitively pure."""

    name = "seeded-query-purity"
    description = (
        "Topology.neighbors, DelaySchedule.staleness and counter_uniform "
        "callees stay pure: no self/global mutation, no RNG draw outside "
        "bind (walked through the call graph)"
    )

    def __init__(
        self,
        query_roots: tuple[tuple[str, str], ...] = QUERY_ROOTS,
        pure_functions: tuple[str, ...] = PURE_FUNCTIONS,
    ):
        self.query_roots = tuple(query_roots)
        self.pure_functions = tuple(pure_functions)

    def _root_keys(
        self, project: ProjectContext
    ) -> dict[SymbolKey, str]:
        """Purity roots mapped to the contract they belong to."""
        roots: dict[SymbolKey, str] = {}
        for class_name, method in self.query_roots:
            contract = f"{class_name}.{method}"
            for info in project.subclasses_of(class_name):
                key = (info.key[0], f"{info.key[1]}.{method}")
                if key in project.functions:
                    roots[key] = contract
            for key in project.classes:
                if key[1] == class_name:
                    method_key = (key[0], f"{class_name}.{method}")
                    if method_key in project.functions:
                        roots[method_key] = contract
        for name in self.pure_functions:
            for info in project.find_functions(name):
                roots[info.key] = name
        return roots

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        roots = self._root_keys(project)
        findings: list[Finding] = []
        seen: set[tuple[SymbolKey, int]] = set()
        for root, contract in sorted(roots.items()):
            for key in sorted(project.reachable_from([root])):
                info = project.functions.get(key)
                if info is None:
                    continue
                for node, problem in self._violations(project, key):
                    mark = (key, node.lineno)
                    if mark in seen:
                        continue
                    seen.add(mark)
                    findings.append(
                        self.project_finding(
                            info.module.path,
                            node,
                            f"{key[1]} is reachable from the pure query "
                            f"{contract} but {problem} — loop and batched "
                            f"executors query in different orders, so "
                            f"bound queries must be pure",
                        )
                    )
        return sorted(findings, key=Finding.sort_key)

    #: Constructors write the fresh instance they are building — that is
    #: object construction, not mutation of the query object.  Draws and
    #: global mutation stay flagged even here.
    _CONSTRUCTORS = ("__init__", "__post_init__", "__new__")

    def _violations(
        self, project: ProjectContext, key: SymbolKey
    ) -> list[tuple[ast.AST, str]]:
        info = project.functions[key]
        in_constructor = any(
            key[1].endswith(f".{ctor}") for ctor in self._CONSTRUCTORS
        )
        module_globals = {
            name
            for (module, name) in project.functions
            if module == key[0]
        } | {name for (module, name) in project.classes if module == key[0]}
        for statement in info.module.tree.body:
            for target in _assign_targets(statement):
                if isinstance(target, ast.Name):
                    module_globals.add(target.id)

        problems: list[tuple[ast.AST, str]] = []
        for node in ast.walk(info.node):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                problems.append(
                    (node, "declares global/nonlocal state")
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                for target in _assign_targets(node):
                    base = _store_base(target)
                    if (
                        isinstance(base, ast.Name)
                        and base.id == "self"
                        and base is not target
                    ):
                        if not in_constructor:
                            problems.append(
                                (node, "assigns instance state (self.*)")
                            )
                    elif (
                        isinstance(base, ast.Name)
                        and base is not target
                        and base.id in module_globals
                    ):
                        problems.append(
                            (
                                node,
                                f"mutates the module-level name "
                                f"{base.id!r}",
                            )
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DRAW_METHODS
            ):
                problems.append(
                    (
                        node,
                        f"draws from an RNG stream "
                        f"(.{node.func.attr}(...)) — draws are only "
                        f"legal inside bind()",
                    )
                )
        return problems


def _assign_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return []
    flat: list[ast.expr] = []
    frontier = targets
    while frontier:
        target = frontier.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            frontier.extend(target.elts)
        else:
            flat.append(target)
    return flat


def _store_base(target: ast.expr) -> ast.expr:
    """The root expression a store writes through (``a.b[c].d`` -> ``a``)."""
    while isinstance(target, (ast.Attribute, ast.Subscript)):
        target = target.value
    return target
