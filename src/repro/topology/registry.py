"""Name-based topology factory — the eighth registry.

Mirrors :mod:`repro.distributed.delays` for communication graphs: a
scenario names a topology ("ring", "erdos-renyi", ...) plus keyword
arguments, and the registry builds the unbound
:class:`~repro.topology.base.Topology`, with the shared
:class:`ConfigurationError` contract — an unknown name or keyword
arguments that do not fit the factory's signature raise a readable
error naming the topology and the parameters it accepts.

Unlike the optional attack/delay registries there is no ``None`` arm:
every decentralized cell has *some* graph, and the ``"complete"``
default is the degenerate cell the server path realizes bit for bit.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.exceptions import ConfigurationError
from repro.topology.base import Topology
from repro.utils.validation import check_factory_kwargs

__all__ = [
    "register_topology",
    "available_topologies",
    "topology_factory",
    "make_topology",
]

_REGISTRY: dict[str, Callable[..., Topology]] = {}


def register_topology(name: str, factory: Callable[..., Topology]) -> None:
    """Register a topology under ``name``; later registrations override."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"topology name must be a non-empty string, got {name!r}"
        )
    _REGISTRY[name] = factory


def available_topologies() -> list[str]:
    """Sorted list of registered topology names."""
    return sorted(_REGISTRY)


def topology_factory(name: str) -> Callable[..., Topology]:
    """The registered factory for ``name`` (for signature introspection)."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown topology {name!r}; available: {available_topologies()}"
        )
    return _REGISTRY[name]


def make_topology(
    name: str, kwargs: Mapping[str, object] | None = None
) -> Topology:
    """Build a topology by name, e.g. ``make_topology("ring", {"degree": 4})``.

    Keyword arguments that do not fit the factory's signature (unknown
    names, missing required parameters) raise
    :class:`ConfigurationError` naming the topology and the parameters
    it accepts — the shared registry contract.
    """
    factory = topology_factory(name)
    resolved = dict(kwargs or {})
    check_factory_kwargs("topology", name, factory, resolved)
    return factory(**resolved)


def _register_builtins() -> None:
    from repro.topology.base import (
        CompleteTopology,
        ErdosRenyiTopology,
        KRegularTopology,
        RingTopology,
        TimeVaryingTopology,
    )

    register_topology("complete", CompleteTopology)
    register_topology("ring", RingTopology)
    register_topology("k-regular", KRegularTopology)
    register_topology("erdos-renyi", ErdosRenyiTopology)
    register_topology("time-varying", TimeVaryingTopology)


_register_builtins()
