"""Topology bench — serverless gossip over communication graphs.

Two measurements on the event-driven gossip engine:

* **comparison grid** — ``complete`` / ``ring(degree=6)`` /
  ``erdos-renyi(edge_prob=0.8)`` × three gradient rules under the
  gaussian attack at ``f = 2`` on the quadratic reference workload,
  run through *both* grid executors.  Alongside the per-cell
  consensus-error and disagreement metrics, three identities are
  asserted:

  - the loop and batched executors produce bit-identical trajectories
    (gossip cells are event-driven in both — the batched executor must
    route them through the same engine);
  - the degenerate ``complete`` cell reproduces the axis-free grid —
    same labels, same trajectories, bit for bit (a serverless run over
    the complete graph with zero edge delay *is* the parameter server);
  - every gossip cell reports finite per-round ``consensus_error`` and
    ``disagreement`` extras.

* **ring scaling headline** — a ``ring(degree=6)`` grid at
  ``n ∈ {250, 500, 1000}`` nodes (two Byzantine sign-flippers,
  coordinate-median locally), demonstrating the engine end-to-end at
  ≥ 1000 nodes: per-n wall time plus the per-round consensus-error /
  disagreement trajectory, asserting the honest nodes train (final
  distance-to-optimum under ``TRAIN_MAX``) while disagreement stays
  bounded.  The fault set is *fixed* rather than proportional: on a
  sparse graph a Byzantine node's influence is local, and a contiguous
  2%-of-n block drags its whole neighborhood arc away from the rest of
  the network — real decentralized behavior, but a drifting headline.
  Two adjacent sign-flippers exercise the local-f path (nodes near the
  pair aggregate with ``f_local = 2``) while the drag stays bounded.

Writes the measurement to ``BENCH_topology.json`` at the repo root.

Standalone usage (CI smoke / regenerating the JSON)::

    PYTHONPATH=src python benchmarks/bench_topology.py          # full
    PYTHONPATH=src python benchmarks/bench_topology.py --smoke  # tiny
    PYTHONPATH=src python benchmarks/bench_topology.py --smoke \\
        --output BENCH_topology.smoke.json   # CI artifact
"""

from __future__ import annotations

import json
import math
import platform
import sys
from pathlib import Path

from repro.engine import ScenarioGrid, run_grid
from repro.experiments.reporting import format_table

try:
    from benchmarks.conftest import emit, run_once
except ImportError:  # executed as a script: python benchmarks/bench_topology.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import emit, run_once

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_topology.json"

AGGREGATORS = (
    ("krum", {}),
    ("coordinate-median", {}),
    ("average", {}),
)
TOPOLOGIES = ("complete", "ring", "erdos-renyi")

# Scaling headline thresholds: with two sign-flippers filtered by the
# local coordinate median, every n must finish within TRAIN_MAX of the
# optimum (training works at a thousand nodes) and the honest extremes
# must stay within DISAGREE_MAX of each other (the Byzantine drag stays
# local).  Measured at the full bench: dist_to_opt ~1.6-1.7 and
# disagreement ~2.4 across n ∈ {250, 500, 1000} (from ~10.7 at x_0).
TRAIN_MAX = 3.0
DISAGREE_MAX = 5.0


def _comparison_grid(*, seeds=(0, 1), num_rounds=60, dimension=10):
    return ScenarioGrid(
        seeds=seeds,
        attacks=(("gaussian", {"sigma": 10.0}),),
        aggregators=AGGREGATORS,
        f_values=(2,),
        num_workers=15,
        dimension=dimension,
        sigma=0.5,
        num_rounds=num_rounds,
        learning_rate=0.1,
        lr_timescale=None,
        topology_values=TOPOLOGIES,
        degree=6,
        edge_prob=0.8,
    )


def _axis_free_grid(grid: ScenarioGrid) -> ScenarioGrid:
    return ScenarioGrid(
        seeds=tuple(grid.seeds),
        attacks=tuple(grid.attacks),
        aggregators=AGGREGATORS,
        f_values=tuple(grid.f_values),
        num_workers=grid.num_workers,
        dimension=grid.dimension,
        sigma=0.5,
        num_rounds=grid.num_rounds,
        learning_rate=0.1,
        lr_timescale=None,
    )


def _scaling_grid(num_nodes: int, *, num_rounds=30, dimension=10):
    return ScenarioGrid(
        seeds=(0,),
        attacks=(("sign-flip", {}),),
        aggregators=(("coordinate-median", {}),),
        f_values=(2,),
        num_workers=num_nodes,
        dimension=dimension,
        sigma=0.5,
        num_rounds=num_rounds,
        learning_rate=0.1,
        lr_timescale=None,
        topology="ring",
        degree=6,
    )


def _identical_trajectories(result_a, result_b) -> bool:
    for spec in result_a.specs:
        label = spec.label
        if (
            result_a.final_params[label].tobytes()
            != result_b.final_params[label].tobytes()
        ):
            return False
        history_a = result_a.histories[label]
        history_b = result_b.histories[label]
        if len(history_a) != len(history_b) or any(
            a != b for a, b in zip(history_a, history_b)
        ):
            return False
    return True


def _cell_rows(result) -> list[dict]:
    """Per-cell final metrics; gossip cells add the consensus extras
    (the server path has a single iterate, so they are None there)."""
    rows = []
    for spec in result.specs:
        final = result.histories[spec.label].evaluated[-1]
        rows.append(
            {
                "topology": spec.topology,
                "aggregator": spec.aggregator,
                "seed": spec.seed,
                "dist_to_opt": final.extras.get("dist_to_opt"),
                "consensus_error": final.extras.get("consensus_error"),
                "disagreement": final.extras.get("disagreement"),
            }
        )
    return rows


def run_topology(grids) -> dict:
    comparison, axis_free, scaling = grids

    loop_result = run_grid(comparison, mode="loop", eval_every=10)
    batched_result = run_grid(comparison, mode="batched", eval_every=10)

    pinned = {
        label: (history, loop_result.final_params[label])
        for label, history in loop_result.histories.items()
        if "topo=" not in label
    }
    free = run_grid(axis_free, mode="loop", eval_every=10)
    degenerate_identical = list(pinned) == list(free.histories) and all(
        len(history) == len(free.histories[label])
        and all(a == b for a, b in zip(history, free.histories[label]))
        and params.tobytes() == free.final_params[label].tobytes()
        for label, (history, params) in pinned.items()
    )

    rows = _cell_rows(batched_result)
    gossip_rows = [r for r in rows if r["topology"] != "complete"]
    consensus_finite = all(
        r["consensus_error"] is not None
        and math.isfinite(r["consensus_error"])
        and r["disagreement"] is not None
        and math.isfinite(r["disagreement"])
        for r in gossip_rows
    )

    headline = []
    for grid in scaling:
        result = run_grid(grid, mode="loop", eval_every=5)
        (spec,) = result.specs
        history = result.histories[spec.label]
        headline.append(
            {
                "num_nodes": grid.num_workers,
                "num_byzantine": grid.f_values[0],
                "num_rounds": grid.num_rounds,
                "seconds": round(result.wall_time, 4),
                "rounds_per_second": round(
                    grid.num_rounds / max(result.wall_time, 1e-12), 2
                ),
                "final_dist_to_opt": history.evaluated[-1].extras.get(
                    "dist_to_opt"
                ),
                "trajectory": [
                    {
                        "round": record.round_index,
                        "consensus_error": record.extras.get(
                            "consensus_error"
                        ),
                        "disagreement": record.extras.get("disagreement"),
                    }
                    for record in history.evaluated
                ],
            }
        )

    return {
        "grid": {
            "cells": len(comparison),
            "num_workers": comparison.num_workers,
            "dimension": comparison.dimension,
            "num_rounds": comparison.num_rounds,
            "seeds": list(comparison.seeds),
            "topologies": list(TOPOLOGIES),
            "aggregators": [name for name, _ in AGGREGATORS],
        },
        "backend": batched_result.backend,
        "loop_seconds": round(loop_result.wall_time, 4),
        "batched_seconds": round(batched_result.wall_time, 4),
        "trajectories_identical": _identical_trajectories(
            loop_result, batched_result
        ),
        "degenerate_equals_axis_free": degenerate_identical,
        "consensus_metrics_finite": consensus_finite,
        "cells": rows,
        "headline": headline,
        "train_max": TRAIN_MAX,
        "disagree_max": DISAGREE_MAX,
        "python": platform.python_version(),
    }


def _emit_summary(summary: dict) -> None:
    emit(
        format_table(
            [
                "cells", "n", "rounds", "loop s", "batched s",
                "identical", "degenerate==plain", "consensus finite",
            ],
            [
                [
                    summary["grid"]["cells"],
                    summary["grid"]["num_workers"],
                    summary["grid"]["num_rounds"],
                    summary["loop_seconds"],
                    summary["batched_seconds"],
                    summary["trajectories_identical"],
                    summary["degenerate_equals_axis_free"],
                    summary["consensus_metrics_finite"],
                ]
            ],
            title="Gossip topologies — comparison grid",
        )
    )
    emit(
        format_table(
            ["nodes", "byz", "rounds", "seconds", "rounds/s",
             "dist_to_opt", "disagreement"],
            [
                [
                    row["num_nodes"],
                    row["num_byzantine"],
                    row["num_rounds"],
                    row["seconds"],
                    row["rounds_per_second"],
                    f"{row['final_dist_to_opt']:.4g}",
                    f"{row['trajectory'][-1]['disagreement']:.4g}",
                ]
                for row in summary["headline"]
            ],
            title="Ring(degree=6) scaling — event-driven gossip",
        )
    )


def _check(summary: dict) -> list[str]:
    failures = []
    if not summary["trajectories_identical"]:
        failures.append(
            "batched engine diverged from the per-scenario loop on the "
            "topology grid"
        )
    if not summary["degenerate_equals_axis_free"]:
        failures.append(
            "the degenerate complete-graph cells forked from the "
            "axis-free grid"
        )
    if not summary["consensus_metrics_finite"]:
        failures.append(
            "a gossip cell reported a missing or non-finite "
            "consensus_error/disagreement"
        )
    for row in summary["headline"]:
        if not (row["final_dist_to_opt"] < TRAIN_MAX):
            failures.append(
                f"ring gossip at n={row['num_nodes']} should train to "
                f"dist_to_opt < {TRAIN_MAX}, got "
                f"{row['final_dist_to_opt']:.4g}"
            )
        last = row["trajectory"][-1]["disagreement"]
        if not (last < DISAGREE_MAX):
            failures.append(
                f"ring gossip at n={row['num_nodes']} should keep "
                f"disagreement < {DISAGREE_MAX}, got {last:.4g}"
            )
    return failures


def _grids(*, smoke: bool = False):
    if smoke:
        comparison = _comparison_grid(seeds=(0,), num_rounds=10)
        scaling = (_scaling_grid(64, num_rounds=20),)
    else:
        comparison = _comparison_grid()
        scaling = tuple(_scaling_grid(n) for n in (250, 500, 1000))
    return comparison, _axis_free_grid(comparison), scaling


def bench_topology(benchmark):
    summary = run_once(benchmark, lambda: run_topology(_grids()))
    _emit_summary(summary)
    RESULT_PATH.write_text(json.dumps(summary, indent=1) + "\n")
    for failure in _check(summary):
        raise AssertionError(failure)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run a small grid (1 seed, 64-node ring) without writing "
        "BENCH_topology.json — the CI sanity check",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the summary JSON to this path (used by CI to "
        "upload the smoke measurement as a workflow artifact)",
    )
    args = parser.parse_args(argv)

    summary = run_topology(_grids(smoke=args.smoke))
    _emit_summary(summary)
    print(json.dumps(summary, indent=1))
    if args.output is not None:
        args.output.write_text(json.dumps(summary, indent=1) + "\n")
        print(f"wrote {args.output}")
    failures = _check(summary)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    if not args.smoke:
        RESULT_PATH.write_text(json.dumps(summary, indent=1) + "\n")
        print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
