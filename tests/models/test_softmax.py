"""Tests for softmax regression."""

import numpy as np
import pytest

from repro.data.synthetic import make_blobs
from repro.exceptions import ConfigurationError
from repro.models.softmax import SoftmaxRegressionModel
from tests.helpers import assert_gradients_close, numerical_gradient


class TestSoftmaxRegression:
    def test_dimension(self):
        assert SoftmaxRegressionModel(4, 3).dimension == 4 * 3 + 3
        assert SoftmaxRegressionModel(4, 3, fit_bias=False).dimension == 12

    def test_gradient_matches_numeric(self, rng):
        model = SoftmaxRegressionModel(3, 4, l2=0.01)
        params = rng.standard_normal(model.dimension)
        inputs = rng.standard_normal((7, 3))
        targets = rng.integers(0, 4, size=7)
        analytic = model.gradient(params, inputs, targets)
        numeric = numerical_gradient(
            lambda p: model.loss(p, inputs, targets), params.copy()
        )
        assert_gradients_close(analytic, numeric, rtol=1e-5)

    def test_gradient_no_bias_matches_numeric(self, rng):
        model = SoftmaxRegressionModel(3, 3, fit_bias=False)
        params = rng.standard_normal(model.dimension)
        inputs = rng.standard_normal((5, 3))
        targets = rng.integers(0, 3, size=5)
        numeric = numerical_gradient(
            lambda p: model.loss(p, inputs, targets), params.copy()
        )
        assert_gradients_close(model.gradient(params, inputs, targets), numeric)

    def test_uniform_loss_at_zero_params(self, rng):
        model = SoftmaxRegressionModel(4, 5)
        loss = model.loss(
            np.zeros(model.dimension),
            rng.standard_normal((10, 4)),
            rng.integers(0, 5, size=10),
        )
        assert loss == pytest.approx(np.log(5))

    def test_learns_blobs(self, rng):
        dataset = make_blobs(300, num_classes=3, num_features=2, spread=0.5, seed=4)
        model = SoftmaxRegressionModel(2, 3)
        params = model.init_params(rng)
        for _step in range(200):
            params -= 0.5 * model.gradient(params, dataset.inputs, dataset.targets)
        assert model.accuracy(params, dataset.inputs, dataset.targets) > 0.95

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            SoftmaxRegressionModel(0, 3)
        with pytest.raises(ConfigurationError):
            SoftmaxRegressionModel(3, 1)
        with pytest.raises(ConfigurationError):
            SoftmaxRegressionModel(3, 3, l2=-0.1)
