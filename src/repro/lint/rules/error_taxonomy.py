"""error-taxonomy: library code raises ``ReproError`` subclasses.

The exception hierarchy in :mod:`repro.exceptions` exists so callers can
catch library failures with one ``except ReproError`` while still
telling configuration mistakes from numerical problems.  A bare
``ValueError``/``TypeError``/``RuntimeError`` escapes that contract —
the PR 2 Weiszfeld bug class was exactly a bare ``ValueError`` leaking
out of a kernel where callers (and the engine's breakdown-row handling)
expected the taxonomy.  Every builtin in the banned set has a taxonomy
replacement that *is* a subclass of it, so tightening a raise never
breaks an existing ``except``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.base import LintRule, ModuleContext
from repro.lint.findings import Finding

__all__ = ["ErrorTaxonomyRule"]

#: builtin -> suggested taxonomy replacements (each a subclass of the
#: builtin, so the swap is strictly compatible for callers).
BANNED_EXCEPTIONS = {
    "ValueError": (
        "ConfigurationError / DimensionMismatchError / InvalidVectorError"
    ),
    "TypeError": "ConfigurationError (wrap the TypeError)",
    "RuntimeError": "ConvergenceError / SimulationError / LifecycleError",
}


class ErrorTaxonomyRule(LintRule):
    """No bare ValueError/TypeError/RuntimeError raises in library code."""

    name = "error-taxonomy"
    description = (
        "library code raises the repro.exceptions taxonomy, not bare "
        "ValueError/TypeError/RuntimeError"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in BANNED_EXCEPTIONS:
                yield self.finding(
                    module,
                    node,
                    f"raise {name} escapes the ReproError taxonomy — use "
                    f"{BANNED_EXCEPTIONS[name]} from repro.exceptions",
                )
