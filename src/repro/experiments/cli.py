"""Command-line interface for running Byzantine-SGD experiments.

Usage examples::

    python -m repro.experiments.cli --dataset mnist-like --aggregator krum \
        --workers 20 --byzantine 6 --attack omniscient --rounds 200

    python -m repro.experiments.cli --dataset spambase-like \
        --aggregator average --workers 16 --byzantine 5 --attack gaussian \
        --partition dirichlet --dirichlet-alpha 0.3

    python -m repro.experiments.cli --tournament --workers 15 \
        --byzantine 3 --rounds 40 --eval-every 5

The named datasets resolve through the engine's workload registry
(``mnist-like`` → the ``mlp-mnist`` workload, ``spambase-like`` →
``logistic-spambase``; ``blobs`` is a CLI-local softmax task), so the
CLI runs exactly the simulations a :class:`~repro.engine.ScenarioGrid`
cell would.  Prints the error/loss series and a summary table; exits
non-zero on configuration errors with a readable message.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.attacks.registry import available_attacks, make_attack
from repro.backend import available_backends, resolve_backend
from repro.core.registry import available_aggregators, make_aggregator
from repro.data.partition import PARTITION_PROTOCOLS
from repro.data.synthetic import make_blobs
from repro.distributed.delays import (
    available_delay_schedules,
    make_delay_schedule,
)
from repro.engine.simulation import BatchedSimulation
from repro.engine.workloads import make_workload
from repro.exceptions import ConfigurationError, ReproError
from repro.experiments.builders import build_dataset_simulation
from repro.experiments.reporting import (
    format_league_table,
    format_series,
    format_table,
)
from repro.models.softmax import SoftmaxRegressionModel
from repro.servers.registry import available_server_attacks
from repro.topology import (
    GossipSimulation,
    available_topologies,
    make_topology,
)
from repro.tournament import TournamentRunner

__all__ = ["main", "build_parser"]

_DATASETS = ("mnist-like", "spambase-like", "blobs")
# Attacks needing structured kwargs the flag surface cannot express.
_CLI_ATTACK_EXCLUDES = ("composite",)

# Which registered workload realizes each named dataset choice.
_DATASET_WORKLOADS = {
    "mnist-like": "mlp-mnist",
    "spambase-like": "logistic-spambase",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Distributed SGD under Byzantine attack (Krum reproduction)",
    )
    parser.add_argument("--dataset", choices=_DATASETS, default="mnist-like")
    parser.add_argument("--train-size", type=int, default=1500)
    parser.add_argument("--test-size", type=int, default=400)
    parser.add_argument(
        "--aggregator",
        default="krum",
        help=f"one of: {', '.join(available_aggregators())}",
    )
    parser.add_argument(
        "--m", type=int, default=None, help="multi-krum committee size"
    )
    parser.add_argument("--workers", type=int, default=20)
    parser.add_argument("--byzantine", type=int, default=0)
    parser.add_argument(
        "--attack",
        choices=[
            name
            for name in available_attacks()
            if name not in _CLI_ATTACK_EXCLUDES
        ],
        default=None,
    )
    parser.add_argument("--rounds", type=int, default=200)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--learning-rate", type=float, default=0.3)
    parser.add_argument(
        "--partition",
        choices=PARTITION_PROTOCOLS,
        default="iid",
        help="how the train set is sharded across honest workers",
    )
    parser.add_argument(
        "--dirichlet-alpha",
        type=float,
        default=0.5,
        help="skew of the dirichlet partition (smaller = more skewed)",
    )
    parser.add_argument("--eval-every", type=int, default=25)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-staleness",
        type=int,
        default=0,
        help="bounded-staleness window of the server (0 = synchronous "
        "rounds); stale proposals beyond the window are clipped to it",
    )
    parser.add_argument(
        "--delay-schedule",
        choices=available_delay_schedules(),
        default=None,
        help="per-worker delay model for asynchronous rounds "
        "(reproducible from --seed); pair with --max-staleness > 0",
    )
    parser.add_argument(
        "--delay-tau",
        type=int,
        default=1,
        help="lag of the constant/periodic schedules (and the maximum "
        "draw of the random schedule)",
    )
    parser.add_argument(
        "--delay-period",
        type=int,
        default=4,
        help="period of the periodic delay schedule",
    )
    parser.add_argument(
        "--num-servers",
        type=int,
        default=1,
        help="parameter-server replica count (1 = the paper's single "
        "reliable server); workers take a coordinate median over the "
        "replica broadcasts",
    )
    parser.add_argument(
        "--byzantine-servers",
        type=int,
        default=0,
        help="how many server replicas broadcast corrupted parameters; "
        "pair with --server-attack",
    )
    parser.add_argument(
        "--num-shards",
        type=int,
        default=1,
        help="coordinate shards for per-shard aggregation (1 = the "
        "plain rule over full vectors)",
    )
    parser.add_argument(
        "--server-attack",
        choices=available_server_attacks(),
        default=None,
        help="broadcast-corruption strategy of the Byzantine server "
        "replicas; pair with --byzantine-servers > 0",
    )
    parser.add_argument(
        "--topology",
        default="complete",
        help="communication graph for serverless gossip runs (one of: "
        f"{', '.join(available_topologies())}); 'complete' is the "
        "paper's server setting, anything else drops the server and "
        "each node aggregates its neighborhood with a local f.  The "
        "name is validated through the topology registry, so an unknown "
        "name exits with a readable configuration error",
    )
    parser.add_argument(
        "--degree",
        type=int,
        default=None,
        help="neighbor degree of the ring/k-regular topologies (even)",
    )
    parser.add_argument(
        "--edge-prob",
        type=float,
        default=None,
        help="edge probability of the erdos-renyi/time-varying topologies",
    )
    parser.add_argument(
        "--rewire-period",
        type=int,
        default=None,
        help="rounds between rewirings of the time-varying topology",
    )
    parser.add_argument(
        "--halt-on-nonfinite",
        action="store_true",
        help="raise instead of training on NaN/Inf parameters (the "
        "production server guard)",
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="array backend for the aggregation kernels; selecting one "
        "routes the run through the batched executor (trajectory-"
        "identical on numpy; torch needs the optional [torch] extra)",
    )
    parser.add_argument(
        "--tournament",
        action="store_true",
        help="run the attack x defense robustness league instead of a "
        "single experiment: every registered attack against every "
        "registered rule over --workers/--byzantine/--rounds/--seed, "
        "printed as a markdown league table (see "
        "benchmarks/bench_tournament.py for the persisted variant)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="with --tournament, also write the league payload as JSON "
        "to this path",
    )
    return parser


def _run_tournament(args: argparse.Namespace) -> int:
    """The --tournament mode: full-registry league on the CLI's knobs."""
    runner = TournamentRunner(
        seeds=(args.seed,),
        num_workers=args.workers,
        num_byzantine=args.byzantine,
        num_rounds=args.rounds,
        eval_every=args.eval_every,
    )
    result = runner.run()
    print(
        format_league_table(
            result,
            title=(
                f"Robustness league — n={args.workers}, "
                f"f={args.byzantine}, {args.rounds} rounds, "
                f"seed {args.seed}"
            ),
        )
    )
    if not result.covers_product():
        print("error: league is missing pairings", file=sys.stderr)
        return 1
    if args.output is not None:
        import json

        with open(args.output, "w") as handle:
            json.dump(result.to_payload(), handle, indent=1)
            handle.write("\n")
        print(f"\nwrote {args.output}")
    return 0


def _delay_schedule(args: argparse.Namespace):
    """Resolve the CLI's delay flags into a DelaySchedule (or None).

    The flag surface maps onto each schedule's primary knobs:
    ``--delay-tau`` is the constant/periodic lag and the random
    schedule's maximum draw; ``--delay-period`` the periodic cadence.
    """
    if args.delay_schedule is None:
        return None
    kwargs: dict[str, object] = {}
    if args.delay_schedule in ("constant", "periodic"):
        kwargs["tau"] = args.delay_tau
    if args.delay_schedule == "periodic":
        kwargs["period"] = args.delay_period
    if args.delay_schedule == "random":
        kwargs["max_delay"] = args.delay_tau
    return make_delay_schedule(args.delay_schedule, kwargs)


def _cli_topology(args: argparse.Namespace):
    """Resolve the CLI's topology flags through the registry.

    Unknown names and knobs the named graph family does not take both
    raise :class:`ConfigurationError` (caught in :func:`main` and
    reported with exit code 2), never an argparse crash.
    """
    kwargs: dict[str, object] = {}
    if args.degree is not None:
        kwargs["degree"] = args.degree
    if args.edge_prob is not None:
        kwargs["edge_prob"] = args.edge_prob
    if args.rewire_period is not None:
        kwargs["rewire_period"] = args.rewire_period
    return make_topology(args.topology, kwargs)


def _gossip_rule_builder(args: argparse.Namespace):
    """Local-f rule factory for gossip runs: rebuild the CLI's rule at
    each node's neighborhood bound (f-free rules return None and the
    fixed rule is copied per node)."""
    if args.aggregator not in ("krum", "multi-krum", "trimmed-mean",
                               "minimal-diameter", "bulyan", "kardam"):
        return None
    pinned_m = None
    if args.aggregator == "multi-krum":
        pinned_m = args.m if args.m is not None else max(
            1, args.workers - args.byzantine - 2
        )

    def build(f_local: int):
        kwargs: dict[str, object] = {"f": int(f_local)}
        if pinned_m is not None:
            kwargs["m"] = pinned_m
        return make_aggregator(args.aggregator, **kwargs)

    return build


def _build_simulation(args: argparse.Namespace, aggregator, attack):
    delay_schedule = _delay_schedule(args)
    gossip = args.topology != "complete"
    if gossip:
        # Validate the flags before building anything, so a bad name or
        # knob fails fast with the registry's error message.
        topology = _cli_topology(args)
        if (
            args.max_staleness
            or args.num_servers != 1
            or args.byzantine_servers
            or args.num_shards != 1
            or args.server_attack is not None
        ):
            raise ConfigurationError(
                "--topology is exclusive with the server-tier and "
                "staleness flags — a gossip run has no server, and edge "
                "lag comes from --delay-schedule"
            )
        if args.backend is not None:
            raise ConfigurationError(
                "--backend routes through the batched server-path "
                "executor; gossip runs are event-driven and always "
                "execute on numpy"
            )
    else:
        topology = None
        _cli_topology(args)  # still validates --degree etc. against it
    template = _build_server_simulation(
        args,
        aggregator,
        attack,
        # The gossip engine takes over the template unstepped and
        # synchronous; the CLI's delay flags become per-edge delays.
        delay_schedule=None if gossip else delay_schedule,
        max_staleness=0 if gossip else args.max_staleness,
    )
    if not gossip:
        return template
    return GossipSimulation.from_template(
        template,
        topology=topology,
        aggregator_builder=_gossip_rule_builder(args),
        edge_delay=delay_schedule,
        seed=args.seed,
    )


def _build_server_simulation(
    args: argparse.Namespace, aggregator, attack, *, delay_schedule,
    max_staleness,
):
    if args.dataset in _DATASET_WORKLOADS:
        workload = make_workload(
            _DATASET_WORKLOADS[args.dataset],
            {
                "num_train": args.train_size,
                "num_eval": args.test_size,
                "batch_size": args.batch_size,
                "partition": args.partition,
                "dirichlet_alpha": args.dirichlet_alpha,
                "data_seed": args.seed,
            },
        )
        return workload.build(
            aggregator=aggregator,
            num_workers=args.workers,
            num_byzantine=args.byzantine,
            attack=attack,
            learning_rate=args.learning_rate,
            lr_timescale=None,
            byzantine_slots="last",
            max_staleness=max_staleness,
            delay_schedule=delay_schedule,
            num_servers=args.num_servers,
            byzantine_servers=args.byzantine_servers,
            num_shards=args.num_shards,
            server_attack=args.server_attack,
            halt_on_nonfinite=args.halt_on_nonfinite,
            seed=args.seed,
        )
    train = make_blobs(
        args.train_size, num_classes=3, num_features=8, seed=args.seed
    )
    test = make_blobs(
        args.test_size, num_classes=3, num_features=8, seed=args.seed + 1
    )
    return build_dataset_simulation(
        SoftmaxRegressionModel(8, 3),
        train,
        aggregator=aggregator,
        num_workers=args.workers,
        num_byzantine=args.byzantine,
        attack=attack,
        batch_size=args.batch_size,
        learning_rate=args.learning_rate,
        eval_dataset=test,
        partition=args.partition,
        dirichlet_alpha=args.dirichlet_alpha,
        max_staleness=max_staleness,
        delay_schedule=delay_schedule,
        num_servers=args.num_servers,
        byzantine_servers=args.byzantine_servers,
        num_shards=args.num_shards,
        server_attack=args.server_attack,
        halt_on_nonfinite=args.halt_on_nonfinite,
        seed=args.seed,
    )


def _build_aggregator(args: argparse.Namespace):
    kwargs: dict[str, object] = {}
    if args.aggregator in ("krum", "multi-krum", "trimmed-mean",
                           "minimal-diameter", "bulyan", "kardam"):
        kwargs["f"] = args.byzantine
    if args.aggregator == "multi-krum":
        kwargs["m"] = args.m if args.m is not None else max(
            1, args.workers - args.byzantine - 2
        )
    return make_aggregator(args.aggregator, **kwargs)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    backend_report = None
    try:
        if args.tournament:
            return _run_tournament(args)
        aggregator = _build_aggregator(args)
        attack = make_attack(args.attack, {})
        if args.byzantine > 0 and attack is None:
            print(
                "error: --byzantine > 0 requires --attack", file=sys.stderr
            )
            return 2
        simulation = _build_simulation(args, aggregator, attack)
        if args.backend is not None:
            # An explicit backend routes the run through the batched
            # executor (a batch of one) so the aggregation kernels run
            # on the chosen array library.  On the numpy backend this is
            # trajectory-identical to simulation.run — the engine's
            # differential guarantee.
            backend = resolve_backend(args.backend)
            batched = BatchedSimulation([simulation], backend=backend)
            history = batched.run(args.rounds, eval_every=args.eval_every)[0]
            # Rules without a vectorized kernel aggregate through the
            # numpy per-scenario fallback no matter what was requested;
            # say so rather than implying the run used the backend.
            backend_report = (
                backend.describe()
                if batched.native_fraction == 1.0
                else f"numpy loop fallback ({aggregator.name} has no "
                f"native kernel; requested {backend.describe()})"
            )
        else:
            history = simulation.run(args.rounds, eval_every=args.eval_every)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    rounds, losses = history.series("loss")
    series = {"loss": losses}
    acc_rounds, accuracies = history.series("accuracy")
    if accuracies.size == rounds.size:
        series["error"] = 1.0 - accuracies
    print(
        format_series(
            f"{args.dataset} · {aggregator.name} · f={args.byzantine}"
            + (f" · {attack.name}" if attack else ""),
            rounds,
            series,
        )
    )
    summary_rows = [
        ["final loss", history.final_loss],
        ["rounds", len(history)],
        *([["backend", backend_report]] if backend_report is not None else []),
        ["byzantine selection rate",
         f"{100 * history.byzantine_selection_rate():.1f}%"],
    ]
    if accuracies.size:
        summary_rows.insert(1, ["final error", 1.0 - history.final_accuracy])
    print()
    print(format_table(["metric", "value"], summary_rows, title="summary"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
