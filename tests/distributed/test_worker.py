"""Tests for worker processes."""

import numpy as np
import pytest

from repro.distributed.messages import ParameterBroadcast
from repro.distributed.worker import ByzantineWorker, HonestWorker
from repro.exceptions import ConfigurationError
from repro.gradients.oracle import GaussianOracleEstimator


class TestHonestWorker:
    def test_computes_estimate(self, rng):
        est = GaussianOracleEstimator(lambda x: 2 * x, 3, sigma=0.0)
        worker = HonestWorker(2, est, rng)
        broadcast = ParameterBroadcast(round_index=5, params=np.ones(3))
        msg = worker.compute(broadcast)
        assert msg.worker_id == 2
        assert msg.round_index == 5
        np.testing.assert_array_equal(msg.vector, 2 * np.ones(3))

    def test_not_byzantine(self, rng):
        est = GaussianOracleEstimator(lambda x: x, 2, sigma=0.0)
        assert not HonestWorker(0, est, rng).is_byzantine

    def test_private_stream_isolated(self):
        est = GaussianOracleEstimator(lambda x: x, 4, sigma=1.0)
        w1 = HonestWorker(0, est, np.random.default_rng(1))
        w2 = HonestWorker(1, est, np.random.default_rng(2))
        broadcast = ParameterBroadcast(round_index=0, params=np.zeros(4))
        assert not np.array_equal(
            w1.compute(broadcast).vector, w2.compute(broadcast).vector
        )

    def test_rejects_negative_id(self, rng):
        est = GaussianOracleEstimator(lambda x: x, 2, sigma=0.0)
        with pytest.raises(ConfigurationError):
            HonestWorker(-1, est, rng)


class TestByzantineWorker:
    def test_is_byzantine(self):
        assert ByzantineWorker(3).is_byzantine

    def test_repr_mentions_kind(self):
        assert "byzantine" in repr(ByzantineWorker(1))
