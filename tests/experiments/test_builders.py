"""Tests for experiment builders."""

import numpy as np
import pytest

from repro.attacks.random_noise import GaussianAttack
from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.data.synthetic import make_blobs
from repro.exceptions import ConfigurationError
from repro.experiments.builders import (
    build_dataset_simulation,
    build_quadratic_simulation,
    model_evaluator,
    quadratic_evaluator,
)
from repro.models.quadratic import QuadraticBowl
from repro.models.softmax import SoftmaxRegressionModel


class TestQuadraticBuilder:
    def test_builds_and_runs(self):
        bowl = QuadraticBowl(5)
        sim = build_quadratic_simulation(
            bowl,
            aggregator=Krum(f=2),
            num_workers=11,
            num_byzantine=2,
            sigma=0.1,
            attack=GaussianAttack(sigma=10.0),
            seed=0,
        )
        history = sim.run(30, eval_every=10)
        assert history.final_loss < history[0].loss

    def test_evaluator_metrics(self):
        bowl = QuadraticBowl(3, optimum=np.array([1.0, 1.0, 1.0]))
        evaluate = quadratic_evaluator(bowl)
        metrics = evaluate(np.zeros(3))
        assert metrics["loss"] == pytest.approx(1.5)
        assert metrics["dist_to_opt"] == pytest.approx(np.sqrt(3))
        assert metrics["grad_norm"] == pytest.approx(np.sqrt(3))

    def test_rejects_all_byzantine(self):
        bowl = QuadraticBowl(3)
        with pytest.raises(ConfigurationError):
            build_quadratic_simulation(
                bowl,
                aggregator=Average(),
                num_workers=3,
                num_byzantine=3,
                sigma=0.1,
                attack=GaussianAttack(),
            )


class TestDatasetBuilder:
    def test_builds_and_trains(self):
        train = make_blobs(200, num_classes=3, num_features=4, spread=0.5, seed=0)
        model = SoftmaxRegressionModel(4, 3)
        sim = build_dataset_simulation(
            model,
            train,
            aggregator=Average(),
            num_workers=5,
            num_byzantine=0,
            batch_size=16,
            learning_rate=0.5,
            seed=0,
        )
        history = sim.run(60, eval_every=20)
        assert history.final_accuracy > 0.8

    def test_eval_dataset_used(self):
        train = make_blobs(100, num_classes=2, num_features=3, seed=1)
        test = make_blobs(50, num_classes=2, num_features=3, seed=2)
        model = SoftmaxRegressionModel(3, 2)
        sim = build_dataset_simulation(
            model,
            train,
            aggregator=Average(),
            num_workers=4,
            num_byzantine=0,
            eval_dataset=test,
            seed=0,
        )
        history = sim.run(5, eval_every=1)
        assert all(r.accuracy is not None for r in history)

    def test_model_evaluator(self):
        data = make_blobs(30, num_classes=2, num_features=3, seed=3)
        model = SoftmaxRegressionModel(3, 2)
        evaluate = model_evaluator(model, data)
        metrics = evaluate(np.zeros(model.dimension))
        assert "loss" in metrics and "accuracy" in metrics
