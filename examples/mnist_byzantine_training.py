"""Train an MLP digit classifier while a third of the cluster is hostile.

Reproduces the full paper's MNIST experiment on the procedural digit
dataset: 20 workers, 6 controlled by an omniscient adversary that sends
the negated gradient scaled up.  Declares the whole comparison as one
``ScenarioGrid`` on the ``mlp-mnist`` workload — the aggregator axis
carries averaging, Krum and Multi-Krum — and executes every arm in one
batched round loop via ``run_grid``.

Run:  python examples/mnist_byzantine_training.py
"""

from __future__ import annotations

from repro.engine import ScenarioGrid, run_grid
from repro.experiments import format_series, format_table

NUM_WORKERS = 20
NUM_BYZANTINE = 6  # 30 % of the cluster
ROUNDS = 300


def main() -> None:
    grid = ScenarioGrid(
        seeds=(7,),
        workload="mlp-mnist",
        workload_kwargs={
            "num_train": 1500,
            "num_eval": 400,
            "batch_size": 32,
            "hidden_sizes": (32,),
            "data_seed": 0,
        },
        attacks=(("omniscient", {"scale": 10.0}),),
        aggregators=(
            ("average", {}),
            ("krum", {}),
            ("multi-krum", {"m": 8}),
        ),
        f_values=(NUM_BYZANTINE,),
        num_workers=NUM_WORKERS,
        num_rounds=ROUNDS,
        learning_rate=0.3,
        lr_timescale=None,
    )
    print(f"training {len(grid)} arms in one batched round loop ...")
    result = run_grid(grid, mode="batched", eval_every=25)

    histories = {}
    for spec in result.specs:
        name = spec.aggregator
        if name == "multi-krum":
            name = f"multi-krum m={spec.aggregator_kwargs['m']}"
        histories[name] = result.histories[spec.label]

    rounds, _ = next(iter(histories.values())).series("accuracy")
    print()
    print(
        format_series(
            f"test error vs round — {NUM_BYZANTINE}/{NUM_WORKERS} omniscient "
            "Byzantine workers",
            rounds,
            {
                label: 1.0 - history.series("accuracy")[1]
                for label, history in histories.items()
            },
        )
    )
    print()
    print(
        format_table(
            ["rule", "final test error", "byzantine selected"],
            [
                [
                    label,
                    1.0 - history.final_accuracy,
                    f"{100 * history.byzantine_selection_rate():.1f}%",
                ]
                for label, history in histories.items()
            ],
            title="summary",
        )
    )


if __name__ == "__main__":
    main()
