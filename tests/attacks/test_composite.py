"""Tests for the composite attack."""

import numpy as np
import pytest

from repro.attacks.composite import CompositeAttack
from repro.attacks.random_noise import GaussianAttack
from repro.attacks.simple import CrashAttack, SignFlipAttack
from repro.exceptions import ConfigurationError
from tests.attacks.test_base import make_context


class TestCompositeAttack:
    def test_partitions_slots(self, rng):
        attack = CompositeAttack([(CrashAttack(), 2), (SignFlipAttack(), 1)])
        ctx = make_context(rng, num_honest=7, num_byzantine=3)
        out = attack.craft(ctx)
        # First two rows are crash zeros; third is the sign flip.
        np.testing.assert_array_equal(out[:2], np.zeros((2, 4)))
        np.testing.assert_allclose(out[2], -ctx.honest_mean)

    def test_name_lists_parts(self):
        attack = CompositeAttack([(CrashAttack(), 1), (GaussianAttack(), 2)])
        assert "1xcrash" in attack.name
        assert "2xgaussian" in attack.name

    def test_count_mismatch_raises(self, rng):
        attack = CompositeAttack([(CrashAttack(), 2)])
        ctx = make_context(rng, num_byzantine=3, num_honest=7)
        with pytest.raises(ConfigurationError, match="Byzantine slots"):
            attack.craft(ctx)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            CompositeAttack([])

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            CompositeAttack([(CrashAttack(), 0)])

    def test_rejects_non_attack(self):
        with pytest.raises(ConfigurationError):
            CompositeAttack([("not an attack", 1)])

    def test_sub_attacks_see_own_indices(self, rng):
        """Each sub-attack's context carries only its slot ids."""

        captured = {}

        class Probe(CrashAttack):
            name = "probe"

            def craft(self, context):
                captured["indices"] = context.byzantine_indices.copy()
                return super().craft(context)

        attack = CompositeAttack([(CrashAttack(), 1), (Probe(), 2)])
        ctx = make_context(rng, num_honest=6, num_byzantine=3)
        attack.craft(ctx)
        np.testing.assert_array_equal(captured["indices"], ctx.byzantine_indices[1:])
