"""Multinomial (softmax) regression."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.models.base import ClassifierMixin, Model

__all__ = ["SoftmaxRegressionModel"]


class SoftmaxRegressionModel(ClassifierMixin, Model):
    """Linear softmax classifier: cross-entropy on ``X W + b`` logits.

    Parameters are packed as ``[W.ravel(), b]`` with ``W`` of shape
    ``(num_features, num_classes)``.
    """

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        *,
        l2: float = 0.0,
        fit_bias: bool = True,
    ):
        if num_features < 1 or num_classes < 2:
            raise ConfigurationError(
                f"need num_features >= 1 and num_classes >= 2, got "
                f"({num_features}, {num_classes})"
            )
        if l2 < 0:
            raise ConfigurationError(f"l2 must be non-negative, got {l2}")
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        self.l2 = float(l2)
        self.fit_bias = bool(fit_bias)

    @property
    def dimension(self) -> int:
        d = self.num_features * self.num_classes
        return d + (self.num_classes if self.fit_bias else 0)

    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, 0.01, size=self.dimension)

    def _split(self, params: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        params = np.asarray(params, dtype=np.float64)
        if params.shape != (self.dimension,):
            raise DimensionMismatchError(
                f"params must have shape ({self.dimension},), got {params.shape}"
            )
        w_size = self.num_features * self.num_classes
        weights = params[:w_size].reshape(self.num_features, self.num_classes)
        bias = params[w_size:] if self.fit_bias else np.zeros(self.num_classes)
        return weights, bias

    def logits(self, params: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        weights, bias = self._split(params)
        return np.asarray(inputs, dtype=np.float64) @ weights + bias

    def _probabilities(self, logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def loss(self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray) -> float:
        weights, _bias = self._split(params)
        logits = self.logits(params, inputs)
        targets = np.asarray(targets).astype(np.int64)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=1))
        batch = len(logits)
        nll = log_norm - shifted[np.arange(batch), targets]
        return float(nll.mean() + 0.5 * self.l2 * np.sum(weights**2))

    def gradient(
        self, params: np.ndarray, inputs: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        weights, _bias = self._split(params)
        inputs = np.asarray(inputs, dtype=np.float64)
        targets = np.asarray(targets).astype(np.int64)
        probs = self._probabilities(self.logits(params, inputs))
        batch = len(inputs)
        probs[np.arange(batch), targets] -= 1.0
        probs /= batch
        grad_w = inputs.T @ probs + self.l2 * weights
        if not self.fit_bias:
            return grad_w.ravel()
        grad_b = probs.sum(axis=0)
        return np.concatenate([grad_w.ravel(), grad_b])

    def predict(self, params: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        return np.argmax(self.logits(params, inputs), axis=1).astype(np.int64)
