"""Tests for the command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.dataset == "mnist-like"
        assert args.aggregator == "krum"
        assert args.byzantine == 0

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "imagenet"])

    def test_rejects_unknown_attack(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--attack", "quantum"])


class TestMain:
    def test_blobs_run_prints_summary(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--aggregator", "average",
                "--workers", "5",
                "--rounds", "20",
                "--train-size", "150",
                "--test-size", "60",
                "--eval-every", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "summary" in out
        assert "final loss" in out

    def test_krum_under_attack(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--aggregator", "krum",
                "--workers", "9",
                "--byzantine", "2",
                "--attack", "gaussian",
                "--rounds", "20",
                "--train-size", "150",
                "--test-size", "60",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "krum" in out
        assert "byzantine selection rate" in out

    def test_byzantine_without_attack_errors(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--workers", "9",
                "--byzantine", "2",
                "--rounds", "5",
                "--train-size", "100",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "requires --attack" in err

    def test_invalid_tolerance_reports_cleanly(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--aggregator", "krum",
                "--workers", "5",
                "--byzantine", "2",
                "--attack", "gaussian",
                "--rounds", "5",
                "--train-size", "100",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err

    def test_multikrum_default_m(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--aggregator", "multi-krum",
                "--workers", "9",
                "--byzantine", "2",
                "--attack", "gaussian",
                "--rounds", "10",
                "--train-size", "120",
            ]
        )
        assert code == 0
        assert "multi-krum" in capsys.readouterr().out


class TestPartitionFlags:
    def test_partition_flag_parses(self):
        args = build_parser().parse_args(
            ["--partition", "dirichlet", "--dirichlet-alpha", "0.3"]
        )
        assert args.partition == "dirichlet"
        assert args.dirichlet_alpha == 0.3

    def test_rejects_unknown_partition(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--partition", "striped"])

    def test_dirichlet_run_succeeds(self, capsys):
        code = main(
            [
                "--dataset", "blobs",
                "--aggregator", "average",
                "--workers", "5",
                "--rounds", "10",
                "--train-size", "150",
                "--test-size", "60",
                "--partition", "dirichlet",
                "--dirichlet-alpha", "0.4",
                "--eval-every", "5",
            ]
        )
        assert code == 0
        assert "summary" in capsys.readouterr().out

    def test_spambase_routes_through_workload_registry(self, capsys):
        code = main(
            [
                "--dataset", "spambase-like",
                "--aggregator", "krum",
                "--workers", "6",
                "--byzantine", "1",
                "--attack", "gaussian",
                "--rounds", "8",
                "--train-size", "120",
                "--test-size", "40",
                "--eval-every", "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "spambase-like" in out
