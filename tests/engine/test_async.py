"""Async-rounds engine tests: grid axes, degenerate identity, differential.

The two load-bearing guarantees:

* ``max_staleness = 0`` async mode (a delay schedule configured, but the
  bounded-staleness window closed) is **bit-for-bit identical** to the
  synchronous loop on the reference grid — the degenerate case must not
  fork trajectories;
* the batched executor reproduces the loop executor's async
  trajectories bit-for-bit, with staleness-aware (Kardam) cells riding
  the per-scenario fallback, reported via ``native_fraction``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.simulator import TrainingSimulation
from repro.engine import BatchedSimulation, ScenarioGrid, run_grid
from repro.engine.runner import build_scenario_simulation
from repro.exceptions import ConfigurationError, SimulationError


def _reference_grid(**overrides) -> ScenarioGrid:
    """A small grid covering selection, statistical and kardam rules
    under two attacks."""
    settings = dict(
        seeds=(0, 1),
        attacks=(
            ("gaussian", {"sigma": 150.0}),
            ("omniscient", {"scale": 5.0}),
        ),
        aggregators=(
            ("krum", {}),
            ("coordinate-median", {}),
            ("kardam", {"inner": "krum"}),
        ),
        f_values=(2,),
        num_workers=11,
        dimension=12,
        sigma=0.4,
        num_rounds=12,
        learning_rate=0.1,
        lr_timescale=100.0,
    )
    settings.update(overrides)
    return ScenarioGrid(**settings)


def _identical(result_a, result_b, *, by_position=False) -> bool:
    labels_a = [spec.label for spec in result_a.specs]
    labels_b = [spec.label for spec in result_b.specs]
    pairs = (
        zip(labels_a, labels_b) if by_position else zip(labels_a, labels_a)
    )
    for label_a, label_b in pairs:
        if (
            result_a.final_params[label_a].tobytes()
            != result_b.final_params[label_b].tobytes()
        ):
            return False
        history_a = result_a.histories[label_a]
        history_b = result_b.histories[label_b]
        if len(history_a) != len(history_b):
            return False
        if any(a != b for a, b in zip(history_a, history_b)):
            return False
    return True


class TestGridAxes:
    def test_sync_labels_unchanged(self):
        grid = _reference_grid()
        for spec in grid.scenarios():
            assert "stale" not in spec.label
            assert spec.async_label is None

    def test_async_label_encodes_window_and_schedule(self):
        grid = _reference_grid(
            max_staleness=2,
            delay_schedule="constant",
            delay_kwargs={"tau": 2},
        )
        spec = grid.scenarios()[0]
        assert spec.label.endswith("|stale<=2|constant(tau=2)")

    def test_staleness_axis_expands_cells(self):
        base = _reference_grid()
        swept = _reference_grid(
            max_staleness=0,
            max_staleness_values=(0, 1, 4),
            delay_schedule="random",
            delay_kwargs={"max_delay": 4},
        )
        assert len(swept) == 3 * len(base)
        assert len(swept.scenarios()) == len(swept)
        labels = {spec.label for spec in swept.scenarios()}
        assert len(labels) == len(swept)

    def test_delay_schedules_axis(self):
        grid = _reference_grid(
            max_staleness=3,
            delay_schedules=(
                (None, {}),
                ("constant", {"tau": 2}),
                ("random", {"max_delay": 3}),
            ),
        )
        assert len(grid) == 3 * len(_reference_grid())

    def test_axis_conflicts_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            _reference_grid(
                max_staleness=1, max_staleness_values=(0, 1)
            )
        with pytest.raises(ConfigurationError, match="not both"):
            _reference_grid(
                delay_schedule="constant",
                delay_schedules=(("constant", {}),),
            )

    def test_bad_delay_spec_fails_at_declaration(self):
        with pytest.raises(ConfigurationError, match="available"):
            _reference_grid(delay_schedule="no-such-schedule")
        with pytest.raises(ConfigurationError, match="delay schedule"):
            _reference_grid(
                delay_schedule="constant", delay_kwargs={"bogus": 1}
            )
        with pytest.raises(ConfigurationError, match="max_staleness"):
            _reference_grid(max_staleness=-1)

    def test_delay_kwargs_without_schedule_rejected(self):
        with pytest.raises(ConfigurationError, match="without a"):
            _reference_grid(delay_kwargs={"tau": 1})


class TestDegenerateIdentity:
    """max_staleness = 0 async mode == the synchronous loop, bit for bit."""

    def test_zero_staleness_matches_sync_loop(self):
        sync = run_grid(_reference_grid(), mode="loop", eval_every=4)
        degenerate = run_grid(
            _reference_grid(
                max_staleness=0,
                delay_schedule="random",
                delay_kwargs={"max_delay": 4},
            ),
            mode="loop",
            eval_every=4,
        )
        assert _identical(sync, degenerate, by_position=True)

    def test_zero_staleness_matches_sync_batched(self):
        sync = run_grid(_reference_grid(), mode="batched", eval_every=4)
        degenerate = run_grid(
            _reference_grid(
                max_staleness=0,
                delay_schedule="random",
                delay_kwargs={"max_delay": 4},
            ),
            mode="batched",
            eval_every=4,
        )
        assert _identical(sync, degenerate, by_position=True)


class TestAsyncDifferential:
    """Loop and batched executors agree bit-for-bit on async grids."""

    @pytest.mark.parametrize(
        "delay_schedule,delay_kwargs",
        [
            ("constant", {"tau": 2}),
            ("periodic", {"tau": 3, "period": 3}),
            ("random", {"max_delay": 4}),
        ],
    )
    def test_loop_equals_batched(self, delay_schedule, delay_kwargs):
        grid = _reference_grid(
            max_staleness=3,
            delay_schedule=delay_schedule,
            delay_kwargs=delay_kwargs,
        )
        loop = run_grid(grid, mode="loop", eval_every=4)
        batched = run_grid(grid, mode="batched", eval_every=4)
        assert _identical(loop, batched)

    def test_staleness_sweep_loop_equals_batched(self):
        grid = _reference_grid(
            max_staleness_values=(0, 1, 4),
            delay_schedule="random",
            delay_kwargs={"max_delay": 4},
        )
        loop = run_grid(grid, mode="loop", eval_every=4)
        batched = run_grid(grid, mode="batched", eval_every=4)
        assert _identical(loop, batched)

    def test_kardam_cells_fall_back_native_cells_stay(self):
        grid = _reference_grid(
            max_staleness=2,
            delay_schedule="constant",
            delay_kwargs={"tau": 2},
        )
        batched = run_grid(grid, mode="batched", eval_every=4)
        # 2 of 3 aggregator entries have native kernels; kardam rides
        # the loop fallback.
        assert batched.native_fraction == pytest.approx(2.0 / 3.0)

    def test_minibatch_workload_async_differential(self):
        grid = ScenarioGrid(
            seeds=(0,),
            workloads=(
                ("logistic-spambase", {"num_train": 96, "num_eval": 32,
                                       "batch_size": 8}),
            ),
            attacks=(("gaussian", {"sigma": 20.0}),),
            aggregators=(("krum", {}), ("kardam", {"inner": "krum"})),
            f_values=(2,),
            num_workers=9,
            num_rounds=8,
            max_staleness=2,
            delay_schedule="random",
            delay_kwargs={"max_delay": 3},
        )
        loop = run_grid(grid, mode="loop", eval_every=4)
        batched = run_grid(grid, mode="batched", eval_every=4)
        assert _identical(loop, batched)

    def test_staleness_actually_changes_trajectories(self):
        sync = run_grid(_reference_grid(), mode="batched", eval_every=4)
        stale = run_grid(
            _reference_grid(
                max_staleness=4,
                delay_schedule="constant",
                delay_kwargs={"tau": 4},
            ),
            mode="batched",
            eval_every=4,
        )
        assert any(
            sync.final_params[s.label].tobytes()
            != stale.final_params[a.label].tobytes()
            for s, a in zip(sync.specs, stale.specs)
        )


class TestAsyncSimulation:
    def test_stale_messages_within_window_accepted(self):
        spec = _reference_grid(
            max_staleness=2,
            delay_schedule="constant",
            delay_kwargs={"tau": 2},
        ).scenarios()[0]
        sim = build_scenario_simulation(spec)
        history = sim.run(6, eval_every=3)
        assert len(history) == 6

    def test_effective_staleness_clips_to_window_and_time(self):
        spec = _reference_grid(
            max_staleness=1,
            delay_schedule="constant",
            delay_kwargs={"tau": 5},
        ).scenarios()[0]
        sim = build_scenario_simulation(spec)
        assert sim.effective_staleness(0, 0) == 0  # no history yet
        assert sim.effective_staleness(0, 10) == 1  # clipped to window

    def test_batched_history_window_is_bounded(self):
        grid = _reference_grid(
            max_staleness=3,
            delay_schedule="random",
            delay_kwargs={"max_delay": 3},
        )
        sims = [build_scenario_simulation(s) for s in grid.scenarios()[:3]]
        batched = BatchedSimulation(sims)
        batched.run(10, eval_every=5)
        assert len(batched._history) <= 4

    def test_freshness_guard_still_trips_after_async_batch(self):
        grid = _reference_grid(
            max_staleness=2,
            delay_schedule="constant",
            delay_kwargs={"tau": 1},
        )
        sims = [build_scenario_simulation(s) for s in grid.scenarios()[:2]]
        BatchedSimulation(sims).run(3, eval_every=2)
        with pytest.raises(ConfigurationError, match="freshly built"):
            BatchedSimulation(sims)
