"""Mini-batch gradient estimator over a worker's data shard."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.gradients.base import GradientEstimator
from repro.models.base import Model

__all__ = ["MinibatchEstimator"]


class MinibatchEstimator(GradientEstimator):
    """Gradient of ``model``'s loss on a uniform random mini-batch.

    Samples ``batch_size`` indices *with replacement* from the shard so
    the per-draw distribution is exactly i.i.d. uniform — the assumption
    the paper makes for correct workers ("each sample of data used for
    computing the gradient is drawn uniformly and independently").

    ``expected`` returns the full-shard gradient, which is the estimator
    mean under uniform sampling.
    """

    def __init__(
        self,
        model: Model,
        inputs: np.ndarray,
        targets: np.ndarray,
        *,
        batch_size: int,
    ):
        inputs = np.asarray(inputs, dtype=np.float64)
        targets = np.asarray(targets)
        if inputs.ndim != 2:
            raise DimensionMismatchError(f"inputs must be (n, d), got {inputs.shape}")
        if len(inputs) != len(targets):
            raise DimensionMismatchError(
                f"{len(inputs)} inputs vs {len(targets)} targets"
            )
        if len(inputs) == 0:
            raise ConfigurationError("estimator needs a non-empty data shard")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.inputs = inputs
        self.targets = targets
        self.batch_size = int(batch_size)

    @property
    def dimension(self) -> int:
        return self.model.dimension

    @property
    def shard_size(self) -> int:
        return len(self.inputs)

    def draw_indices(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one mini-batch worth of shard indices from ``rng``.

        Split out from :meth:`estimate` so the batched engine executor
        can consume every worker's RNG stream in loop order first and
        compute the gradients afterwards — the draw is the only
        stream-consuming step, so the two-phase schedule is bit-for-bit
        identical to interleaved ``estimate`` calls.
        """
        return rng.integers(0, self.shard_size, size=self.batch_size)

    def gradient_at(self, params: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """The model gradient on the mini-batch at ``indices``."""
        return self.model.gradient(
            params, self.inputs[indices], self.targets[indices]
        )

    def estimate(self, params: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return self.gradient_at(params, self.draw_indices(rng))

    def expected(self, params: np.ndarray) -> np.ndarray:
        return self.model.gradient(params, self.inputs, self.targets)
