"""Tests for the attack registry and its error taxonomy."""

import pytest

from repro.attacks.base import Attack, BenignAttack
from repro.attacks.random_noise import GaussianAttack
from repro.attacks.registry import (
    attack_factory,
    available_attacks,
    make_attack,
    register_attack,
)
from repro.exceptions import ConfigurationError


class TestRegistryRoundTrip:
    def test_builtins_registered(self):
        names = available_attacks()
        for expected in ("benign", "gaussian", "omniscient", "sign-flip"):
            assert expected in names

    def test_make_by_name_with_kwargs(self):
        attack = make_attack("gaussian", {"sigma": 5.0})
        assert isinstance(attack, GaussianAttack)
        assert attack.sigma == 5.0

    def test_none_is_the_attack_free_arm(self):
        assert make_attack(None) is None
        assert make_attack(None, {"ignored": 1}) is None

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigurationError, match="available"):
            make_attack("no-such-attack")

    def test_factory_lookup(self):
        assert attack_factory("benign") is BenignAttack


class TestMakeAttackErrorTaxonomy:
    """Regression: kwargs that do not fit the factory signature used to
    leak the factory's raw ``TypeError``; they must surface as
    ``ConfigurationError`` naming the attack and its parameters."""

    def test_unknown_kwarg(self):
        with pytest.raises(ConfigurationError) as excinfo:
            make_attack("gaussian", {"sigmah": 50.0})
        message = str(excinfo.value)
        assert "gaussian" in message
        assert "sigma" in message  # the accepted parameters are listed
        assert isinstance(excinfo.value, ValueError)  # taxonomy: config error

    def test_missing_required_kwarg(self):
        class NeedsTarget(Attack):
            def __init__(self, target):
                self.target = target

            def craft(self, context):
                raise NotImplementedError

        register_attack("needs-target-test", NeedsTarget)
        try:
            with pytest.raises(ConfigurationError) as excinfo:
                make_attack("needs-target-test")
            message = str(excinfo.value)
            assert "needs-target-test" in message
            assert "target" in message
            # And the well-formed call still works.
            built = make_attack("needs-target-test", {"target": 3})
            assert built.target == 3
        finally:
            from repro.attacks import registry

            registry._REGISTRY.pop("needs-target-test", None)

    def test_wrapped_error_chains_the_original(self):
        with pytest.raises(ConfigurationError) as excinfo:
            make_attack("benign", {"unexpected": True})
        assert isinstance(excinfo.value.__cause__, TypeError)


class TestCompositeRegistryEntry:
    """The "composite" entry builds mixed failure modes from plain data,
    resolving each (name, kwargs, count) part through the registry."""

    def test_builds_composite_from_part_triples(self):
        attack = make_attack(
            "composite",
            {
                "parts": (
                    ("crash", {}, 2),
                    ("sign-flip", {"scale": 8.0}, 1),
                )
            },
        )
        assert attack.name == "composite(2xcrash+1xsign-flip(scale=8))"

    def test_unknown_part_name_surfaces(self):
        with pytest.raises(ConfigurationError, match="unknown attack"):
            make_attack("composite", {"parts": (("quantum", {}, 1),)})

    def test_malformed_part_rejected(self):
        with pytest.raises(ConfigurationError, match="triples"):
            make_attack("composite", {"parts": (("crash", {}),)})

    def test_noninteger_count_rejected(self):
        with pytest.raises(ConfigurationError, match="integers"):
            make_attack("composite", {"parts": (("crash", {}, "two"),)})
        with pytest.raises(ConfigurationError, match="integers"):
            make_attack("composite", {"parts": (("crash", {}, 2.5),)})

    def test_noniterable_parts_rejected(self):
        with pytest.raises(ConfigurationError, match="sequence"):
            make_attack("composite", {"parts": 5})
