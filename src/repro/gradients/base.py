"""Abstract gradient estimator."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["GradientEstimator"]


class GradientEstimator(ABC):
    """A stochastic estimator of the cost gradient at given parameters.

    Implementations must be *unbiased* for the model assumptions of the
    paper to hold: ``E[estimate(x)] == expected(x)`` where ``expected``
    is the true (or full-shard) gradient.  The ``rng`` passed to
    ``estimate`` is the worker's private stream, which is what makes the
    per-worker estimates i.i.d.
    """

    @property
    @abstractmethod
    def dimension(self) -> int:
        """Dimensionality d of the parameter/gradient vectors."""

    @abstractmethod
    def estimate(self, params: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw one stochastic gradient estimate at ``params``."""

    @abstractmethod
    def expected(self, params: np.ndarray) -> np.ndarray:
        """The mean of the estimator at ``params`` (the true gradient)."""

    def empirical_sigma(
        self,
        params: np.ndarray,
        rng: np.random.Generator,
        *,
        num_samples: int = 64,
    ) -> float:
        """Monte-Carlo estimate of the paper's local deviation σ(x).

        Defined by ``d σ²(x) = E‖G(x, ξ) − ∇Q(x)‖²`` (Section 4 of the
        paper); used to check the variance condition of Prop. 4.2/4.3.
        """
        mean = self.expected(params)
        deviations = [
            float(np.sum((self.estimate(params, rng) - mean) ** 2))
            for _ in range(num_samples)
        ]
        return float(np.sqrt(np.mean(deviations) / self.dimension))
