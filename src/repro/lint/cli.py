"""``python -m repro.lint`` — the invariant linter's command line.

Exit codes follow the usual linter convention: 0 clean, 1 findings,
2 usage/configuration error (unknown rule names, missing paths).

Examples::

    python -m repro.lint src
    python -m repro.lint src --select error-taxonomy,rng-discipline
    python -m repro.lint src --ignore backend-purity --format json
    python -m repro.lint src --output lint-report.json   # text + JSON file
    python -m repro.lint src --format sarif --output lint.sarif --jobs 4
    python -m repro.lint src --no-project     # module-local rules only
    python -m repro.lint --list-rules
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.lint.engine import lint_paths
from repro.lint.registry import rule_descriptions
from repro.lint.sarif import as_sarif

__all__ = ["build_parser", "main"]


def _rule_list(value: str) -> list[str]:
    names = [name.strip() for name in value.split(",") if name.strip()]
    if not names:
        raise argparse.ArgumentTypeError(
            "expected a comma-separated list of rule names"
        )
    return names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based linter enforcing the repro library's code "
            "invariants (backend purity, RNG discipline, the error "
            "taxonomy, stateful-attack declarations, registry factory "
            "contracts)."
        ),
        epilog=(
            "Suppress a single line with '# repro-lint: ignore[rule]'; "
            "suppressions that no longer match a finding are themselves "
            "reported (unused-suppression)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories recurse over *.py)",
    )
    parser.add_argument(
        "--select",
        type=_rule_list,
        default=None,
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=_rule_list,
        default=None,
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help=(
            "also write the report to FILE — SARIF when --format sarif, "
            "the JSON report otherwise"
        ),
    )
    parser.add_argument(
        "--project",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "run the whole-program rules (registry-drift, "
            "seeded-query-purity, rng-stream-order, loop-batched-pairing); "
            "--no-project lints each file in isolation"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the per-file pass (default: 1; output "
            "is identical for any N)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules with descriptions and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, description in rule_descriptions().items():
            print(f"{name:28s} {description}")
        return 0
    if not args.paths:
        print(
            "repro-lint: error: no paths given (try 'python -m repro.lint "
            "src')",
            file=sys.stderr,
        )
        return 2

    try:
        report = lint_paths(
            args.paths,
            select=args.select,
            ignore=args.ignore,
            project=args.project,
            jobs=args.jobs,
        )
    except ConfigurationError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2

    if args.output is not None:
        serialized = (
            as_sarif(report) if args.format == "sarif" else report.as_json()
        )
        Path(args.output).write_text(serialized + "\n", encoding="utf-8")
    if args.format == "sarif":
        print(as_sarif(report))
    elif args.format == "json":
        print(report.as_json())
    else:
        for finding in report.findings:
            print(finding.render())
        total = len(report.findings)
        noun = "finding" if total == 1 else "findings"
        print(
            f"repro-lint: {total} {noun} in {report.files_checked} "
            f"file(s) checked"
        )
    return 1 if report.findings else 0
