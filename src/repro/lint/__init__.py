"""repro-lint: AST-based enforcement of the library's code invariants.

The invariants the codebase rests on — kernels speak the
:class:`~repro.backend.ArrayBackend` namespace, randomness flows through
seeded :mod:`repro.utils.rng` streams, errors use the
:class:`~repro.exceptions.ReproError` taxonomy, stateful attacks declare
themselves, registry factories validate kwargs — were each born from a
real bug and enforced only by convention.  This package makes them
machine-checked: a pluggable rule registry (mirroring the
aggregator/attack/workload/backend/delay registries), a
``python -m repro.lint`` CLI, and per-line
``# repro-lint: ignore[rule]`` suppressions with an unused-suppression
audit.  ``tests/lint/test_codebase_clean.py`` runs it over ``src/`` as a
gate, so a fixed bug class cannot be reintroduced.
"""

from __future__ import annotations

from repro.lint import rules as _builtin_rules  # noqa: F401
from repro.lint.base import LintRule, ModuleContext, ProjectRule
from repro.lint.engine import (
    LintReport,
    collect_python_files,
    lint_paths,
    lint_source,
    resolve_rules,
)
from repro.lint.findings import Finding
from repro.lint.project import (
    Document,
    ProjectContext,
    build_project_context,
)
from repro.lint.registry import (
    available_rules,
    make_rule,
    register_rule,
    rule_descriptions,
    rule_factory,
)
from repro.lint.sarif import as_sarif, sarif_report

__all__ = [
    "Finding",
    "LintRule",
    "ProjectRule",
    "ModuleContext",
    "ProjectContext",
    "Document",
    "build_project_context",
    "LintReport",
    "lint_source",
    "lint_paths",
    "collect_python_files",
    "resolve_rules",
    "register_rule",
    "available_rules",
    "rule_factory",
    "make_rule",
    "rule_descriptions",
    "sarif_report",
    "as_sarif",
]
