"""Worker processes: correct and Byzantine.

A correct worker computes ``V = G(x_t, ξ)`` from its private estimator
and RNG stream.  A Byzantine worker is a *placeholder* whose proposals
are crafted collectively by the round's :class:`~repro.attacks.Attack` —
matching the paper's model where Byzantine workers collaborate and see
everything.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.distributed.messages import GradientMessage, ParameterBroadcast
from repro.exceptions import ConfigurationError
from repro.gradients.base import GradientEstimator

__all__ = ["Worker", "HonestWorker", "ByzantineWorker"]


class Worker(ABC):
    """A worker slot in the cluster, identified by its integer id."""

    def __init__(self, worker_id: int):
        if worker_id < 0:
            raise ConfigurationError(f"worker_id must be >= 0, got {worker_id}")
        self.worker_id = int(worker_id)

    @property
    @abstractmethod
    def is_byzantine(self) -> bool:
        """Whether this slot is controlled by the adversary."""

    def __repr__(self) -> str:
        kind = "byzantine" if self.is_byzantine else "honest"
        return f"{type(self).__name__}(id={self.worker_id}, {kind})"


class HonestWorker(Worker):
    """A correct worker: unbiased gradient estimates from a private stream."""

    def __init__(
        self,
        worker_id: int,
        estimator: GradientEstimator,
        rng: np.random.Generator,
    ):
        super().__init__(worker_id)
        self.estimator = estimator
        self.rng = rng

    @property
    def is_byzantine(self) -> bool:
        return False

    def compute(self, broadcast: ParameterBroadcast) -> GradientMessage:
        """React to a parameter broadcast with a gradient estimate."""
        vector = self.estimator.estimate(broadcast.params, self.rng)
        return GradientMessage(
            round_index=broadcast.round_index,
            worker_id=self.worker_id,
            vector=vector,
        )


class ByzantineWorker(Worker):
    """An adversary-controlled slot.

    It holds no estimator: the simulator invokes the attack once per
    round with full knowledge of the honest proposals and distributes the
    crafted vectors to these slots.
    """

    @property
    def is_byzantine(self) -> bool:
        return True
