"""Tests for message types."""

import numpy as np
import pytest

from repro.distributed.messages import GradientMessage, ParameterBroadcast
from repro.exceptions import DimensionMismatchError


class TestParameterBroadcast:
    def test_stores_fields(self):
        msg = ParameterBroadcast(round_index=3, params=np.ones(4))
        assert msg.round_index == 3
        assert msg.params.dtype == np.float64

    def test_rejects_2d_params(self):
        with pytest.raises(DimensionMismatchError):
            ParameterBroadcast(round_index=0, params=np.ones((2, 2)))

    def test_frozen(self):
        msg = ParameterBroadcast(round_index=0, params=np.ones(2))
        with pytest.raises(AttributeError):
            msg.round_index = 1


class TestGradientMessage:
    def test_stores_fields(self):
        msg = GradientMessage(round_index=1, worker_id=4, vector=np.zeros(3))
        assert msg.worker_id == 4
        assert msg.vector.shape == (3,)

    def test_rejects_2d_vector(self):
        with pytest.raises(DimensionMismatchError):
            GradientMessage(round_index=0, worker_id=0, vector=np.ones((2, 2)))
