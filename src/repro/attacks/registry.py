"""Name-based attack factory shared by configs, the CLI and the engine.

Mirrors :mod:`repro.core.registry` for attacks: a scenario names a
strategy ("gaussian", "omniscient", ...) plus keyword arguments, and the
registry builds the :class:`~repro.attacks.base.Attack`.  Only attacks
whose constructors take plain scalars are registered — strategies that
need runtime objects (models, data shards) are built directly by the
benches that use them.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Mapping

from repro.attacks.base import Attack
from repro.exceptions import ConfigurationError

__all__ = [
    "register_attack",
    "available_attacks",
    "attack_factory",
    "make_attack",
]

_REGISTRY: dict[str, Callable[..., Attack]] = {}


def register_attack(name: str, factory: Callable[..., Attack]) -> None:
    """Register a strategy under ``name``; later registrations override."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"attack name must be a non-empty string, got {name!r}"
        )
    _REGISTRY[name] = factory


def available_attacks() -> list[str]:
    """Sorted list of registered strategy names."""
    return sorted(_REGISTRY)


def attack_factory(name: str) -> Callable[..., Attack]:
    """The registered factory for ``name`` (for signature introspection)."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown attack {name!r}; available: {available_attacks()}"
        )
    return _REGISTRY[name]


def _accepted_parameters(factory: Callable[..., Attack]) -> str:
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins without introspectable sigs
        return "unknown"
    return ", ".join(parameters) or "none"


def make_attack(
    name: str | None, kwargs: Mapping[str, object] | None = None
) -> Attack | None:
    """Build a strategy by name, e.g. ``make_attack("gaussian", {"sigma": 50})``.

    ``name=None`` returns ``None`` (the attack-free arm), so callers can
    thread an optional attack spec straight through.  Keyword arguments
    that do not fit the factory's signature (unknown names, missing
    required parameters) raise :class:`ConfigurationError` naming the
    attack and the parameters it accepts, instead of leaking the
    factory's raw ``TypeError`` — a bad scenario spec is a configuration
    mistake, and callers catching library errors should see it as one.
    """
    if name is None:
        return None
    factory = attack_factory(name)
    resolved = dict(kwargs or {})
    try:
        inspect.signature(factory).bind(**resolved)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid arguments for attack {name!r}: {error}; "
            f"accepted parameters: {_accepted_parameters(factory)}"
        ) from error
    except ValueError:  # signature unavailable; let the call itself check
        pass
    return factory(**resolved)


def _register_builtins() -> None:
    # Imported lazily to avoid a circular import at package load.
    from repro.attacks.base import BenignAttack
    from repro.attacks.collusion import CollusionAttack
    from repro.attacks.modern import InnerProductAttack, LittleIsEnoughAttack
    from repro.attacks.omniscient import OmniscientAttack
    from repro.attacks.random_noise import GaussianAttack
    from repro.attacks.simple import (
        CrashAttack,
        NonFiniteAttack,
        SignFlipAttack,
        StragglerAttack,
    )

    register_attack("benign", BenignAttack)
    register_attack("gaussian", GaussianAttack)
    register_attack("sign-flip", SignFlipAttack)
    register_attack("crash", CrashAttack)
    register_attack("non-finite", NonFiniteAttack)
    register_attack("straggler", StragglerAttack)
    register_attack("collusion", CollusionAttack)
    register_attack("omniscient", OmniscientAttack)
    register_attack("little-is-enough", LittleIsEnoughAttack)
    register_attack("inner-product", InnerProductAttack)


_register_builtins()
