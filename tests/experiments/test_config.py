"""Tests for experiment configuration."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import SGDExperimentConfig


def _config(**overrides):
    defaults = dict(
        num_workers=11,
        num_byzantine=2,
        num_rounds=50,
        aggregator="krum",
        aggregator_kwargs={"f": 2},
        attack="gaussian",
    )
    defaults.update(overrides)
    return SGDExperimentConfig(**defaults)


class TestSGDExperimentConfig:
    def test_valid_config(self):
        config = _config()
        assert config.num_honest == 9

    def test_rejects_f_ge_n(self):
        with pytest.raises(ConfigurationError):
            _config(num_byzantine=11)

    def test_rejects_byzantine_without_attack(self):
        with pytest.raises(ConfigurationError, match="attack"):
            _config(attack=None)

    def test_f_zero_without_attack_is_fine(self):
        config = _config(num_byzantine=0, attack=None)
        assert config.num_honest == 11

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ConfigurationError):
            _config(learning_rate=0.0)

    def test_rejects_bad_rounds(self):
        with pytest.raises(ConfigurationError):
            _config(num_rounds=0)

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigurationError):
            _config(batch_size=0)

    def test_frozen(self):
        config = _config()
        with pytest.raises(AttributeError):
            config.num_workers = 5


class TestPartitionKnobs:
    def test_defaults(self):
        config = _config()
        assert config.partition == "iid"
        assert config.dirichlet_alpha == 0.5

    def test_rejects_unknown_partition(self):
        with pytest.raises(ConfigurationError, match="partition"):
            _config(partition="striped")

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ConfigurationError, match="dirichlet_alpha"):
            _config(dirichlet_alpha=0.0)


class TestAsyncConfigFields:
    def test_defaults_are_synchronous(self):
        config = SGDExperimentConfig(
            num_workers=10, num_byzantine=0, num_rounds=5, aggregator="krum"
        )
        assert config.max_staleness == 0
        assert config.delay_schedule is None
        assert config.halt_on_nonfinite is False

    def test_negative_staleness_rejected(self):
        with pytest.raises(ConfigurationError, match="max_staleness"):
            SGDExperimentConfig(
                num_workers=10, num_byzantine=0, num_rounds=5,
                aggregator="krum", max_staleness=-1,
            )

    def test_delay_kwargs_require_schedule(self):
        with pytest.raises(ConfigurationError, match="delay_kwargs"):
            SGDExperimentConfig(
                num_workers=10, num_byzantine=0, num_rounds=5,
                aggregator="krum", delay_kwargs={"tau": 1},
            )

    def test_bad_delay_schedule_fails_at_declaration(self):
        with pytest.raises(ConfigurationError, match="available"):
            SGDExperimentConfig(
                num_workers=10, num_byzantine=0, num_rounds=5,
                aggregator="krum", delay_schedule="no-such-schedule",
            )
        with pytest.raises(ConfigurationError, match="delay schedule"):
            SGDExperimentConfig(
                num_workers=10, num_byzantine=0, num_rounds=5,
                aggregator="krum", delay_schedule="constant",
                delay_kwargs={"bogus": 1},
            )

    def test_valid_async_config_accepted(self):
        config = SGDExperimentConfig(
            num_workers=10, num_byzantine=0, num_rounds=5,
            aggregator="krum", max_staleness=3,
            delay_schedule="random", delay_kwargs={"max_delay": 3},
            halt_on_nonfinite=True,
        )
        assert config.max_staleness == 3


class TestTopologyConfigFields:
    def _config(self, **overrides):
        kwargs = dict(
            num_workers=10, num_byzantine=0, num_rounds=5,
            aggregator="krum",
        )
        kwargs.update(overrides)
        return SGDExperimentConfig(**kwargs)

    def test_defaults_are_the_degenerate_complete_graph(self):
        config = self._config()
        assert config.topology == "complete"
        assert not config.is_gossip
        assert config.topology_kwargs == {}

    def test_gossip_config_accepted(self):
        config = self._config(topology="ring", degree=6)
        assert config.is_gossip
        assert config.topology_kwargs == {"degree": 6}

    def test_unknown_topology_fails_at_declaration(self):
        with pytest.raises(ConfigurationError, match="available"):
            self._config(topology="torus")

    def test_knob_for_wrong_family_rejected(self):
        with pytest.raises(ConfigurationError, match="edge_prob"):
            self._config(topology="ring", edge_prob=0.5)
        with pytest.raises(ConfigurationError, match="degree"):
            self._config(topology="erdos-renyi", degree=4)

    def test_bad_knob_value_fails_at_declaration(self):
        with pytest.raises(ConfigurationError):
            self._config(topology="ring", degree=3)  # odd

    def test_gossip_excludes_server_tier(self):
        with pytest.raises(ConfigurationError, match="exclusive"):
            self._config(topology="ring", num_servers=3)

    def test_gossip_excludes_max_staleness(self):
        with pytest.raises(ConfigurationError, match="max_staleness"):
            self._config(topology="ring", max_staleness=2)
