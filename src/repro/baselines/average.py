"""Linear choice functions — provably non-robust (Lemma 3.1).

Averaging is what production parameter servers used at the time of the
paper; Lemma 3.1 shows a single Byzantine worker can force *any* linear
combination with non-zero coefficients to output an arbitrary vector.
These rules are the baselines every experiment attacks.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregator import AggregationResult, Aggregator
from repro.exceptions import ConfigurationError, DimensionMismatchError

__all__ = ["Average", "WeightedAverage"]


class Average(Aggregator):
    """Unweighted mean of all proposals — the classical rule."""

    name = "average"

    def aggregate_detailed(self, vectors: np.ndarray) -> AggregationResult:
        vectors = self._validated(vectors)
        return AggregationResult(vector=vectors.mean(axis=0))


class WeightedAverage(Aggregator):
    """``F(V_1..V_n) = Σ λ_i V_i`` with fixed non-zero coefficients.

    The general linear rule of Lemma 3.1.  Coefficients need not sum to
    one (the lemma only requires them non-zero), though the default
    normalizes them so the rule is a convex combination.
    """

    def __init__(self, weights: np.ndarray, *, normalize: bool = True):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise DimensionMismatchError(
                f"weights must be 1-d, got shape {weights.shape}"
            )
        if np.any(weights == 0.0):
            raise ConfigurationError(
                "all weights must be non-zero (Lemma 3.1's linear rule)"
            )
        if normalize:
            total = weights.sum()
            if abs(total) < 1e-15:
                raise ConfigurationError("weights sum to zero; cannot normalize")
            weights = weights / total
        self.weights = weights
        self.name = f"weighted-average(n={len(weights)})"

    def aggregate_detailed(self, vectors: np.ndarray) -> AggregationResult:
        vectors = self._validated(vectors)
        if vectors.shape[0] != len(self.weights):
            raise DimensionMismatchError(
                f"rule built for {len(self.weights)} workers, got "
                f"{vectors.shape[0]} proposals"
            )
        return AggregationResult(vector=self.weights @ vectors)
