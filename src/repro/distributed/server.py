"""The parameter server.

Holds the parameter vector, applies the choice function F, and performs
the SGD update ``x_{t+1} = x_t − γ_t · F(V_1, ..., V_n)``.  The server is
assumed reliable (footnote 2 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregator import AggregationResult, Aggregator
from repro.distributed.messages import GradientMessage, ParameterBroadcast
from repro.distributed.schedules import LearningRateSchedule
from repro.exceptions import DimensionMismatchError, SimulationError
from repro.utils.linalg import stack_vectors

__all__ = ["ParameterServer"]


class ParameterServer:
    """Synchronous-round parameter server with a pluggable choice function."""

    def __init__(
        self,
        initial_params: np.ndarray,
        aggregator: Aggregator,
        schedule: LearningRateSchedule,
        *,
        halt_on_nonfinite: bool = False,
    ):
        params = np.asarray(initial_params, dtype=np.float64)
        if params.ndim != 1:
            raise DimensionMismatchError(
                f"initial_params must be 1-d, got shape {params.shape}"
            )
        self._params = params.copy()
        self.aggregator = aggregator
        self.schedule = schedule
        self.round_index = 0
        #: When true, a non-finite parameter vector after an update raises
        #: ``SimulationError`` instead of silently training on NaN — the
        #: operational guard a production server would run with.  Off by
        #: default so divergence experiments can observe the blow-up.
        self.halt_on_nonfinite = bool(halt_on_nonfinite)

    @property
    def params(self) -> np.ndarray:
        """The current parameter vector x_t (a defensive copy)."""
        return self._params.copy()

    @property
    def dimension(self) -> int:
        return int(self._params.shape[0])

    def broadcast(self) -> ParameterBroadcast:
        """Start a round: publish x_t to all workers."""
        return ParameterBroadcast(round_index=self.round_index, params=self.params)

    def step(self, messages: list[GradientMessage]) -> AggregationResult:
        """Finish a round: aggregate the n proposals and update x.

        Messages must all belong to the current round and are ordered by
        worker id before aggregation so that worker identifiers align
        with row indices (the tie-break of Krum's footnote 3 depends on
        this ordering).
        """
        if not messages:
            raise SimulationError("server received no gradient messages")
        stale = [m for m in messages if m.round_index != self.round_index]
        if stale:
            raise SimulationError(
                f"round {self.round_index} received messages for rounds "
                f"{sorted({m.round_index for m in stale})}"
            )
        ids = [m.worker_id for m in messages]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"duplicate worker ids in round: {sorted(ids)}")
        ordered = sorted(messages, key=lambda m: m.worker_id)
        stack = stack_vectors([m.vector for m in ordered])
        if stack.shape[1] != self.dimension:
            raise DimensionMismatchError(
                f"proposals have dimension {stack.shape[1]}, server expects "
                f"{self.dimension}"
            )
        result = self.aggregator.aggregate_detailed(stack)
        rate = self.schedule(self.round_index)
        self._params = self._params - rate * result.vector
        if self.halt_on_nonfinite and not np.all(np.isfinite(self._params)):
            raise SimulationError(
                f"parameters became non-finite at round {self.round_index} "
                f"(aggregator {self.aggregator.name}); a Byzantine proposal "
                f"reached the update"
            )
        self.round_index += 1
        return result
