"""Tests for the label-flip data-poisoning attack."""

import numpy as np
import pytest

from repro.attacks.poisoning import LabelFlipAttack, _flip_labels
from repro.data.synthetic import make_blobs
from repro.exceptions import ConfigurationError
from repro.models.softmax import SoftmaxRegressionModel
from tests.attacks.test_base import make_context


class TestFlipLabels:
    def test_involution(self):
        labels = np.array([0, 1, 2, 3, 4])
        flipped = _flip_labels(labels, 5)
        np.testing.assert_array_equal(flipped, [4, 3, 2, 1, 0])
        np.testing.assert_array_equal(_flip_labels(flipped, 5), labels)

    def test_binary_flip(self):
        np.testing.assert_array_equal(_flip_labels(np.array([0, 1]), 2), [1, 0])


class TestLabelFlipAttack:
    @pytest.fixture
    def setup(self, rng):
        dataset = make_blobs(120, num_classes=3, num_features=4, seed=0)
        model = SoftmaxRegressionModel(4, 3)
        params = model.init_params(rng)
        shards = [(dataset.inputs[:60], dataset.targets[:60])]
        return model, dataset, params, shards

    def test_crafts_correct_shape(self, setup, rng):
        model, _dataset, params, shards = setup
        attack = LabelFlipAttack(model, shards, num_classes=3, batch_size=16)
        ctx = make_context(
            rng,
            num_honest=6,
            num_byzantine=2,
            dimension=model.dimension,
            honest_gradients=np.zeros((6, model.dimension)),
            byzantine_indices=np.array([6, 7]),
            honest_indices=np.arange(6),
            num_workers=8,
            params=params,
        )
        out = attack.craft(ctx)
        assert out.shape == (2, model.dimension)
        assert np.all(np.isfinite(out))

    def test_poisoned_gradient_misaligned_with_true(self, setup, rng):
        """Flipped-label gradients point away from the clean gradient."""
        model, dataset, params, shards = setup
        attack = LabelFlipAttack(model, shards, num_classes=3, batch_size=60)
        ctx = make_context(
            rng,
            num_honest=4,
            num_byzantine=1,
            dimension=model.dimension,
            honest_gradients=np.zeros((4, model.dimension)),
            byzantine_indices=np.array([4]),
            honest_indices=np.arange(4),
            num_workers=5,
            params=params,
        )
        poisoned = attack.craft(ctx)[0]
        clean = model.gradient(params, dataset.inputs, dataset.targets)
        cosine = (poisoned @ clean) / (
            np.linalg.norm(poisoned) * np.linalg.norm(clean)
        )
        assert cosine < 0.5

    def test_rejects_empty_shards(self, setup):
        model, _dataset, _params, _shards = setup
        with pytest.raises(ConfigurationError):
            LabelFlipAttack(model, [], num_classes=3, batch_size=8)

    def test_rejects_bad_num_classes(self, setup):
        model, _dataset, _params, shards = setup
        with pytest.raises(ConfigurationError):
            LabelFlipAttack(model, shards, num_classes=1, batch_size=8)
