"""E1 — Lemma 3.1: no linear choice function tolerates one Byzantine worker.

Reproduces the lemma as a measurement: a single Byzantine worker steers
averaging-SGD to an attacker-chosen parameter vector U*, while Krum under
the identical attack still converges to the true optimum.

Paper claim: "A single Byzantine worker can make F always select U.  In
particular, a single Byzantine worker can prevent convergence."
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.attacks.hijack import LinearHijackAttack
from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.experiments.builders import build_quadratic_simulation
from repro.experiments.reporting import format_series, format_table
from repro.models.quadratic import QuadraticBowl

DIMENSION = 20
NUM_WORKERS = 11
ATTACKER_TARGET = 5.0  # attacker steers x toward the all-5 vector
ROUNDS = 400


class _PullToAttackerOptimum(LinearHijackAttack):
    """Hijack whose target is recomputed each round: the update that
    moves x toward the attacker's optimum (gradient of a bowl centred
    there)."""

    def __init__(self, attacker_optimum: np.ndarray):
        super().__init__(np.zeros_like(attacker_optimum))
        self.attacker_optimum = attacker_optimum

    def craft(self, context):
        self.target = context.params - self.attacker_optimum
        return super().craft(context)


def _run(aggregator):
    bowl = QuadraticBowl(DIMENSION, optimum=np.zeros(DIMENSION))
    attacker_optimum = np.full(DIMENSION, ATTACKER_TARGET)
    sim = build_quadratic_simulation(
        bowl,
        aggregator=aggregator,
        num_workers=NUM_WORKERS,
        num_byzantine=1,
        sigma=0.1,
        attack=_PullToAttackerOptimum(attacker_optimum),
        learning_rate=0.2,
        lr_timescale=None,
        seed=0,
    )
    history = sim.run(ROUNDS, eval_every=25)
    return bowl, attacker_optimum, sim, history


def bench_lemma31_average_hijacked(benchmark):
    bowl, attacker_optimum, sim, history = run_once(benchmark, lambda: _run(Average()))

    rounds, dists = history.series("dist_to_opt")
    emit(
        format_series(
            "Lemma 3.1 — averaging, f=1 hijack: distance to TRUE optimum",
            rounds,
            {"‖x_t − x*‖ (average)": dists},
        )
    )
    dist_to_attacker = float(np.linalg.norm(sim.params - attacker_optimum))
    dist_to_true = bowl.distance_to_optimum(sim.params)
    emit(
        format_table(
            ["rule", "‖x_T − U*‖ (attacker)", "‖x_T − x*‖ (true)", "hijacked"],
            [["average", dist_to_attacker, dist_to_true, dist_to_attacker < 0.5]],
            title="Lemma 3.1 outcome (average)",
        )
    )
    # The lemma's claim: the attacker fully controls the linear rule.
    assert dist_to_attacker < 0.5, "average should converge to attacker target"
    assert dist_to_true > 4.0, "average should be far from the true optimum"


def bench_lemma31_krum_resists(benchmark):
    bowl, attacker_optimum, sim, history = run_once(
        benchmark, lambda: _run(Krum(f=1))
    )
    rounds, dists = history.series("dist_to_opt")
    emit(
        format_series(
            "Lemma 3.1 control — Krum, identical f=1 hijack",
            rounds,
            {"‖x_t − x*‖ (krum)": dists},
        )
    )
    dist_to_true = bowl.distance_to_optimum(sim.params)
    dist_to_attacker = float(np.linalg.norm(sim.params - attacker_optimum))
    emit(
        format_table(
            ["rule", "‖x_T − U*‖ (attacker)", "‖x_T − x*‖ (true)", "hijacked"],
            [["krum(f=1)", dist_to_attacker, dist_to_true, dist_to_attacker < 0.5]],
            title="Lemma 3.1 outcome (Krum)",
        )
    )
    assert dist_to_true < 1.0, "Krum must still converge to the true optimum"
    assert history.byzantine_selection_rate() < 0.25
