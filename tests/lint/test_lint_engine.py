"""Engine behaviour: suppressions, rule selection, file discovery."""

from __future__ import annotations

import textwrap

import pytest

from repro.exceptions import ConfigurationError
from repro.lint import (
    collect_python_files,
    lint_paths,
    lint_source,
    resolve_rules,
)

BAD_RAISE = 'def f():\n    raise ValueError("nope")\n'


def taxonomy_rules():
    return resolve_rules(select=["error-taxonomy", "unused-suppression"])


class TestSuppressions:
    def test_named_suppression_silences_the_finding(self):
        source = (
            "def f():\n"
            '    raise ValueError("nope")'
            "  # repro-lint: ignore[error-taxonomy]\n"
        )
        assert lint_source(source, rules=taxonomy_rules()) == []

    def test_bare_suppression_silences_all_rules(self):
        source = (
            "def f():\n"
            '    raise ValueError("nope")  # repro-lint: ignore\n'
        )
        assert lint_source(source, rules=taxonomy_rules()) == []

    def test_suppression_for_other_rule_does_not_silence(self):
        source = (
            "def f():\n"
            '    raise ValueError("nope")'
            "  # repro-lint: ignore[rng-discipline]\n"
        )
        findings = lint_source(source, rules=taxonomy_rules())
        # The real finding survives AND the suppression is flagged stale
        # for the rules that ran... except rng-discipline did not run, so
        # only the error-taxonomy finding remains.
        assert [f.rule for f in findings] == ["error-taxonomy"]

    def test_unused_suppression_is_flagged(self):
        source = "x = 1  # repro-lint: ignore[error-taxonomy]\n"
        findings = lint_source(source, rules=taxonomy_rules())
        assert [f.rule for f in findings] == ["unused-suppression"]

    def test_unused_bare_suppression_is_flagged(self):
        source = "x = 1  # repro-lint: ignore\n"
        findings = lint_source(source, rules=taxonomy_rules())
        assert [f.rule for f in findings] == ["unused-suppression"]

    def test_malformed_directive_is_flagged(self):
        source = "x = 1  # repro-lint: ignroe[error-taxonomy]\n"
        findings = lint_source(source, rules=taxonomy_rules())
        assert [f.rule for f in findings] == ["unused-suppression"]
        assert "malformed" in findings[0].message

    def test_unknown_rule_in_suppression_is_flagged(self):
        source = "x = 1  # repro-lint: ignore[no-such-rule]\n"
        findings = lint_source(source, rules=taxonomy_rules())
        assert [f.rule for f in findings] == ["unused-suppression"]
        assert "no-such-rule" in findings[0].message

    def test_stale_audit_skips_unselected_rules(self):
        # A suppression for a rule excluded from this run must not be
        # reported stale — the run cannot know whether it still matches.
        source = "x = 1  # repro-lint: ignore[rng-discipline]\n"
        assert lint_source(source, rules=taxonomy_rules()) == []


class TestRuleSelection:
    def test_unknown_select_raises(self):
        with pytest.raises(ConfigurationError, match="--select"):
            resolve_rules(select=["no-such-rule"])

    def test_unknown_ignore_raises(self):
        with pytest.raises(ConfigurationError, match="--ignore"):
            resolve_rules(ignore=["no-such-rule"])

    def test_ignore_removes_from_default_set(self):
        names = {rule.name for rule in resolve_rules(ignore=["error-taxonomy"])}
        assert "error-taxonomy" not in names
        assert "rng-discipline" in names


class TestSyntaxError:
    def test_unparseable_source_reports_syntax_error(self):
        findings = lint_source("def broken(:\n")
        assert [f.rule for f in findings] == ["syntax-error"]

    def test_syntax_error_respects_selection(self):
        findings = lint_source(
            "def broken(:\n", rules=resolve_rules(select=["error-taxonomy"])
        )
        assert findings == []


class TestFileDiscovery:
    def test_directory_recursion_and_report(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "clean.py").write_text("x = 1\n")
        (package / "dirty.py").write_text(textwrap.dedent(BAD_RAISE))
        nested = package / "sub"
        nested.mkdir()
        (nested / "also_dirty.py").write_text(textwrap.dedent(BAD_RAISE))
        (package / "notes.txt").write_text("not python\n")

        report = lint_paths([package], select=["error-taxonomy"])
        assert report.files_checked == 3
        assert len(report.findings) == 2
        assert report.counts_by_rule == {"error-taxonomy": 2}
        payload = report.as_dict()
        assert payload["version"] == 1
        assert payload["summary"]["total"] == 2
        assert payload["summary"]["by_rule"] == {"error-taxonomy": 2}

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no such file"):
            collect_python_files([tmp_path / "ghost"])

    def test_duplicate_paths_are_deduplicated(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        files = collect_python_files([target, tmp_path, str(target)])
        assert files == [target]


class TestSuppressionAnchors:
    """Suppressions reach findings anchored elsewhere in the statement."""

    def test_multiline_statement_suppression(self):
        # The finding anchors at the raise (line 2); the suppression sits
        # on the closing-paren line of the same statement.
        source = (
            "def f():\n"
            "    raise ValueError(\n"
            '        "nope"\n'
            "    )  # repro-lint: ignore[error-taxonomy]\n"
        )
        assert lint_source(source, rules=taxonomy_rules()) == []

    def test_decorator_line_suppression_reaches_the_def(self):
        rules = resolve_rules(
            select=["stateful-attack-declaration", "unused-suppression"]
        )
        source = (
            "@register  # repro-lint: ignore\n"
            "class Sneaky(Attack):\n"
            "    def craft(self, value):\n"
            "        self.count = 1\n"
            "        return value\n"
        )
        assert lint_source(source, rules=rules) == []
        # Same class without the suppression: the findings anchor on the
        # class line, not the decorator.
        unsuppressed = lint_source(source.replace(
            "  # repro-lint: ignore", ""
        ), rules=rules)
        assert unsuppressed and all(f.line == 2 for f in unsuppressed)

    def test_body_suppression_does_not_reach_the_header(self):
        rules = resolve_rules(
            select=["stateful-attack-declaration", "unused-suppression"]
        )
        source = (
            "class Sneaky(Attack):\n"
            "    def craft(self, value):\n"
            "        self.count = 1  # repro-lint: ignore\n"
            "        return value\n"
        )
        findings = lint_source(source, rules=rules)
        assert any(
            f.rule == "stateful-attack-declaration" for f in findings
        )

    def test_exact_line_suppression_still_works(self):
        source = (
            "def f():\n"
            '    raise ValueError("nope")  # repro-lint: ignore\n'
        )
        assert lint_source(source, rules=taxonomy_rules()) == []


def _write_bad_tree(tmp_path):
    for index in range(4):
        (tmp_path / f"mod_{index}.py").write_text(
            "import numpy as np\n"
            f"def sample_{index}():\n"
            "    return np.random.default_rng(3).normal()\n"
        )


class TestParallelJobs:
    def test_jobs_output_is_identical_to_serial(self, tmp_path):
        _write_bad_tree(tmp_path)
        serial = lint_paths([tmp_path], jobs=1)
        parallel = lint_paths([tmp_path], jobs=2)
        assert serial.findings == parallel.findings
        assert serial.rule_names == parallel.rule_names
        assert serial.files_checked == parallel.files_checked == 4

    def test_jobs_must_be_positive(self, tmp_path):
        _write_bad_tree(tmp_path)
        with pytest.raises(ConfigurationError, match="jobs"):
            lint_paths([tmp_path], jobs=0)


class TestProjectPass:
    def test_no_project_skips_whole_program_rules(self, tmp_path):
        (tmp_path / "sim.py").write_text(
            "def spawn_generators(seed, count):\n"
            "    return list(range(count))\n"
            "\n"
            "def setup(seed):\n"
            "    first, second = spawn_generators(seed, 3)\n"
            "    return first, second\n"
        )
        with_project = lint_paths(
            [tmp_path], select=["rng-stream-order"], project=True
        )
        without = lint_paths(
            [tmp_path], select=["rng-stream-order"], project=False
        )
        assert len(with_project.findings) == 1
        assert without.findings == ()

    def test_project_findings_honor_suppressions(self, tmp_path):
        (tmp_path / "sim.py").write_text(
            "def spawn_generators(seed, count):\n"
            "    return list(range(count))\n"
            "\n"
            "def setup(seed):\n"
            "    first, second = spawn_generators(\n"
            "        seed, 3\n"
            "    )  # repro-lint: ignore[rng-stream-order]\n"
            "    return first, second\n"
        )
        report = lint_paths(
            [tmp_path], select=["rng-stream-order", "unused-suppression"]
        )
        assert report.findings == ()
