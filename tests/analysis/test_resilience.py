"""Tests for the empirical (α, f)-resilience checker."""

import numpy as np
import pytest

from repro.analysis.resilience import estimate_resilience
from repro.attacks.omniscient import OmniscientAttack
from repro.attacks.random_noise import GaussianAttack
from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.exceptions import ConfigurationError


class TestEstimateResilience:
    def test_krum_satisfies_condition_under_gaussian_attack(self):
        report = estimate_resilience(
            Krum(f=2),
            GaussianAttack(sigma=100.0),
            n=11,
            f=2,
            dimension=4,
            sigma=0.01,
            trials=300,
            seed=0,
        )
        assert report.condition_holds
        assert report.satisfied
        assert report.scalar_product > 0
        assert report.byzantine_selection_rate < 0.05

    def test_average_fails_under_omniscient_attack(self):
        # The omniscient attack reverses the average's direction, so the
        # scalar-product condition (i) must fail.
        report = estimate_resilience(
            Average(),
            OmniscientAttack(scale=10.0),
            n=11,
            f=2,
            dimension=4,
            sigma=0.01,
            trials=300,
            seed=0,
        )
        assert not report.satisfied
        assert report.scalar_product < 0

    def test_no_attack_baseline(self):
        report = estimate_resilience(
            Krum(f=0, strict=False),
            None,
            n=8,
            f=0,
            dimension=4,
            sigma=0.05,
            trials=200,
            seed=1,
        )
        assert report.attack == "none"
        assert report.satisfied

    def test_variance_condition_violation_reported(self):
        # Huge sigma: eta * sqrt(d) * sigma >> ||g||, guarantee void.
        report = estimate_resilience(
            Krum(f=2),
            GaussianAttack(sigma=1.0),
            n=11,
            f=2,
            dimension=16,
            sigma=10.0,
            trials=50,
            seed=2,
        )
        assert not report.condition_holds
        assert report.threshold is None

    def test_moment_ratios_bounded_for_krum(self):
        report = estimate_resilience(
            Krum(f=2),
            GaussianAttack(sigma=1000.0),
            n=11,
            f=2,
            dimension=4,
            sigma=0.05,
            trials=200,
            seed=3,
        )
        # Condition (ii): the attack cannot blow up Krum's moments.
        for r in (2, 3, 4):
            assert report.moment_ratios[r] < 10.0

    def test_moment_ratios_explode_for_average(self):
        report = estimate_resilience(
            Average(),
            GaussianAttack(sigma=1000.0),
            n=11,
            f=2,
            dimension=4,
            sigma=0.05,
            trials=200,
            seed=3,
        )
        assert report.moment_ratios[2] > 100.0

    def test_omniscient_attack_against_krum(self):
        report = estimate_resilience(
            Krum(f=2),
            OmniscientAttack(scale=10.0),
            n=13,
            f=2,
            dimension=6,
            sigma=0.02,
            trials=300,
            seed=4,
        )
        assert report.satisfied

    def test_custom_gradient(self):
        gradient = np.array([3.0, 4.0])
        report = estimate_resilience(
            Krum(f=0, strict=False),
            None,
            n=6,
            f=0,
            dimension=2,
            sigma=0.01,
            gradient=gradient,
            trials=100,
            seed=5,
        )
        assert report.grad_norm == pytest.approx(5.0)

    def test_row_rendering(self):
        report = estimate_resilience(
            Krum(f=2),
            GaussianAttack(sigma=10.0),
            n=11,
            f=2,
            dimension=4,
            sigma=0.01,
            trials=50,
            seed=6,
        )
        row = report.row()
        assert row["n"] == 11
        assert "ok" in row

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            estimate_resilience(
                Krum(f=2), GaussianAttack(), n=5, f=5, dimension=3, sigma=0.1
            )
        with pytest.raises(ConfigurationError):
            estimate_resilience(
                Krum(f=2), None, n=11, f=2, dimension=3, sigma=0.1
            )
        with pytest.raises(ConfigurationError):
            estimate_resilience(
                Krum(f=0, strict=False),
                None,
                n=8,
                f=0,
                dimension=3,
                sigma=0.1,
                trials=0,
            )
