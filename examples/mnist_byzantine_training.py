"""Train an MLP digit classifier while a third of the cluster is hostile.

Reproduces the full paper's MNIST experiment on the procedural digit
dataset: 20 workers, 6 controlled by an omniscient adversary that sends
the negated gradient scaled up.  Compares averaging, Krum and Multi-Krum
and prints the error-vs-round series.

Run:  python examples/mnist_byzantine_training.py
"""

from __future__ import annotations

from repro import Average, Krum, MultiKrum, OmniscientAttack
from repro.data import make_mnist_like
from repro.experiments import (
    build_dataset_simulation,
    format_series,
    format_table,
)
from repro.models import MLPClassifier

NUM_WORKERS = 20
NUM_BYZANTINE = 6  # 30 % of the cluster
ROUNDS = 300


def main() -> None:
    train = make_mnist_like(1500, seed=0)
    test = make_mnist_like(400, seed=1)

    histories = {}
    for label, rule in {
        "average": Average(),
        "krum": Krum(f=NUM_BYZANTINE),
        "multi-krum m=8": MultiKrum(f=NUM_BYZANTINE, m=8),
    }.items():
        model = MLPClassifier(784, 10, hidden_sizes=(32,), init_seed=0)
        simulation = build_dataset_simulation(
            model,
            train,
            aggregator=rule,
            num_workers=NUM_WORKERS,
            num_byzantine=NUM_BYZANTINE,
            attack=OmniscientAttack(scale=10.0),
            batch_size=32,
            learning_rate=0.3,
            eval_dataset=test,
            seed=7,
        )
        print(f"training with {label} ...")
        histories[label] = simulation.run(ROUNDS, eval_every=25)

    rounds, _ = next(iter(histories.values())).series("accuracy")
    print()
    print(
        format_series(
            f"test error vs round — {NUM_BYZANTINE}/{NUM_WORKERS} omniscient "
            "Byzantine workers",
            rounds,
            {
                label: 1.0 - history.series("accuracy")[1]
                for label, history in histories.items()
            },
        )
    )
    print()
    print(
        format_table(
            ["rule", "final test error", "byzantine selected"],
            [
                [
                    label,
                    1.0 - history.final_accuracy,
                    f"{100 * history.byzantine_selection_rate():.1f}%",
                ]
                for label, history in histories.items()
            ],
            title="summary",
        )
    )


if __name__ == "__main__":
    main()
