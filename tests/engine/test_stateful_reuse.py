"""Regression tests for stateful-attack reuse discipline.

A stateful attack (straggler replay history, mimicry rate window, probe
scale) carries run-local state.  Two rules keep that sound:

* :class:`TrainingSimulation` calls ``attack.reset()`` at construction,
  so reusing one instance across sequential runs yields identical
  trajectories (the original bug: a straggler's replay history leaked
  from one grid cell into the next);
* :class:`BatchedSimulation` refuses one stateful instance shared by
  two live scenarios — interleaved crafts would corrupt both.
"""

import copy

import numpy as np
import pytest

from repro.attacks import (
    DefenseProbingAttack,
    LipschitzMimicryAttack,
    StragglerAttack,
)
from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.engine.simulation import BatchedSimulation
from repro.exceptions import ConfigurationError
from repro.experiments.builders import build_quadratic_simulation
from repro.models.quadratic import QuadraticBowl

STATEFUL_ATTACKS = [
    lambda: StragglerAttack(delay=2),
    lambda: LipschitzMimicryAttack(),
    lambda: DefenseProbingAttack(),
]


def _sim(attack, *, seed=0, aggregator=None, n=9, f=2, d=5):
    return build_quadratic_simulation(
        QuadraticBowl(d),
        aggregator=aggregator or Krum(f=f),
        num_workers=n,
        num_byzantine=f,
        sigma=0.2,
        attack=attack,
        seed=seed,
    )


@pytest.mark.parametrize(
    "make", STATEFUL_ATTACKS, ids=["straggler", "mimicry", "probe"]
)
class TestSequentialReuse:
    def test_reused_instance_matches_fresh(self, make):
        """Regression: the same attack instance driving two sequential
        cells must produce identical trajectories — construction resets
        the carried state, so cell order cannot leak into results."""
        attack = make()
        first = _sim(attack, seed=7).run(6, eval_every=2)
        second = _sim(attack, seed=7).run(6, eval_every=2)
        assert first.records == second.records

    def test_state_actually_carried_without_reset(self, make):
        """The counterpart guard: skipping the reset changes the crafted
        stream, proving the reset in the constructor is load-bearing
        (not vacuous for these attacks)."""
        attack = make()
        _sim(attack, seed=7).run(6, eval_every=2)
        # Warm state survives outside a simulation; a reset clears it.
        # Deep copy: some resets clear containers in place.
        warm = copy.deepcopy(attack.__dict__)
        attack.reset()
        assert any(
            repr(warm[key]) != repr(value)
            for key, value in attack.__dict__.items()
        )


class TestBatchedSharing:
    def test_shared_stateful_instance_rejected(self):
        attack = StragglerAttack(delay=2)
        sims = [_sim(attack, seed=i) for i in range(2)]
        with pytest.raises(ConfigurationError, match="shared by scenarios"):
            BatchedSimulation(sims)

    def test_per_scenario_instances_accepted(self):
        sims = [_sim(StragglerAttack(delay=2), seed=i) for i in range(2)]
        histories = BatchedSimulation(sims).run(4, eval_every=2)
        assert len(histories) == 2

    def test_stateless_instance_may_be_shared(self):
        """Stateless attacks are pure functions of the context, so one
        instance across scenarios is fine (and common in grids)."""
        from repro.attacks import SignFlipAttack

        attack = SignFlipAttack()
        sims = [_sim(attack, seed=i) for i in range(2)]
        histories = BatchedSimulation(sims).run(4, eval_every=2)
        assert len(histories) == 2

    def test_batched_matches_solo_for_stateful_attack(self):
        """The batched engine resets per-scenario state exactly like the
        loop engine: same seed, same straggler delay, same records."""
        solo = _sim(StragglerAttack(delay=2), seed=3, aggregator=Average())
        solo_history = solo.run(5, eval_every=1)
        batched_sim = _sim(
            StragglerAttack(delay=2), seed=3, aggregator=Average()
        )
        (batched_history,) = BatchedSimulation([batched_sim]).run(
            5, eval_every=1
        )
        assert solo_history.records == batched_history.records
