"""Name-based lint-rule factory — the library's sixth registry.

Mirrors the aggregator, attack, workload, backend and delay-schedule
registries: a caller names a rule ("backend-purity", "rng-discipline",
...) plus keyword arguments and gets a
:class:`~repro.lint.base.LintRule`, with the shared
:class:`ConfigurationError` contract — unknown names list the available
rules, and kwargs that do not fit the factory's signature raise a
readable error naming the rule and its accepted parameters.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.exceptions import ConfigurationError
from repro.lint.base import LintRule
from repro.utils.validation import check_factory_kwargs

__all__ = [
    "register_rule",
    "available_rules",
    "rule_factory",
    "make_rule",
    "rule_descriptions",
]

_REGISTRY: dict[str, Callable[..., LintRule]] = {}


def register_rule(name: str, factory: Callable[..., LintRule]) -> None:
    """Register a lint rule under ``name``; later registrations override
    (so a project can swap in a stricter variant of a built-in rule)."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"lint rule name must be a non-empty string, got {name!r}"
        )
    _REGISTRY[name] = factory


def available_rules() -> list[str]:
    """Sorted list of registered rule names."""
    return sorted(_REGISTRY)


def rule_factory(name: str) -> Callable[..., LintRule]:
    """The registered factory for ``name`` (for signature introspection)."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown lint rule {name!r}; available: {available_rules()}"
        )
    return _REGISTRY[name]


def make_rule(
    name: str, kwargs: Mapping[str, object] | None = None
) -> LintRule:
    """Build a rule by name, e.g. ``make_rule("error-taxonomy")``.

    Keyword arguments that do not fit the factory's signature (unknown
    names, missing required parameters) raise
    :class:`ConfigurationError` naming the rule and the parameters it
    accepts — the same contract as
    :func:`~repro.attacks.registry.make_attack`.
    """
    factory = rule_factory(name)
    resolved = dict(kwargs or {})
    check_factory_kwargs("lint rule", name, factory, resolved)
    return factory(**resolved)


def rule_descriptions() -> dict[str, str]:
    """``name -> one-line description`` for every registered rule."""
    out = {}
    for name in available_rules():
        rule = _REGISTRY[name]
        out[name] = getattr(rule, "description", "") or ""
    return out
