"""The majority-based (minimal-diameter subset) rule.

The paper sketches it as the robust-but-intractable alternative: look at
every subset of ``n − f`` proposals, keep the subset with the smallest
diameter, and aggregate it (here: average it).  The cost is
``C(n, n − f)`` subset enumerations — exponential in f, which is exactly
what the complexity bench (Lemma 4.1's contrast) measures.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from repro.core.aggregator import AggregationResult, SelectionAggregator
from repro.exceptions import ByzantineToleranceError, ConfigurationError
from repro.utils.linalg import pairwise_sq_distances
from repro.utils.validation import check_positive_int

__all__ = ["MinimalDiameterSubset"]


class MinimalDiameterSubset(SelectionAggregator):
    """Average the (n − f)-subset with minimal diameter.

    The diameter of a subset is its maximal pairwise distance.  Ties are
    broken lexicographically on the sorted index tuple (deterministic).
    ``max_subsets`` guards against accidentally launching an infeasible
    enumeration; raise it explicitly for the complexity bench.
    """

    def __init__(self, f: int, *, max_subsets: int = 2_000_000):
        self.f = check_positive_int(f, "f", minimum=0)
        self.max_subsets = check_positive_int(max_subsets, "max_subsets", minimum=1)
        self.name = f"minimal-diameter(f={self.f})"

    def check_tolerance(self, num_workers: int) -> None:
        if num_workers - self.f < 2:
            raise ByzantineToleranceError(
                f"minimal-diameter rule needs n - f >= 2, got n={num_workers}, "
                f"f={self.f}",
                n=num_workers,
                f=self.f,
            )
        num_subsets = comb(num_workers, num_workers - self.f)
        if num_subsets > self.max_subsets:
            raise ConfigurationError(
                f"C({num_workers}, {num_workers - self.f}) = {num_subsets} "
                f"subsets exceeds max_subsets={self.max_subsets}; this rule "
                f"is exponential — that is the point of Lemma 4.1's contrast"
            )

    def select(self, vectors: np.ndarray) -> tuple[np.ndarray, None]:
        n = vectors.shape[0]
        distances = pairwise_sq_distances(vectors, nonfinite_as_inf=True)
        keep = n - self.f
        best_subset: tuple[int, ...] | None = None
        best_diameter = np.inf
        for subset in combinations(range(n), keep):
            idx = np.asarray(subset)
            diameter = float(distances[np.ix_(idx, idx)].max())
            if diameter < best_diameter:
                best_diameter = diameter
                best_subset = subset
        assert best_subset is not None  # n - f >= 2 guarantees one subset
        return np.asarray(best_subset, dtype=np.int64), None

    def aggregate_detailed(self, vectors: np.ndarray) -> AggregationResult:
        return super().aggregate_detailed(vectors)
