"""registry-drift: the eight registries stay in sync with their consumers.

The library's extension surface is eight name-based registries
(aggregators, attacks, workloads, backends, delay schedules, server
attacks, topologies, lint rules).  Each has three consumers that must
track the registered names: a contract-test sweep (a test that iterates
the matching ``available_*()`` list), the CLI choice source (choices
derived from the registry, not a hard-coded list), and the README's
``Registry name`` tables.  Drift in either direction is a real bug
shape: PR 8 registered ``probe-bandit`` without its README row; a
hard-coded CLI choices list silently hides new registrations.

Checks, per family:

- every literal name passed to the family's ``register_*`` call is
  collected (``ClassName.name`` registrations resolve through the
  project symbol table);
- some test module must reference the family's ``available_*()`` sweep
  — otherwise registered names are unreachable from the contract tests;
- a CLI module (``*/cli.py``) exposing the family must derive its
  choices dynamically (reference ``available_*``/``make_*``/factory
  accessors); a literal ``choices=[...]`` list claimed by a family must
  cover every registered name;
- every literal name passed to the family's ``make_*`` entry point in
  linted code must be registered (typo'd names fail at runtime — this
  catches them statically);
- every README table whose first column is ``Registry name`` is claimed
  by the family with the largest overlap and diffed both ways.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable
from dataclasses import dataclass

from repro.lint.base import ModuleContext, ProjectRule
from repro.lint.findings import Finding
from repro.lint.project import ProjectContext

__all__ = ["RegistryDriftRule", "FAMILY_SPECS"]


@dataclass(frozen=True)
class FamilySpec:
    """One registry family and the accessor names that consume it."""

    label: str
    register: str
    available: str
    #: Dynamic choice-source accessors: referencing any of these counts
    #: as deriving the CLI surface from the registry (their error paths
    #: list the available names).
    accessors: tuple[str, ...]


FAMILY_SPECS: tuple[FamilySpec, ...] = (
    FamilySpec(
        "aggregator",
        "register_aggregator",
        "available_aggregators",
        ("make_aggregator", "aggregator_factory"),
    ),
    FamilySpec(
        "attack",
        "register_attack",
        "available_attacks",
        ("make_attack", "attack_factory"),
    ),
    FamilySpec(
        "workload",
        "register_workload",
        "available_workloads",
        ("make_workload", "workload_factory"),
    ),
    FamilySpec(
        "backend",
        "register_backend",
        "available_backends",
        ("make_backend", "backend_factory", "resolve_backend"),
    ),
    FamilySpec(
        "delay schedule",
        "register_delay_schedule",
        "available_delay_schedules",
        ("make_delay_schedule", "delay_schedule_factory"),
    ),
    FamilySpec(
        "server attack",
        "register_server_attack",
        "available_server_attacks",
        ("make_server_attack", "server_attack_factory"),
    ),
    FamilySpec(
        "topology",
        "register_topology",
        "available_topologies",
        ("make_topology", "topology_factory"),
    ),
    FamilySpec(
        "lint rule",
        "register_rule",
        "available_rules",
        ("make_rule", "rule_factory", "rule_descriptions", "resolve_rules"),
    ),
)


@dataclass(frozen=True)
class _Registration:
    name: str
    module: ModuleContext
    node: ast.Call


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _referenced_names(tree: ast.Module) -> set[str]:
    """Every ``Name`` id and ``Attribute`` attr in the tree — the cheap
    "does this module mention accessor X at all" predicate."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


#: A README table row; the first cell's backticked name is captured.
_TABLE_ROW = re.compile(r"^\|\s*`(?P<name>[^`]+)`\s*\|")
_TABLE_HEADER = re.compile(r"^\|\s*Registry name\s*\|", re.IGNORECASE)


def _readme_tables(text: str) -> list[tuple[int, list[tuple[int, str]]]]:
    """``(header_line, [(row_line, name), ...])`` for each table whose
    first header cell is ``Registry name`` (1-based lines)."""
    tables = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        if _TABLE_HEADER.match(lines[index]):
            header_line = index + 1
            rows: list[tuple[int, str]] = []
            cursor = index + 1
            while cursor < len(lines) and lines[cursor].startswith("|"):
                match = _TABLE_ROW.match(lines[cursor])
                if match:
                    rows.append((cursor + 1, match.group("name").strip()))
                cursor += 1
            tables.append((header_line, rows))
            index = cursor
        else:
            index += 1
    return tables


class RegistryDriftRule(ProjectRule):
    """Registered names, contract sweeps, CLI choices and README tables
    must agree."""

    name = "registry-drift"
    description = (
        "every registered name is reachable from its contract-test sweep, "
        "CLI choice source and README table — and every referenced name "
        "exists in a registry"
    )

    def __init__(
        self,
        families: tuple[FamilySpec, ...] = FAMILY_SPECS,
        cli_suffixes: tuple[str, ...] = ("/cli.py", "cli.py"),
    ):
        self.families = tuple(families)
        self.cli_suffixes = tuple(cli_suffixes)

    # -- collection ----------------------------------------------------

    def _collect_registrations(
        self, project: ProjectContext, spec: FamilySpec
    ) -> list[_Registration]:
        registrations: list[_Registration] = []
        for module in project.modules:
            module_name = project.module_name(module)
            for node in ast.walk(module.tree):
                if (
                    not isinstance(node, ast.Call)
                    or _call_name(node.func) != spec.register
                    or not node.args
                ):
                    continue
                literal = self._literal_name(project, module_name, node.args[0])
                if literal is not None:
                    registrations.append(
                        _Registration(name=literal, module=module, node=node)
                    )
        return registrations

    @staticmethod
    def _literal_name(
        project: ProjectContext, module_name: str, arg: ast.expr
    ) -> str | None:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        # ``register_rule(SomeRule.name, SomeRule)`` — resolve the class
        # through the symbol table and read its ``name`` class attribute.
        if (
            isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and arg.attr == "name"
        ):
            target = project.resolve(module_name, arg.value.id)
            if target is not None and target[0] == "class":
                value = project.class_attr_constant(target[1], "name")
                if isinstance(value, str):
                    return value
        return None

    # -- the checks ----------------------------------------------------

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        aux_names: set[str] = set()
        for module in project.auxiliary:
            aux_names |= _referenced_names(module.tree)

        cli_modules = [
            module
            for module in project.modules
            if module.is_module(*self.cli_suffixes)
        ]
        cli_names: set[str] = set()
        for module in cli_modules:
            cli_names |= _referenced_names(module.tree)

        registered: dict[str, set[str]] = {}
        findings: list[Finding] = []
        for spec in self.families:
            registrations = self._collect_registrations(project, spec)
            registered[spec.label] = {r.name for r in registrations}
            if not registrations:
                continue
            anchor = min(
                registrations, key=lambda r: (r.module.path, r.node.lineno)
            )
            if project.auxiliary and spec.available not in aux_names:
                findings.append(
                    self.project_finding(
                        anchor.module.path,
                        anchor.node,
                        f"{spec.label} names registered via "
                        f"{spec.register}() are not swept by any contract "
                        f"test — no test references {spec.available}(), so "
                        f"registered names are unreachable from the sweep",
                    )
                )
            findings.extend(
                self._check_cli(spec, registrations, cli_modules, cli_names)
            )
        findings.extend(self._check_references(project, registered))
        findings.extend(self._check_readme(project, registered))
        return sorted(findings, key=Finding.sort_key)

    def _check_cli(
        self,
        spec: FamilySpec,
        registrations: list[_Registration],
        cli_modules: list[ModuleContext],
        cli_names: set[str],
    ) -> list[Finding]:
        if not cli_modules:
            return []
        dynamic = {spec.available, *spec.accessors}
        if cli_names & dynamic:
            return []
        # No dynamic accessor anywhere in a CLI module: the family is
        # either not a CLI surface (then no literal mentions it and the
        # strings check below stays silent) or hard-coded (then every
        # registered name must at least appear literally).
        cli_strings: set[str] = set()
        for module in cli_modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Constant) and isinstance(
                    node.value, str
                ):
                    cli_strings.add(node.value)
        mentioned = {r.name for r in registrations} & cli_strings
        if not mentioned:
            return []
        findings = []
        for registration in registrations:
            if registration.name not in cli_strings:
                findings.append(
                    self.project_finding(
                        registration.module.path,
                        registration.node,
                        f"{spec.label} {registration.name!r} is registered "
                        f"but unreachable from the CLI choice source — the "
                        f"CLI hard-codes {sorted(mentioned)} instead of "
                        f"deriving choices from {spec.available}()",
                    )
                )
        return findings

    def _check_references(
        self, project: ProjectContext, registered: dict[str, set[str]]
    ) -> list[Finding]:
        """Literal names passed to ``make_*`` entry points (and literal
        argparse ``choices=`` lists) must exist in the claimed registry."""
        make_to_spec = {
            accessor: spec
            for spec in self.families
            for accessor in spec.accessors
            if accessor.startswith("make_")
        }
        findings = []
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                called = _call_name(node.func)
                spec = make_to_spec.get(called or "")
                if (
                    spec is not None
                    and registered.get(spec.label)
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                    and node.args[0].value not in registered[spec.label]
                ):
                    findings.append(
                        self.project_finding(
                            module.path,
                            node.args[0],
                            f"{called}({node.args[0].value!r}) names an "
                            f"unregistered {spec.label}; registered: "
                            f"{sorted(registered[spec.label])}",
                        )
                    )
                for keyword in node.keywords:
                    if keyword.arg == "choices" and isinstance(
                        keyword.value, (ast.List, ast.Tuple)
                    ):
                        findings.extend(
                            self._check_choices_literal(
                                module, keyword.value, registered
                            )
                        )
        return findings

    def _check_choices_literal(
        self,
        module: ModuleContext,
        node: ast.List | ast.Tuple,
        registered: dict[str, set[str]],
    ) -> list[Finding]:
        values = [
            element.value
            for element in node.elts
            if isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ]
        if len(values) != len(node.elts) or not values:
            return []
        best_label, best_overlap = None, 0
        for label, names in registered.items():
            overlap = len(set(values) & names)
            if overlap > best_overlap:
                best_label, best_overlap = label, overlap
        if best_label is None:
            return []
        missing = sorted(registered[best_label] - set(values))
        unknown = sorted(set(values) - registered[best_label])
        findings = []
        if missing:
            findings.append(
                self.project_finding(
                    module.path,
                    node,
                    f"literal choices list covers only {sorted(values)} of "
                    f"the registered {best_label}s — missing {missing}; "
                    f"derive choices from the registry instead",
                )
            )
        if unknown:
            findings.append(
                self.project_finding(
                    module.path,
                    node,
                    f"literal choices list names unregistered {best_label}"
                    f"(s) {unknown}",
                )
            )
        return findings

    def _check_readme(
        self, project: ProjectContext, registered: dict[str, set[str]]
    ) -> list[Finding]:
        findings = []
        for document in project.documents:
            if not document.posix_path.endswith(".md"):
                continue
            for header_line, rows in _readme_tables(document.text):
                table_names = {name for _, name in rows}
                if not table_names:
                    continue
                best_label, best_overlap = None, 0
                for label, names in registered.items():
                    overlap = len(table_names & names)
                    if overlap > best_overlap:
                        best_label, best_overlap = label, overlap
                if best_label is None:
                    continue
                family_names = registered[best_label]
                for row_line, name in rows:
                    if name not in family_names:
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=document.path,
                                line=row_line,
                                column=1,
                                message=(
                                    f"README {best_label} table row "
                                    f"{name!r} does not exist in the "
                                    f"{best_label} registry; registered: "
                                    f"{sorted(family_names)}"
                                ),
                            )
                        )
                for missing in sorted(family_names - table_names):
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=document.path,
                            line=header_line,
                            column=1,
                            message=(
                                f"registered {best_label} {missing!r} is "
                                f"missing from the README {best_label} "
                                f"table — add a row for it"
                            ),
                        )
                    )
        return findings
