"""Splitting a dataset across workers.

The paper's model assumes workers draw i.i.d. samples; ``iid_partition``
realizes that.  The label-skewed partitions are provided for the
non-i.i.d. ablations (the paper's introduction motivates Byzantine
behaviour partly by "biases in the way the data samples are distributed
among the processes").
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "PARTITION_PROTOCOLS",
    "iid_partition",
    "label_shard_partition",
    "dirichlet_partition",
]

#: The canonical names of the sharding protocols below, as accepted by
#: every ``partition=...`` knob (builders, workloads, config, CLI).
PARTITION_PROTOCOLS = ("iid", "label-shard", "dirichlet")


def iid_partition(
    num_samples: int, num_workers: int, *, seed: SeedLike = None
) -> list[np.ndarray]:
    """Uniform random split into ``num_workers`` near-equal disjoint shards."""
    if num_workers < 1:
        raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
    if num_samples < num_workers:
        raise ConfigurationError(
            f"cannot give each of {num_workers} workers a sample from "
            f"{num_samples} samples"
        )
    rng = as_generator(seed)
    order = rng.permutation(num_samples)
    return [np.sort(chunk) for chunk in np.array_split(order, num_workers)]


def label_shard_partition(
    labels: np.ndarray,
    num_workers: int,
    *,
    shards_per_worker: int = 2,
    seed: SeedLike = None,
) -> list[np.ndarray]:
    """Pathological non-i.i.d. split: sort by label, deal contiguous shards.

    Each worker receives ``shards_per_worker`` contiguous label-sorted
    shards, so most workers see only a few classes (the classic FedAvg
    non-i.i.d. protocol).
    """
    labels = np.asarray(labels)
    if num_workers < 1 or shards_per_worker < 1:
        raise ConfigurationError(
            f"num_workers and shards_per_worker must be >= 1, got "
            f"({num_workers}, {shards_per_worker})"
        )
    total_shards = num_workers * shards_per_worker
    if len(labels) < total_shards:
        raise ConfigurationError(
            f"{len(labels)} samples cannot fill {total_shards} shards"
        )
    rng = as_generator(seed)
    sorted_indices = np.argsort(labels, kind="stable")
    shards = np.array_split(sorted_indices, total_shards)
    assignment = rng.permutation(total_shards)
    partitions = []
    for worker in range(num_workers):
        shard_ids = assignment[
            worker * shards_per_worker : (worker + 1) * shards_per_worker
        ]
        partitions.append(np.sort(np.concatenate([shards[s] for s in shard_ids])))
    return partitions


def dirichlet_partition(
    labels: np.ndarray,
    num_workers: int,
    *,
    alpha: float = 0.5,
    min_per_worker: int = 1,
    max_attempts: int = 100,
    seed: SeedLike = None,
) -> list[np.ndarray]:
    """Label-skewed split with per-class Dirichlet(α) worker proportions.

    Small ``alpha`` → highly skewed; large ``alpha`` → approaches i.i.d.
    Retries until every worker holds at least ``min_per_worker`` samples.
    """
    labels = np.asarray(labels)
    if num_workers < 1:
        raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    if len(labels) < num_workers * min_per_worker:
        raise ConfigurationError(
            f"{len(labels)} samples cannot supply {min_per_worker} per "
            f"worker to {num_workers} workers"
        )
    rng = as_generator(seed)
    classes = np.unique(labels)
    for _attempt in range(max_attempts):
        buckets: list[list[np.ndarray]] = [[] for _ in range(num_workers)]
        for cls in classes:
            class_indices = np.flatnonzero(labels == cls)
            rng.shuffle(class_indices)
            proportions = rng.dirichlet(np.full(num_workers, alpha))
            cuts = (np.cumsum(proportions)[:-1] * len(class_indices)).astype(int)
            for worker, chunk in enumerate(np.split(class_indices, cuts)):
                buckets[worker].append(chunk)
        partitions = [
            np.sort(np.concatenate(parts)) if parts else np.array([], dtype=np.int64)
            for parts in buckets
        ]
        if all(len(p) >= min_per_worker for p in partitions):
            return partitions
    raise ConfigurationError(
        f"failed to draw a Dirichlet({alpha}) partition giving every one of "
        f"{num_workers} workers >= {min_per_worker} samples in "
        f"{max_attempts} attempts; increase alpha or lower min_per_worker"
    )
