"""Benchmark package (one module per reproduced paper artifact)."""
