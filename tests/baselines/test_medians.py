"""Tests for coordinate median, trimmed mean and geometric median."""

import numpy as np
import pytest

from repro.baselines.medians import (
    CoordinateWiseMedian,
    GeometricMedian,
    TrimmedMean,
    batched_weiszfeld,
)
from repro.exceptions import (
    ByzantineToleranceError,
    ConfigurationError,
    DimensionMismatchError,
)


class TestCoordinateWiseMedian:
    def test_matches_numpy(self, rng):
        vectors = rng.standard_normal((9, 5))
        np.testing.assert_allclose(
            CoordinateWiseMedian().aggregate(vectors), np.median(vectors, axis=0)
        )

    def test_resists_minority_outliers(self, honest_cloud):
        byzantine = 1e9 * np.ones((4, 8))
        stack = np.vstack([honest_cloud, byzantine])
        out = CoordinateWiseMedian().aggregate(stack)
        np.testing.assert_allclose(out, np.full(8, 2.0), atol=0.5)


class TestTrimmedMean:
    def test_f_zero_is_average(self, rng):
        vectors = rng.standard_normal((5, 3))
        np.testing.assert_allclose(
            TrimmedMean(f=0).aggregate(vectors), vectors.mean(axis=0)
        )

    def test_trims_extremes_per_coordinate(self):
        vectors = np.array([[0.0], [1.0], [2.0], [100.0], [-100.0]])
        out = TrimmedMean(f=1).aggregate(vectors)
        np.testing.assert_allclose(out, [1.0])

    def test_output_within_honest_range_when_f_correct(self, honest_cloud, rng):
        byzantine = 1e6 * rng.standard_normal((3, 8))
        stack = np.vstack([honest_cloud, byzantine])
        out = TrimmedMean(f=3).aggregate(stack)
        assert np.all(out >= honest_cloud.min(axis=0) - 1e-9)
        assert np.all(out <= honest_cloud.max(axis=0) + 1e-9)

    def test_requires_n_greater_than_2f(self):
        with pytest.raises(ByzantineToleranceError, match="n > 2f"):
            TrimmedMean(f=2).aggregate(np.zeros((4, 2)))


class TestGeometricMedian:
    def test_collinear_median(self):
        vectors = np.array([[0.0], [1.0], [10.0]])
        out = GeometricMedian().aggregate(vectors)
        assert out[0] == pytest.approx(1.0, abs=1e-6)

    def test_symmetric_configuration(self):
        # Vertices of an equilateral-ish symmetric set: median at centroid.
        vectors = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        out = GeometricMedian().aggregate(vectors)
        np.testing.assert_allclose(out, [0.0, 0.0], atol=1e-7)

    def test_single_point(self):
        out = GeometricMedian().aggregate(np.array([[3.0, 4.0]]))
        np.testing.assert_array_equal(out, [3.0, 4.0])

    def test_two_points_median_between(self):
        # Any point on the segment minimizes; Weiszfeld returns the midpoint
        # by symmetry of its initialization.
        vectors = np.array([[0.0, 0.0], [2.0, 0.0]])
        out = GeometricMedian().aggregate(vectors)
        assert 0.0 <= out[0] <= 2.0
        assert out[1] == pytest.approx(0.0, abs=1e-9)

    def test_majority_at_point_pins_median(self):
        # With > n/2 points at the same location, the geometric median IS
        # that location (breakdown-point property).
        vectors = np.vstack([np.tile([5.0, 5.0], (6, 1)), [[100.0, -3.0]], [[-40.0, 7.0]]])
        out = GeometricMedian().aggregate(vectors)
        np.testing.assert_allclose(out, [5.0, 5.0], atol=1e-6)

    def test_resists_far_outliers_better_than_mean(self, honest_cloud):
        byzantine = 1e6 * np.ones((4, 8))
        stack = np.vstack([honest_cloud, byzantine])
        gm = GeometricMedian().aggregate(stack)
        mean = stack.mean(axis=0)
        truth = np.full(8, 2.0)
        assert np.linalg.norm(gm - truth) < np.linalg.norm(mean - truth) / 1e3

    def test_gradient_optimality(self, rng):
        # At the optimum the sum of unit vectors toward the points ~ 0.
        vectors = rng.standard_normal((15, 3))
        out = GeometricMedian(tolerance=1e-12).aggregate(vectors)
        diffs = vectors - out
        norms = np.linalg.norm(diffs, axis=1)
        residual = (diffs / norms[:, None]).sum(axis=0)
        assert np.linalg.norm(residual) < 1e-4

    def test_nonpositive_tolerance_is_configuration_error(self):
        # Regression: a bad constructor parameter is a configuration
        # mistake, not a runtime convergence failure.
        for bad in (0.0, -1e-9, -1.0):
            with pytest.raises(ConfigurationError, match="tolerance"):
                GeometricMedian(tolerance=bad)

    def test_name_encodes_nondefault_parameters(self):
        # The engine groups scenarios by (type, name); differently
        # configured instances must not share a batched kernel group.
        assert GeometricMedian().name == "geometric-median"
        tight = GeometricMedian(tolerance=1e-12, max_iterations=500)
        assert tight.name != GeometricMedian().name
        assert "1e-12" in tight.name and "500" in tight.name

    def test_name_distinguishes_nearby_tolerances(self):
        # The name must round-trip the exact float: two distinct
        # tolerances collapsing to one name would silently merge their
        # scenarios into a single batched kernel group.
        a = GeometricMedian(tolerance=1.00000011e-9)
        b = GeometricMedian(tolerance=1.00000019e-9)
        assert a.name != b.name

    def test_translation_invariance_at_large_offset(self, rng):
        # Regression for the absolute coincidence threshold: detection is
        # scale-relative, so shifting every input by 1e8 must shift the
        # median identically.  The majority cluster forces the iterate
        # through the data-point singularity handling at both scales.
        cloud = np.vstack(
            [np.tile([5.0, -3.0, 2.0], (6, 1)), 30.0 * rng.standard_normal((4, 3))]
        )
        gm = GeometricMedian()
        base = gm.aggregate(cloud)
        shifted = gm.aggregate(cloud + 1e8)
        np.testing.assert_allclose(shifted - 1e8, base, rtol=0, atol=1e-4)
        # The breakdown-point property must survive the offset exactly:
        # the majority location is still the median.
        np.testing.assert_array_equal(base, [5.0, -3.0, 2.0])
        np.testing.assert_array_equal(shifted, np.array([5.0, -3.0, 2.0]) + 1e8)

    def test_tiny_scale_cluster_not_spuriously_collapsed(self):
        # At magnitudes near the old absolute threshold the coincidence
        # test must not merge genuinely distinct points: a 6-of-8
        # majority at p still pins the median at p, not at some average.
        p = np.array([3e-7, -2e-7])
        cloud = np.vstack([np.tile(p, (6, 1)), [[9e-6, 0.0]], [[0.0, -8e-6]]])
        out = GeometricMedian().aggregate(cloud)
        np.testing.assert_allclose(out, p, rtol=0, atol=1e-12)


class TestBatchedWeiszfeld:
    def test_single_scenario_matches_rule(self, rng):
        vectors = rng.standard_normal((9, 4))
        rule = GeometricMedian()
        direct = rule.aggregate(vectors)
        batched = batched_weiszfeld(vectors[None])[0]
        assert direct.tobytes() == batched.tobytes()

    def test_n_equals_one(self):
        out = batched_weiszfeld(np.array([[[3.0, 4.0]], [[-1.0, 2.0]]]))
        np.testing.assert_array_equal(out, [[3.0, 4.0], [-1.0, 2.0]])

    def test_scenarios_converge_independently(self, rng):
        # A hard scenario (majority cluster, sublinear approach) batched
        # with easy ones must not perturb the easy results.
        easy = rng.standard_normal((2, 7, 3))
        hard = np.vstack([np.tile([1.0, 1.0, 1.0], (5, 1)), [[50.0, 0.0, 0.0]], [[0.0, -50.0, 0.0]]])
        batch = np.concatenate([easy, hard[None]], axis=0)
        together = batched_weiszfeld(batch)
        for b in range(2):
            alone = batched_weiszfeld(easy[b : b + 1])[0]
            assert together[b].tobytes() == alone.tobytes()
        np.testing.assert_allclose(together[2], [1.0, 1.0, 1.0], atol=1e-8)

    def test_rejects_bad_shapes_and_parameters(self):
        with pytest.raises(DimensionMismatchError):
            batched_weiszfeld(np.ones((3, 4)))
        with pytest.raises(DimensionMismatchError):
            batched_weiszfeld(np.empty((0, 4, 2)))
        with pytest.raises(ConfigurationError, match="tolerance"):
            batched_weiszfeld(np.ones((1, 3, 2)), tolerance=0.0)
        with pytest.raises(ConfigurationError, match="max_iterations"):
            batched_weiszfeld(np.ones((1, 3, 2)), max_iterations=0)
