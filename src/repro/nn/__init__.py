"""Minimal pure-numpy neural-network substrate.

The full paper evaluates Krum on multi-layer perceptrons trained with
mini-batch SGD.  This subpackage provides the pieces needed to reproduce
that setting without any ML framework: parameterized layers with exact
backpropagation, numerically stable losses, standard initializers and a
``Sequential`` container whose parameters/gradients flatten to the single
``R^d`` vectors the parameter server aggregates.

Every layer and loss is verified against central finite differences in
the test suite.
"""

from repro.nn.initializers import he_normal, normal, xavier_uniform, zeros
from repro.nn.layers import (
    Dense,
    Dropout,
    Layer,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import (
    BinaryCrossEntropyWithLogits,
    Loss,
    MeanSquaredError,
    SoftmaxCrossEntropy,
)
from repro.nn.network import Sequential
from repro.nn.parameter import Parameter

__all__ = [
    "Parameter",
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "Loss",
    "MeanSquaredError",
    "SoftmaxCrossEntropy",
    "BinaryCrossEntropyWithLogits",
    "Sequential",
    "zeros",
    "normal",
    "xavier_uniform",
    "he_normal",
]
