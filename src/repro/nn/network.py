"""``Sequential`` container and the flat-parameter view used by the server.

The parameter server of the paper works on single vectors in ``R^d``; a
``Sequential`` network exposes exactly that view: ``get_flat_parameters``
/ ``set_flat_parameters`` round-trip all layer parameters through one
float64 vector, and ``loss_and_flat_gradient`` produces the gradient
estimate a worker sends upstream.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.nn.layers import Layer
from repro.nn.losses import Loss
from repro.nn.parameter import Parameter
from repro.utils.linalg import flatten_arrays, unflatten_array

__all__ = ["Sequential"]


class Sequential:
    """A feed-forward stack of layers applied in order."""

    def __init__(self, layers: Iterable[Layer]):
        self.layers: list[Layer] = list(layers)
        if not self.layers:
            raise DimensionMismatchError("Sequential requires at least one layer")
        self._shapes = [p.shape for p in self.parameters]

    @property
    def parameters(self) -> list[Parameter]:
        """All trainable parameters in layer order."""
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters)
        return params

    @property
    def num_parameters(self) -> int:
        """Total parameter count d — the dimension Krum aggregates in."""
        return int(sum(p.size for p in self.parameters))

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def forward(self, inputs: np.ndarray, *, training: bool = False) -> np.ndarray:
        out = np.asarray(inputs, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    __call__ = forward

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad_output, dtype=np.float64)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------
    # Flat-vector view (the R^d interface of the paper's model section)
    # ------------------------------------------------------------------

    def get_flat_parameters(self) -> np.ndarray:
        """Return all parameters concatenated into one ``(d,)`` vector."""
        flat, _shapes = flatten_arrays([p.value for p in self.parameters])
        return flat

    def set_flat_parameters(self, flat: np.ndarray) -> None:
        """Load parameters from a ``(d,)`` vector (inverse of ``get``)."""
        values = unflatten_array(flat, self._shapes)
        for param, value in zip(self.parameters, values):
            param.value = np.asarray(value, dtype=np.float64).reshape(param.shape)

    def get_flat_gradient(self) -> np.ndarray:
        """Return all parameter gradients concatenated into one vector."""
        flat, _shapes = flatten_arrays([p.grad for p in self.parameters])
        return flat

    def loss_and_flat_gradient(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        loss: Loss,
        *,
        training: bool = True,
    ) -> tuple[float, np.ndarray]:
        """One forward/backward pass; returns (loss, flat gradient).

        This is the worker-side computation of the paper's model: given
        the broadcast parameters (already loaded), estimate the gradient
        on a mini-batch.
        """
        self.zero_grad()
        predictions = self.forward(inputs, training=training)
        value = loss.forward(predictions, targets)
        self.backward(loss.backward())
        return value, self.get_flat_gradient()
