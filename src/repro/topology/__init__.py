"""Decentralized communication graphs and the serverless gossip engine.

The topology registry names seeded, pure ``neighbors(node, round)``
graph families; :class:`GossipSimulation` runs Byzantine-tolerant SGD
over them without a parameter server, each node aggregating its
in-neighborhood with a local robust rule.
"""

from repro.topology.base import (
    CompleteTopology,
    ErdosRenyiTopology,
    KRegularTopology,
    RingTopology,
    TimeVaryingTopology,
    Topology,
    counter_uniform,
)
from repro.topology.gossip import GossipSimulation
from repro.topology.registry import (
    available_topologies,
    make_topology,
    register_topology,
    topology_factory,
)

__all__ = [
    "Topology",
    "CompleteTopology",
    "RingTopology",
    "KRegularTopology",
    "ErdosRenyiTopology",
    "TimeVaryingTopology",
    "counter_uniform",
    "GossipSimulation",
    "register_topology",
    "available_topologies",
    "topology_factory",
    "make_topology",
]
