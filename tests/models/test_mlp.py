"""Tests for the MLP classifier model."""

import numpy as np
import pytest

from repro.data.synthetic import make_blobs
from repro.exceptions import ConfigurationError
from repro.models.mlp import MLPClassifier
from tests.helpers import assert_gradients_close, numerical_gradient


class TestMLPClassifier:
    def test_dimension_formula(self):
        model = MLPClassifier(10, 3, hidden_sizes=(8, 4))
        expected = (10 * 8 + 8) + (8 * 4 + 4) + (4 * 3 + 3)
        assert model.dimension == expected

    def test_gradient_matches_numeric(self, rng):
        model = MLPClassifier(4, 3, hidden_sizes=(6,), activation="tanh")
        params = model.init_params(rng) * 0.5
        inputs = rng.standard_normal((5, 4))
        targets = rng.integers(0, 3, size=5)
        analytic = model.gradient(params, inputs, targets)
        numeric = numerical_gradient(
            lambda p: model.loss(p, inputs, targets), params.copy()
        )
        assert_gradients_close(analytic, numeric, rtol=1e-4, atol=1e-7)

    def test_loss_and_gradient_consistent(self, rng):
        model = MLPClassifier(3, 2, hidden_sizes=(5,))
        params = model.init_params(rng)
        inputs = rng.standard_normal((6, 3))
        targets = rng.integers(0, 2, size=6)
        loss1 = model.loss(params, inputs, targets)
        loss2, grad = model.loss_and_gradient(params, inputs, targets)
        assert loss1 == pytest.approx(loss2)
        assert grad.shape == (model.dimension,)

    def test_init_params_reproducible(self):
        model = MLPClassifier(4, 2)
        a = model.init_params(np.random.default_rng(0))
        b = model.init_params(np.random.default_rng(0))
        np.testing.assert_array_equal(a, b)

    def test_learns_blobs(self, rng):
        dataset = make_blobs(200, num_classes=3, num_features=2, spread=0.6, seed=8)
        model = MLPClassifier(2, 3, hidden_sizes=(16,))
        params = model.init_params(rng)
        for _step in range(300):
            params -= 0.3 * model.gradient(params, dataset.inputs, dataset.targets)
        assert model.accuracy(params, dataset.inputs, dataset.targets) > 0.95

    def test_predict_shape_and_range(self, rng):
        model = MLPClassifier(5, 4, hidden_sizes=(7,))
        params = model.init_params(rng)
        preds = model.predict(params, rng.standard_normal((9, 5)))
        assert preds.shape == (9,)
        assert np.all((preds >= 0) & (preds < 4))

    def test_all_activations_buildable(self, rng):
        for act in ("relu", "tanh", "sigmoid"):
            model = MLPClassifier(3, 2, hidden_sizes=(4,), activation=act)
            params = model.init_params(rng)
            assert np.isfinite(
                model.loss(params, rng.standard_normal((2, 3)), np.array([0, 1]))
            )

    def test_rejects_unknown_activation(self):
        with pytest.raises(ConfigurationError, match="activation"):
            MLPClassifier(3, 2, activation="swish")

    def test_rejects_bad_hidden_sizes(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier(3, 2, hidden_sizes=(0,))
