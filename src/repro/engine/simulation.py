"""The batched round-loop executor.

``BatchedSimulation`` takes B freshly-built
:class:`~repro.distributed.simulator.TrainingSimulation` objects — B
replica scenarios over the same cluster shape ``(n, d)`` — and executes
all of them together, carrying one ``(B, n, d)`` proposal tensor through
the synchronous round loop.  Aggregation runs through the batched
kernels of :mod:`repro.core.batched` (grouped by rule configuration,
with a per-scenario loop fallback for rules without a kernel), and the
SGD update is one ``(B, d)`` tensor operation.

The executor is **trajectory-identical** to running each simulation on
its own: it consumes the same per-worker RNG streams in the same order,
crafts attacks from the same :class:`~repro.attacks.base.AttackContext`,
and the batched kernels are bit-for-bit equal to the per-scenario rules
— so every ``TrainingHistory`` it returns matches the loop executor's
record for record, float for float.  ``tests/engine/test_differential.py``
enforces exactly that.

What makes it faster than B independent loops:

* one batched aggregation kernel call per rule group per round instead
  of B Python dispatches (the O(n²·d) GEMM of Lemma 4.1 amortizes);
* one parameter update for the whole batch;
* gradient sharing: when a scenario's honest workers all wrap the same
  deterministic gradient function (the Gaussian-oracle workload), the
  gradient is evaluated once per scenario-round instead of once per
  worker-round — bit-identical because the oracle adds its noise to the
  same expected vector either way;
* no per-round message objects or server bookkeeping.

Minibatch (dataset-backed) workloads take a per-worker batched path
instead of the shared-gradient fast path: each round, the engine first
draws every worker's mini-batch indices in worker loop order — consuming
each private RNG stream exactly as the loop executor's interleaved
``estimate`` calls would — and then computes the per-worker model
gradients.  The index draw is the only stream-consuming step, so the
differential bit-for-bit guarantee extends to every registered workload
(see ``tests/engine/test_workloads.py``).

Asynchronous scenarios (``max_staleness``/``delay_schedule`` on the
simulation) run in the same batch: the executor keeps the parameter
matrices of the last ``max_staleness + 1`` rounds and fills each stale
worker's proposal from the history row its delay schedule selects —
exactly the parameters the loop executor's server would have served it.
Staleness-aware rules (the Kardam-style filter) have no vectorized
kernel yet, so their cells aggregate through the per-scenario loop
fallback, which threads the per-proposal staleness and used-parameter
blocks through the same staleness-aware interface the
:class:`~repro.distributed.server.ParameterServer` calls; plain rules
under staleness keep their native kernels.  ``native_fraction`` reports
the split.

Server-tier scenarios (``num_servers``/``byzantine_servers`` on the
simulation) batch the same way: each round the executor asks the
scenario's :class:`~repro.servers.ReplicatedServerGroup` for the
round's *worker view* — the coordinate median over replica broadcasts,
computed from the executor's own parameter row — exactly once, and
routes every worker read (fresh proposals, stale history reads, the
worker attack's omniscient context and the used-parameter blocks of
staleness-aware rules) through the per-scenario view window instead of
the raw parameter history.  The canonical SGD update, records and
evaluation stay on the raw row, mirroring the loop executor's canonical
server state, and the server-attack RNG stream advances once per
scenario-round in both executors — so the differential guarantee covers
tier cells too.

The input simulations are *consumed*: their worker and attack RNG
streams advance exactly as if each had run individually, so do not reuse
them afterwards.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.attacks.base import AttackContext
from repro.backend import ArrayBackend, resolve_backend
from repro.core.batched import (
    BatchedAggregator,
    batch_group_key,
    make_batched_aggregator,
)
from repro.distributed.metrics import RoundRecord, TrainingHistory
from repro.distributed.simulator import TrainingSimulation
from repro.exceptions import ConfigurationError, SimulationError
from repro.gradients.minibatch import MinibatchEstimator
from repro.gradients.oracle import GaussianOracleEstimator

__all__ = ["BatchedSimulation"]


@dataclass
class _Scenario:
    """Per-scenario state extracted from one TrainingSimulation."""

    index: int  # position in the caller's input order
    simulation: TrainingSimulation
    params: np.ndarray  # (d,) current x_t — row view into the batch matrix
    shared_gradient_fn: object | None  # fast path: one ∇Q call per round
    minibatch: bool  # all honest estimators are MinibatchEstimators
    honest_ids: np.ndarray  # ascending honest worker ids
    byzantine_ids: np.ndarray  # ascending Byzantine worker ids
    byzantine_set: frozenset[int]
    # Worker indices the scenario's rule selected in the previous round
    # (None before the first) — the executor's analogue of
    # ``ParameterServer.last_selected``, feeding defense-probing attacks.
    last_selected: np.ndarray | None = None
    # Worker-view window of an active server tier (None for the
    # degenerate single reliable server): the last max_staleness + 1
    # coordinate-median views, views[-1] being the current round's —
    # the executor's analogue of ReplicatedServerGroup._views.
    views: deque[np.ndarray] | None = None


class _Group:
    """A contiguous run of scenarios sharing one batched kernel."""

    def __init__(self, start: int, stop: int, adapter: BatchedAggregator):
        self.start = start
        self.stop = stop
        self.adapter = adapter


def _shared_gradient_fn(sim: TrainingSimulation):
    """The common deterministic gradient callable of a simulation's honest
    estimators, or ``None`` when the workers are not oracle-backed (then
    the engine falls back to per-worker ``estimate`` calls)."""
    estimators = [worker.estimator for worker in sim.honest_workers]
    if not all(isinstance(e, GaussianOracleEstimator) for e in estimators):
        return None
    first = estimators[0].gradient_fn
    if all(e.gradient_fn == first for e in estimators):
        return first
    return None


class BatchedSimulation:
    """Execute B same-shaped training simulations as one batched loop.

    Parameters
    ----------
    simulations:
        Freshly-constructed simulations sharing ``num_workers`` and
        parameter dimension.  Aggregators, attacks, schedules, Byzantine
        placement and seeds may all differ per scenario.
    chunk_size:
        Passed to the batched distance kernels to cap the ``(B, n, n)``
        intermediate memory; ``None`` processes each rule group in one
        chunk.
    backend:
        Array backend the native aggregation kernels compute through —
        a registered name ("numpy", "torch"), a configured
        :class:`~repro.backend.ArrayBackend` instance, or ``None`` for
        the default numpy backend (the configuration whose trajectories
        are bit-for-bit identical to the per-scenario loop).  Worker
        gradient estimation, attacks and bookkeeping stay host-side
        (numpy); the backend is handed the stacked ``(B, n, d)``
        proposal tensor each round — the O(n²·d) part of the round.
        Host staging buffers allocate with the backend's float dtype so
        a reduced-precision backend is not silently up-cast.
    """

    def __init__(
        self,
        simulations: Sequence[TrainingSimulation],
        *,
        chunk_size: int | None = None,
        backend: ArrayBackend | str | None = None,
    ):
        sims = list(simulations)
        if not sims:
            raise ConfigurationError("need at least one simulation to batch")
        self.num_workers = sims[0].num_workers
        self.dimension = sims[0].server.dimension
        for sim in sims:
            if sim.num_workers != self.num_workers:
                raise ConfigurationError(
                    f"all scenarios must share n; got {sim.num_workers} "
                    f"and {self.num_workers}"
                )
            if sim.server.dimension != self.dimension:
                raise ConfigurationError(
                    f"all scenarios must share d; got {sim.server.dimension} "
                    f"and {self.dimension}"
                )
            if sim.server.round_index != 0:
                # A partially-run simulation would restart schedules and
                # attack round counters at t = 0 while carrying advanced
                # parameters — a silently wrong trajectory.
                raise ConfigurationError(
                    f"simulations must be freshly built; one already ran "
                    f"{sim.server.round_index} round(s)"
                )
        # A stateful attack instance interleaves its per-round state
        # across every scenario that shares it, silently diverging from
        # the per-scenario loop execution — reject the sharing outright.
        seen_stateful: dict[int, int] = {}
        for slot, sim in enumerate(sims):
            if sim.attack is None or not sim.attack.stateful:
                continue
            other = seen_stateful.setdefault(id(sim.attack), slot)
            if other != slot:
                raise ConfigurationError(
                    f"stateful attack {sim.attack.name!r} is shared by "
                    f"scenarios {other} and {slot}; build one instance "
                    f"per scenario"
                )
        # The same sharing hazard exists on the server side: a stateful
        # server attack (stale-replay's broadcast history) interleaved
        # across scenarios would replay the wrong scenario's parameters.
        seen_server_stateful: dict[int, int] = {}
        for slot, sim in enumerate(sims):
            server_attack = getattr(sim.server, "server_attack", None)
            if server_attack is None or not server_attack.stateful:
                continue
            other = seen_server_stateful.setdefault(id(server_attack), slot)
            if other != slot:
                raise ConfigurationError(
                    f"stateful server attack {server_attack.name!r} is "
                    f"shared by scenarios {other} and {slot}; build one "
                    f"instance per scenario"
                )
        self.batch_size = len(sims)
        self.chunk_size = chunk_size
        self.backend = resolve_backend(backend)
        # Host-side staging matches the backend's float precision so a
        # float32 backend is not silently promoted back to float64
        # between rounds.
        self._float_dtype = self.backend.numpy_float_dtype

        # Reorder scenarios so each kernel group is a contiguous batch
        # slice (no gather copies in the round loop); remember the
        # caller's order for the returned histories.
        keyed = sorted(
            range(len(sims)),
            key=lambda i: (batch_group_key(sims[i].server.aggregator), i),
        )
        self._params = np.empty(
            (self.batch_size, self.dimension), dtype=self._float_dtype
        )
        self._scenarios: list[_Scenario] = []
        for slot, original_index in enumerate(keyed):
            sim = sims[original_index]
            self._params[slot] = sim.server.params
            self._scenarios.append(
                _Scenario(
                    index=original_index,
                    simulation=sim,
                    params=self._params[slot],
                    shared_gradient_fn=_shared_gradient_fn(sim),
                    minibatch=all(
                        isinstance(w.estimator, MinibatchEstimator)
                        # A subclass overriding estimate() may not
                        # decompose into draw_indices + gradient_at;
                        # route it through the generic per-worker
                        # estimate() path so the loop/batched identity
                        # holds regardless.
                        and type(w.estimator).estimate
                        is MinibatchEstimator.estimate
                        for w in sim.honest_workers
                    ),
                    honest_ids=np.asarray(
                        [w.worker_id for w in sim.honest_workers],
                        dtype=np.int64,
                    ),
                    byzantine_ids=np.asarray(
                        sim.byzantine_ids, dtype=np.int64
                    ),
                    byzantine_set=frozenset(sim.byzantine_ids),
                    views=(
                        deque(maxlen=sim.max_staleness + 1)
                        if getattr(sim.server, "tier_active", False)
                        else None
                    ),
                )
            )

        self._groups: list[_Group] = []
        start = 0
        while start < self.batch_size:
            key = batch_group_key(
                self._scenarios[start].simulation.server.aggregator
            )
            stop = start
            while (
                stop < self.batch_size
                and batch_group_key(
                    self._scenarios[stop].simulation.server.aggregator
                )
                == key
            ):
                stop += 1
            adapter = make_batched_aggregator(
                [
                    s.simulation.server.aggregator
                    for s in self._scenarios[start:stop]
                ],
                chunk_size=chunk_size,
                backend=self.backend,
            )
            self._groups.append(_Group(start, stop, adapter))
            start = stop

        self._proposals = np.empty(
            (self.batch_size, self.num_workers, self.dimension),
            dtype=self._float_dtype,
        )
        self._round_index = 0
        # Bounded parameter history for stale proposal filling (and the
        # used-parameter blocks of staleness-aware rules): one (B, d)
        # matrix per retained round, history[-1] being the current
        # round's parameters — the executor's analogue of the server's
        # window.  Each round *replaces* self._params, so appending the
        # matrix itself snapshots it without a copy.
        window = 1 + max(sim.max_staleness for sim in sims)
        self._history: deque[np.ndarray] = deque(maxlen=window)
        self._history.append(self._params)

    # ------------------------------------------------------------------

    @property
    def params(self) -> np.ndarray:
        """Current parameters, one row per scenario in input order."""
        out = np.empty_like(self._params)
        for scenario in self._scenarios:
            out[scenario.index] = scenario.params
        return out

    @property
    def native_fraction(self) -> float:
        """Fraction of scenarios aggregated by vectorized kernels."""
        native = sum(
            group.stop - group.start
            for group in self._groups
            if group.adapter.is_native
        )
        return native / self.batch_size

    # ------------------------------------------------------------------

    def _params_at(self, slot: int, staleness: int) -> np.ndarray:
        """One scenario's parameter row as of ``staleness`` rounds ago —
        the batched analogue of ``ParameterServer.params_at``."""
        return self._history[-1 - staleness][slot]

    def _staleness_row(self, slot: int, round_index: int) -> np.ndarray | None:
        """Per-worker effective staleness of one scenario this round, or
        ``None`` for a synchronous scenario (nothing to look up)."""
        sim = self._scenarios[slot].simulation
        if not sim.is_async:
            return None
        return np.asarray(
            [
                sim.effective_staleness(worker_id, round_index)
                for worker_id in range(sim.num_workers)
            ],
            dtype=np.int64,
        )

    def _fill_proposals(
        self, slot: int, staleness_row: np.ndarray | None
    ) -> np.ndarray | None:
        """Compute one scenario's honest proposals into the batch tensor;
        returns the *fresh* expected gradient when the shared-oracle fast
        path evaluated it (for reuse as the attack's omniscient oracle).

        ``staleness_row`` routes each worker to the parameter history
        row its delay schedule selects; ``None`` (or an all-zero row)
        reads the current parameters, exactly like the synchronous path.
        """
        scenario = self._scenarios[slot]
        sim = scenario.simulation

        # One defensive copy per *distinct staleness* this round (one
        # total in the synchronous case, like the pre-async executor) —
        # workers sharing a staleness read the same snapshot, exactly as
        # the loop executor's workers share one broadcast per round.
        params_cache: dict[int, np.ndarray] = {}

        def worker_params(worker_id: int) -> np.ndarray:
            tau = (
                0
                if staleness_row is None
                else int(staleness_row[worker_id])
            )
            if tau not in params_cache:
                if scenario.views is not None:
                    # Tier scenario: workers read the replica-median
                    # view window, never the raw parameter rows —
                    # exactly what the group's broadcast()/params_at()
                    # serve in the loop executor.
                    source = scenario.views[-1 - tau]
                elif tau == 0:
                    source = scenario.params
                else:
                    source = self._params_at(slot, tau)
                params_cache[tau] = source.copy()
            return params_cache[tau]

        row = self._proposals[slot]
        if scenario.shared_gradient_fn is not None:
            # One gradient evaluation per distinct staleness this round
            # — bit-identical to per-worker evaluation because the
            # oracle is deterministic in its parameters.
            expected_at: dict[int, np.ndarray] = {}
            for worker in sim.honest_workers:
                tau = (
                    0
                    if staleness_row is None
                    else int(staleness_row[worker.worker_id])
                )
                if tau not in expected_at:
                    expected_at[tau] = np.asarray(
                        scenario.shared_gradient_fn(
                            worker_params(worker.worker_id)
                        ),
                        dtype=self._float_dtype,
                    )
                row[worker.worker_id] = worker.estimator.sample_about(
                    expected_at[tau], worker.rng
                )
            return expected_at.get(0)
        if scenario.minibatch:
            # Per-worker batched path for dataset workloads: draw every
            # worker's mini-batch indices first, in worker loop order —
            # the only RNG-consuming step, so the streams advance exactly
            # as the loop executor's interleaved estimate() calls — then
            # compute the per-worker model gradients.
            draws = [
                (worker, worker.estimator.draw_indices(worker.rng))
                for worker in sim.honest_workers
            ]
            for worker, indices in draws:
                row[worker.worker_id] = worker.estimator.gradient_at(
                    worker_params(worker.worker_id), indices
                )
            return None
        for worker in sim.honest_workers:
            row[worker.worker_id] = worker.estimator.estimate(
                worker_params(worker.worker_id), worker.rng
            )
        return None

    def _craft_attack(
        self,
        slot: int,
        expected: np.ndarray | None,
        staleness_row: np.ndarray | None,
    ) -> None:
        scenario = self._scenarios[slot]
        sim = scenario.simulation
        if sim.num_byzantine == 0:
            return
        assert sim.attack is not None
        # The omniscient attack sees what was broadcast — under an
        # active tier that is the worker view, not the canonical row.
        params = (
            scenario.views[-1].copy()
            if scenario.views is not None
            else scenario.params.copy()
        )
        true_gradient = None
        if sim.true_gradient_fn is not None:
            if (
                expected is not None
                and scenario.shared_gradient_fn == sim.true_gradient_fn
            ):
                true_gradient = expected
            else:
                true_gradient = sim.true_gradient_fn(params)
        honest_params = None
        if staleness_row is not None:
            if scenario.views is not None:
                honest_params = np.stack(
                    [
                        scenario.views[-1 - int(staleness_row[i])].copy()
                        for i in scenario.honest_ids
                    ]
                )
            else:
                honest_params = np.stack(
                    [
                        self._params_at(slot, int(staleness_row[i])).copy()
                        for i in scenario.honest_ids
                    ]
                )
        context = AttackContext(
            round_index=self._round_index,
            params=params,
            honest_gradients=self._proposals[slot][scenario.honest_ids],
            byzantine_indices=scenario.byzantine_ids,
            honest_indices=scenario.honest_ids,
            num_workers=sim.num_workers,
            rng=sim.attack_rng,
            aggregator=sim.server.aggregator,
            true_gradient=true_gradient,
            honest_staleness=(
                None
                if staleness_row is None
                else staleness_row[scenario.honest_ids]
            ),
            byzantine_staleness=(
                None
                if staleness_row is None
                else staleness_row[scenario.byzantine_ids]
            ),
            honest_params=honest_params,
            selected_last_round=(
                np.isin(scenario.byzantine_ids, scenario.last_selected)
                if scenario.last_selected is not None
                else None
            ),
        )
        crafted = sim.attack.craft(context)
        self._proposals[slot][scenario.byzantine_ids] = crafted

    def _group_staleness(
        self, group: _Group, rows: list[np.ndarray | None]
    ) -> tuple[np.ndarray, np.ndarray]:
        """The per-proposal staleness and used-parameter blocks of one
        staleness-aware rule group — the same arrays the loop executor's
        server hands ``aggregate_detailed_stale`` (zeros and the current
        parameters for synchronous scenarios in the group)."""
        size = group.stop - group.start
        staleness = np.zeros((size, self.num_workers), dtype=np.int64)
        used = np.empty(
            (size, self.num_workers, self.dimension), dtype=self._float_dtype
        )
        for offset in range(size):
            slot = group.start + offset
            row = rows[slot]
            views = self._scenarios[slot].views
            if row is None:
                used[offset] = (
                    views[-1] if views is not None else self._history[-1][slot]
                )
                continue
            staleness[offset] = row
            for worker_id in range(self.num_workers):
                used[offset, worker_id] = (
                    views[-1 - int(row[worker_id])]
                    if views is not None
                    else self._params_at(slot, int(row[worker_id]))
                )
        return staleness, used

    def run_round(self) -> list[RoundRecord]:
        """Execute one round (synchronous or bounded-stale) for every
        scenario.

        Returns the per-scenario records in the caller's input order.
        """
        t = self._round_index
        rates = np.empty(self.batch_size, dtype=self._float_dtype)
        rows: list[np.ndarray | None] = [None] * self.batch_size
        for slot, scenario in enumerate(self._scenarios):
            server = scenario.simulation.server
            rates[slot] = server.schedule(t)
            if scenario.views is not None:
                # Materialize the round's worker view exactly once per
                # scenario, from the executor's canonical row — the
                # same call (and the same one server-attack RNG draw)
                # the loop executor's broadcast() makes.
                scenario.views.append(
                    server.corrupted_view(scenario.params, t)
                )
            rows[slot] = self._staleness_row(slot, t)
            expected = self._fill_proposals(slot, rows[slot])
            self._craft_attack(slot, expected, rows[slot])

        aggregate = np.empty(
            (self.batch_size, self.dimension), dtype=self._float_dtype
        )
        selected: list[np.ndarray] = [None] * self.batch_size  # type: ignore[list-item]
        for group in self._groups:
            if group.adapter.supports_staleness:
                staleness, used = self._group_staleness(group, rows)
                result = group.adapter.aggregate_batch(
                    self._proposals[group.start : group.stop],
                    staleness=staleness,
                    used_params=used,
                )
            else:
                result = group.adapter.aggregate_batch(
                    self._proposals[group.start : group.stop]
                )
            # Native kernels return backend-typed arrays (torch tensors
            # on the torch backend); materialize them host-side once per
            # round for the SGD update and record bookkeeping.
            aggregate[group.start : group.stop] = self.backend.to_numpy(
                result.vectors
            )
            for offset, rows_selected in enumerate(result.selected):
                selected[group.start + offset] = rows_selected

        # One batched SGD step: x_{t+1} = x_t − γ_t · F(...), elementwise
        # identical to the per-scenario update.  The subtraction builds a
        # fresh matrix, so the retained history rounds stay valid
        # snapshots.
        self._params = self._params - rates[:, None] * aggregate
        self._history.append(self._params)
        records: list[RoundRecord] = [None] * self.batch_size  # type: ignore[list-item]
        for slot, scenario in enumerate(self._scenarios):
            scenario.params = self._params[slot]
            server = scenario.simulation.server
            if server.halt_on_nonfinite and not np.all(
                np.isfinite(scenario.params)
            ):
                # Mirror ParameterServer.step's operational guard — the
                # batched executor advances parameters outside the
                # server, so it must enforce the halt itself.
                raise SimulationError(
                    f"parameters became non-finite at round {t} "
                    f"(aggregator {server.aggregator.name}); a Byzantine "
                    f"proposal reached the update"
                )
            chosen = tuple(int(i) for i in selected[slot])
            scenario.last_selected = np.asarray(
                selected[slot], dtype=np.int64
            ).copy()
            records[scenario.index] = RoundRecord(
                round_index=t,
                learning_rate=float(rates[slot]),
                aggregate_norm=float(np.linalg.norm(aggregate[slot])),
                params_norm=float(np.linalg.norm(scenario.params)),
                selected=chosen,
                byzantine_selected=sum(
                    1 for i in chosen if i in scenario.byzantine_set
                ),
            )
            # Mark the round as consumed on the underlying server so a
            # second BatchedSimulation (or a direct sim.run) over these
            # simulations trips the freshness guard instead of silently
            # re-running with advanced RNG streams.  The server's params
            # are intentionally NOT synced — the batch matrix owns them.
            server.round_index += 1
        self._round_index += 1
        return records

    def run(
        self, num_rounds: int, *, eval_every: int = 10
    ) -> list[TrainingHistory]:
        """Run all scenarios for ``num_rounds`` rounds.

        Mirrors :meth:`TrainingSimulation.run`: every ``eval_every``-th
        round and the final round are evaluated.  Returns one history
        per scenario, in the order the simulations were passed in.
        """
        if num_rounds < 1:
            raise ConfigurationError(
                f"num_rounds must be >= 1, got {num_rounds}"
            )
        if eval_every < 1:
            raise ConfigurationError(
                f"eval_every must be >= 1, got {eval_every}"
            )
        histories = [TrainingHistory() for _ in range(self.batch_size)]
        for t in range(num_rounds):
            records = self.run_round()
            evaluate_now = t % eval_every == 0 or t == num_rounds - 1
            for scenario in self._scenarios:
                record = records[scenario.index]
                if evaluate_now:
                    record = scenario.simulation.evaluate_record(
                        record, params=scenario.params.copy()
                    )
                histories[scenario.index].append(record)
        return histories
