"""Batched aggregation kernels — many scenarios through one tensor op.

The scenario-grid engine (:mod:`repro.engine`) carries a ``(B, n, d)``
tensor of proposal stacks — B replica scenarios, n workers each — through
its round loop.  Executing the choice function once per scenario from
Python makes benchmark wall-time a function of interpreter overhead
rather than of the O(n² · d) arithmetic of Lemma 4.1; this module instead
stacks the scenarios into single tensor kernels (one batched GEMM for all
Krum distance matrices, one batched sort for all trimmed means, one
masked committee sweep for all Bulyan selections, one lock-step Weiszfeld
iteration for all geometric medians, ...).

The kernels are backend-parametric: they compute through an
:class:`~repro.backend.ArrayBackend` namespace (numpy by default, torch
when the optional dependency is installed) instead of calling ``np.*``
directly — the kernel-author rule is *import the backend namespace,
never numpy, inside kernels*.  On the default numpy backend every
kernel is **bit-for-bit identical** to the per-scenario rule it
replaces: ``aggregate_batch(stacks)[b]`` equals
``aggregator.aggregate_detailed(stacks[b])`` down to the last float.
That identity — enforced by ``tests/engine/test_differential.py`` — is
what makes the engine a safe substitute for the per-scenario loop.
Non-default backends are qualified by the parity suite in
``tests/backend/`` instead (float64-tolerance agreement per kernel).

Rules without a vectorized kernel still work through
:func:`make_batched_aggregator`: the registry falls back to
:class:`LoopBatchedAggregator`, which runs the ordinary per-scenario path
(so a grid can mix, say, Krum with the exponential minimal-diameter rule
and only the latter pays Python-loop cost).  The loop fallback is
numpy-only by nature — it executes the per-scenario numpy rules.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.core.aggregator import Aggregator
from repro.core.bulyan import batched_bulyan
from repro.exceptions import (
    ByzantineToleranceError,
    ConfigurationError,
    DimensionMismatchError,
)
from repro.utils.linalg import batched_pairwise_sq_distances

__all__ = [
    "BatchedAggregationResult",
    "BatchedAggregator",
    "LoopBatchedAggregator",
    "batched_krum_scores",
    "batched_average",
    "batched_coordinate_median",
    "batched_trimmed_mean",
    "register_batched_kernel",
    "has_batched_kernel",
    "batched_kernel_names",
    "batch_group_key",
    "make_batched_aggregator",
]


# ----------------------------------------------------------------------
# Pure batched kernels
# ----------------------------------------------------------------------


def _as_batch(vectors, xp: ArrayBackend):
    vectors = xp.asarray(vectors)
    if vectors.ndim != 3:
        raise DimensionMismatchError(
            f"batched kernels expect shape (B, n, d), got {tuple(vectors.shape)}"
        )
    if vectors.shape[0] == 0 or vectors.shape[1] == 0 or vectors.shape[2] == 0:
        raise DimensionMismatchError(
            f"batch must be non-empty in every axis, got {tuple(vectors.shape)}"
        )
    return vectors


def _resolve_chunk_size(chunk_size: int | None, batch: int) -> int:
    """Validate a batch-axis chunk size (``None`` means one whole-batch
    chunk).  Mirrors ``batched_pairwise_sq_distances``: a non-positive
    chunk is a shape-level configuration error, not something to leak as
    a bare ``ValueError`` out of ``range()``."""
    if chunk_size is None:
        return max(batch, 1)
    if chunk_size < 1:
        raise DimensionMismatchError(
            f"chunk_size must be >= 1, got {chunk_size}"
        )
    return chunk_size


def _chunked_distance_scores(vectors, chunk_size, score_fn, xp: ArrayBackend):
    """Reduce per-chunk ``(chunk, n, n)`` distance blocks to ``(B, n)``
    scores without ever materializing the full ``(B, n, n)`` tensor.

    ``score_fn`` maps one (writable) distance block to its per-row
    scores.  Chunking only partitions the batch axis, so the result is
    invariant to ``chunk_size``.
    """
    batch, n, _d = vectors.shape
    chunk_size = _resolve_chunk_size(chunk_size, batch)
    scores = xp.empty((batch, n))
    for start in range(0, batch, chunk_size):
        distances = batched_pairwise_sq_distances(
            vectors[start : start + chunk_size],
            nonfinite_as_inf=True,
            backend=xp,
        )
        scores[start : start + chunk_size] = score_fn(distances)
    return scores


def batched_krum_scores(
    vectors,
    f: int,
    *,
    chunk_size: int | None = None,
    backend: ArrayBackend | str | None = None,
):
    """Krum scores for every scenario: ``(B, n, d) -> (B, n)``.

    Slice ``b`` of the result is bit-for-bit equal to
    ``krum_scores(vectors[b], f)`` on the default numpy backend.

    ``chunk_size`` caps peak memory: the ``(chunk, n, n)`` distance
    blocks (and their partition copies) are materialized one chunk at a
    time and reduced to ``(chunk, n)`` scores before the next chunk —
    the full ``(B, n, n)`` tensor never exists.  The scores are
    invariant to the chunk size.
    """
    xp = resolve_backend(backend)
    vectors = _as_batch(vectors, xp)
    n = vectors.shape[1]
    num_neighbors = n - f - 2
    if num_neighbors < 1:
        raise ByzantineToleranceError(
            f"Krum needs n - f - 2 >= 1 neighbours, got n={n}, f={f}", n=n, f=f
        )
    diagonal = xp.arange(n)

    def krum_score(distances):
        distances[:, diagonal, diagonal] = xp.inf
        neighbor_part = xp.partition(distances, num_neighbors - 1, axis=2)
        return xp.sum(neighbor_part[:, :, :num_neighbors], axis=2)

    return _chunked_distance_scores(vectors, chunk_size, krum_score, xp)


def batched_average(vectors, *, backend: ArrayBackend | str | None = None):
    """Per-scenario unweighted mean: ``(B, n, d) -> (B, d)``."""
    xp = resolve_backend(backend)
    return xp.mean(_as_batch(vectors, xp), axis=1)


def batched_coordinate_median(
    vectors, *, backend: ArrayBackend | str | None = None
):
    """Per-scenario coordinate-wise median: ``(B, n, d) -> (B, d)``."""
    xp = resolve_backend(backend)
    return xp.median(_as_batch(vectors, xp), axis=1)


def batched_trimmed_mean(
    vectors, f: int, *, backend: ArrayBackend | str | None = None
):
    """Per-scenario coordinate-wise trimmed mean: ``(B, n, d) -> (B, d)``."""
    xp = resolve_backend(backend)
    vectors = _as_batch(vectors, xp)
    n = vectors.shape[1]
    if n <= 2 * f:
        raise ByzantineToleranceError(
            f"trimmed mean needs n > 2f, got n={n}, f={f}", n=n, f=f
        )
    if f == 0:
        return xp.mean(vectors, axis=1)
    ordered = xp.sort(vectors, axis=1)
    return xp.mean(ordered[:, f:-f], axis=1)


# ----------------------------------------------------------------------
# The BatchedAggregator protocol
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BatchedAggregationResult:
    """Outcome of one batched aggregation over B scenario stacks.

    ``vectors`` holds one aggregate per scenario; ``selected`` one index
    array per scenario (empty for statistical rules); ``scores`` the
    per-scenario per-worker scores when the rule computes them.
    ``vectors``/``scores`` are native to the kernel's backend (numpy
    arrays on the default backend, torch tensors on the torch backend) —
    use the backend's ``to_numpy`` to materialize them host-side.
    ``selected`` is always host-side numpy: index sets are per-round
    bookkeeping the executor consumes element-by-element, and leaving
    them on an accelerator would cost one device round-trip per lookup.
    """

    vectors: object  # (B, d)
    selected: tuple
    scores: object | None = None  # (B, n) when present


class BatchedAggregator(ABC):
    """A choice function applied to a batch of proposal stacks at once.

    Implementations must be *observationally identical* to running
    ``aggregator.aggregate_detailed`` on every slice: same vectors (bit
    for bit on the default numpy backend), same selected indices, same
    scores.  The resolved :class:`~repro.backend.ArrayBackend` is
    exposed as :attr:`backend` so executors can stage inputs and read
    results in the right array type.
    """

    #: The per-scenario rule this kernel replicates.
    aggregator: Aggregator

    #: The array backend this adapter computes through.
    backend: ArrayBackend

    #: True when the batch runs through a vectorized kernel, False for
    #: the per-scenario loop fallback.
    is_native: bool = True

    #: True when :meth:`aggregate_batch` accepts per-proposal staleness
    #: (``staleness``/``used_params`` keywords) — today only the loop
    #: fallback over :class:`~repro.core.staleness.StalenessAwareAggregator`
    #: rules; a batched-native Kardam kernel would set it too.
    supports_staleness: bool = False

    @abstractmethod
    def aggregate_batch(self, stacks) -> BatchedAggregationResult:
        """Aggregate a ``(B, n, d)`` batch of proposal stacks."""

    def _validated(self, stacks):
        stacks = _as_batch(stacks, self.backend)
        self.aggregator.check_tolerance(stacks.shape[1])
        return stacks

    def __repr__(self) -> str:
        kind = "native" if self.is_native else "loop"
        return (
            f"{type(self).__name__}({self.aggregator.name!r}, {kind}, "
            f"{self.backend.describe()})"
        )


_EMPTY_SELECTION = np.array([], dtype=np.int64)


class LoopBatchedAggregator(BatchedAggregator):
    """Fallback adapter: run each scenario through its own rule instance.

    Used for rules without a vectorized kernel (minimal-diameter,
    weighted-average, and any externally registered rule; kernels are
    dispatched by exact type).  Keeping one instance per scenario preserves
    any per-instance configuration exactly as the loop engine would see
    it.  A single instance adapts to any batch size (every slice runs
    through the same rule — the Monte-Carlo trial batching case).

    The per-scenario rules are numpy programs, so this adapter always
    computes on the numpy backend regardless of what the caller
    requested — ``is_native`` stays the executor's signal that these
    scenarios did not reach the accelerator.
    """

    is_native = False

    def __init__(self, aggregators: Sequence[Aggregator]):
        # Imported lazily: repro.core.staleness imports the aggregator
        # interface from this package's sibling module.
        from repro.core.staleness import StalenessAwareAggregator

        if not aggregators:
            raise ConfigurationError("need at least one aggregator instance")
        self.aggregators = list(aggregators)
        self.aggregator = self.aggregators[0]
        self.backend = resolve_backend(None)
        self.supports_staleness = all(
            isinstance(rule, StalenessAwareAggregator)
            for rule in self.aggregators
        )

    def _instances(self, batch: int) -> list[Aggregator]:
        if len(self.aggregators) == 1:
            return self.aggregators * batch
        if batch != len(self.aggregators):
            raise DimensionMismatchError(
                f"batch of {batch} scenarios but "
                f"{len(self.aggregators)} aggregator instances"
            )
        return self.aggregators

    def aggregate_batch(
        self, stacks, *, staleness=None, used_params=None
    ) -> BatchedAggregationResult:
        """Aggregate each scenario through its own rule instance.

        ``staleness`` (``(B, n)`` ints) and ``used_params`` (``(B, n,
        d)``) route through the staleness-aware interface when every
        instance implements it — exactly the call the loop executor's
        :class:`~repro.distributed.server.ParameterServer` makes, so the
        loop/batched differential identity extends to async cells.
        """
        stacks = _as_batch(self.backend.to_numpy(stacks), self.backend)
        if staleness is not None and not self.supports_staleness:
            raise ConfigurationError(
                f"rule {self.aggregator.name!r} is not staleness-aware; "
                f"cannot aggregate stale proposals through it"
            )
        vectors = np.empty((stacks.shape[0], stacks.shape[2]))
        selected: list[np.ndarray] = []
        scores: list[np.ndarray | None] = []
        for b, rule in enumerate(self._instances(stacks.shape[0])):
            if staleness is not None:
                result = rule.aggregate_detailed_stale(
                    stacks[b],
                    staleness[b],
                    used_params=(
                        None if used_params is None else used_params[b]
                    ),
                )
            else:
                result = rule.aggregate_detailed(stacks[b])
            vectors[b] = result.vector
            selected.append(result.selected)
            scores.append(result.scores)
        stacked_scores = (
            np.stack(scores) if all(s is not None for s in scores) else None
        )
        return BatchedAggregationResult(
            vectors=vectors, selected=tuple(selected), scores=stacked_scores
        )


def _select_winners(stacks, scores, xp: ArrayBackend):
    """Per-scenario argmin selection: first minimal index per row — the
    smallest-identifier tie-break of Krum's footnote 3.  The selected
    sets are host-side numpy (one ``tolist`` sync, not one tiny device
    tensor per scenario)."""
    winners = xp.argmin(scores, axis=1)
    batch_index = xp.arange(stacks.shape[0])
    vectors = xp.copy(stacks[batch_index, winners])
    selected = tuple(
        np.array([w], dtype=np.int64) for w in winners.tolist()
    )
    return vectors, selected


class _BatchedKrum(BatchedAggregator):
    """Vectorized Krum: one batched distance GEMM, one argmin per scenario."""

    def __init__(self, aggregator, *, chunk_size=None, backend=None):
        self.aggregator = aggregator
        self.chunk_size = chunk_size
        self.backend = resolve_backend(backend)

    def aggregate_batch(self, stacks) -> BatchedAggregationResult:
        stacks = self._validated(stacks)
        scores = batched_krum_scores(
            stacks,
            self.aggregator.f,
            chunk_size=self.chunk_size,
            backend=self.backend,
        )
        vectors, selected = _select_winners(stacks, scores, self.backend)
        return BatchedAggregationResult(
            vectors=vectors, selected=selected, scores=scores
        )


class _BatchedMultiKrum(BatchedAggregator):
    """Vectorized Multi-Krum: stable argsort, gather, mean over the m best."""

    def __init__(self, aggregator, *, chunk_size=None, backend=None):
        self.aggregator = aggregator
        self.chunk_size = chunk_size
        self.backend = resolve_backend(backend)

    def aggregate_batch(self, stacks) -> BatchedAggregationResult:
        xp = self.backend
        stacks = self._validated(stacks)
        rule = self.aggregator
        scores = batched_krum_scores(
            stacks, rule.f, chunk_size=self.chunk_size, backend=xp
        )
        order = xp.argsort(scores, axis=1, stable=True)[:, : rule.m]
        # Selected sets are host bookkeeping: one device-to-host copy for
        # the whole (B, m) order block instead of per-scenario tensors.
        selected = tuple(
            np.asarray(xp.to_numpy(order), dtype=np.int64)
        )
        if rule.m == 1:
            batch_index = xp.arange(stacks.shape[0])
            vectors = xp.copy(stacks[batch_index, order[:, 0]])
        else:
            gathered = xp.take_along_axis(stacks, order[:, :, None], axis=1)
            vectors = xp.mean(gathered, axis=1)
        return BatchedAggregationResult(
            vectors=vectors, selected=selected, scores=scores
        )


class _BatchedAverage(BatchedAggregator):
    def __init__(self, aggregator, *, chunk_size=None, backend=None):
        self.aggregator = aggregator
        self.backend = resolve_backend(backend)

    def aggregate_batch(self, stacks) -> BatchedAggregationResult:
        stacks = self._validated(stacks)
        vectors = batched_average(stacks, backend=self.backend)
        return BatchedAggregationResult(
            vectors=vectors, selected=(_EMPTY_SELECTION,) * stacks.shape[0]
        )


class _BatchedCoordinateMedian(BatchedAggregator):
    def __init__(self, aggregator, *, chunk_size=None, backend=None):
        self.aggregator = aggregator
        self.backend = resolve_backend(backend)

    def aggregate_batch(self, stacks) -> BatchedAggregationResult:
        stacks = self._validated(stacks)
        vectors = batched_coordinate_median(stacks, backend=self.backend)
        return BatchedAggregationResult(
            vectors=vectors, selected=(_EMPTY_SELECTION,) * stacks.shape[0]
        )


class _BatchedTrimmedMean(BatchedAggregator):
    def __init__(self, aggregator, *, chunk_size=None, backend=None):
        self.aggregator = aggregator
        self.backend = resolve_backend(backend)

    def aggregate_batch(self, stacks) -> BatchedAggregationResult:
        stacks = self._validated(stacks)
        vectors = batched_trimmed_mean(
            stacks, self.aggregator.f, backend=self.backend
        )
        return BatchedAggregationResult(
            vectors=vectors, selected=(_EMPTY_SELECTION,) * stacks.shape[0]
        )


class _BatchedBulyan(BatchedAggregator):
    """Vectorized Bulyan: iterated batched-Krum committee selection over a
    shrinking per-scenario candidate mask, then a batched per-coordinate
    trimmed average around the committee median.  Chunking partitions the
    batch axis so the ``(chunk, n, n)`` distance blocks stay bounded."""

    def __init__(self, aggregator, *, chunk_size=None, backend=None):
        self.aggregator = aggregator
        self.chunk_size = chunk_size
        self.backend = resolve_backend(backend)

    def aggregate_batch(self, stacks) -> BatchedAggregationResult:
        xp = self.backend
        stacks = self._validated(stacks)
        batch = stacks.shape[0]
        chunk_size = _resolve_chunk_size(self.chunk_size, batch)
        committee_size = stacks.shape[1] - 2 * self.aggregator.f
        vectors = xp.empty((batch, stacks.shape[2]))
        committees = xp.empty((batch, committee_size), dtype=xp.int_dtype)
        for start in range(0, batch, chunk_size):
            stop = start + chunk_size
            vectors[start:stop], committees[start:stop] = batched_bulyan(
                stacks[start:stop], self.aggregator.f, backend=xp
            )
        # Committees are host bookkeeping: one device-to-host copy for
        # the whole (B, θ) block instead of per-element syncs downstream.
        return BatchedAggregationResult(
            vectors=vectors,
            selected=tuple(np.asarray(xp.to_numpy(committees), dtype=np.int64)),
        )


class _BatchedGeometricMedian(BatchedAggregator):
    """Vectorized geometric median: one batched Weiszfeld iteration with
    per-scenario convergence masking instead of B sequential solves.
    Chunking partitions the batch axis (each lane's iteration is
    independent, so results are chunk-invariant)."""

    def __init__(self, aggregator, *, chunk_size=None, backend=None):
        self.aggregator = aggregator
        self.chunk_size = chunk_size
        self.backend = resolve_backend(backend)

    def aggregate_batch(self, stacks) -> BatchedAggregationResult:
        # Imported lazily to avoid circular imports at package load (the
        # baselines import repro.core.aggregator).
        from repro.baselines.medians import batched_weiszfeld

        xp = self.backend
        stacks = self._validated(stacks)
        batch = stacks.shape[0]
        chunk_size = _resolve_chunk_size(self.chunk_size, batch)
        rule = self.aggregator
        vectors = xp.empty((batch, stacks.shape[2]))
        for start in range(0, batch, chunk_size):
            stop = start + chunk_size
            vectors[start:stop] = batched_weiszfeld(
                stacks[start:stop],
                tolerance=rule.tolerance,
                max_iterations=rule.max_iterations,
                backend=xp,
            )
        return BatchedAggregationResult(
            vectors=vectors, selected=(_EMPTY_SELECTION,) * batch
        )


class _BatchedClosestToAll(BatchedAggregator):
    def __init__(self, aggregator, *, chunk_size=None, backend=None):
        self.aggregator = aggregator
        self.chunk_size = chunk_size
        self.backend = resolve_backend(backend)

    def aggregate_batch(self, stacks) -> BatchedAggregationResult:
        xp = self.backend
        stacks = self._validated(stacks)
        scores = _chunked_distance_scores(
            stacks,
            self.chunk_size,
            lambda distances: xp.sum(distances, axis=2),
            xp,
        )
        vectors, selected = _select_winners(stacks, scores, xp)
        return BatchedAggregationResult(
            vectors=vectors, selected=selected, scores=scores
        )


# ----------------------------------------------------------------------
# Registry-driven adaptation
# ----------------------------------------------------------------------

_BUILDERS: dict[type, Callable[..., BatchedAggregator]] = {}


def register_batched_kernel(
    aggregator_type: type, builder: Callable[..., BatchedAggregator]
) -> None:
    """Register a vectorized kernel for an :class:`Aggregator` subclass.

    ``builder(aggregator, chunk_size=..., backend=...)`` must return a
    :class:`BatchedAggregator` replicating that instance bit-for-bit on
    the numpy backend (``backend`` is a resolved
    :class:`~repro.backend.ArrayBackend` or ``None`` for the default).
    Later registrations override.
    """
    if not isinstance(aggregator_type, type):
        raise ConfigurationError(
            f"aggregator_type must be a class, got {aggregator_type!r}"
        )
    _BUILDERS[aggregator_type] = builder


def has_batched_kernel(aggregator: Aggregator) -> bool:
    """Whether a vectorized kernel is registered for this rule's type."""
    return type(aggregator) in _BUILDERS


def batched_kernel_names() -> list[str]:
    """Sorted class names of the rules with vectorized kernels."""
    return sorted(cls.__name__ for cls in _BUILDERS)


def batch_group_key(aggregator: Aggregator) -> tuple[str, str]:
    """Grouping key: scenarios whose rules share this key can share one
    batched kernel call.  The rule's ``name`` encodes its parameters
    (e.g. ``krum(f=6)``), so equal keys mean equal aggregation behavior.
    """
    return (type(aggregator).__qualname__, aggregator.name)


def make_batched_aggregator(
    aggregators: Aggregator | Sequence[Aggregator],
    *,
    chunk_size: int | None = None,
    backend: ArrayBackend | str | None = None,
) -> BatchedAggregator:
    """Adapt one rule (or a group of identically-configured instances) to
    the batched protocol.

    Returns the registered vectorized kernel when one exists for the
    rule's type, otherwise a :class:`LoopBatchedAggregator` running the
    ordinary per-scenario path.  ``backend`` selects the array backend
    the vectorized kernel computes through (name, instance, or ``None``
    for the default numpy backend); the loop fallback always runs the
    numpy per-scenario rules.  When a sequence is given, all instances
    must share the same :func:`batch_group_key`; the loop fallback then
    keeps one instance per scenario (batch slice b uses instance b).
    """
    if isinstance(aggregators, Aggregator):
        instances = [aggregators]
    else:
        instances = list(aggregators)
    if not instances:
        raise ConfigurationError("need at least one aggregator instance")
    keys = {batch_group_key(rule) for rule in instances}
    if len(keys) != 1:
        raise ConfigurationError(
            f"cannot batch differently-configured rules together: {sorted(keys)}"
        )
    backend = resolve_backend(backend)
    representative = instances[0]
    builder = _BUILDERS.get(type(representative))
    if builder is None:
        return LoopBatchedAggregator(instances)
    return builder(representative, chunk_size=chunk_size, backend=backend)


def _register_builtins() -> None:
    # Imported lazily to avoid circular imports at package load (the
    # baselines import repro.core.aggregator).
    from repro.baselines.average import Average
    from repro.baselines.distance_based import ClosestToAll
    from repro.baselines.medians import (
        CoordinateWiseMedian,
        GeometricMedian,
        TrimmedMean,
    )
    from repro.core.bulyan import Bulyan
    from repro.core.krum import Krum, MultiKrum

    register_batched_kernel(Krum, _BatchedKrum)
    register_batched_kernel(MultiKrum, _BatchedMultiKrum)
    register_batched_kernel(Average, _BatchedAverage)
    register_batched_kernel(CoordinateWiseMedian, _BatchedCoordinateMedian)
    register_batched_kernel(TrimmedMean, _BatchedTrimmedMean)
    register_batched_kernel(ClosestToAll, _BatchedClosestToAll)
    register_batched_kernel(Bulyan, _BatchedBulyan)
    register_batched_kernel(GeometricMedian, _BatchedGeometricMedian)


_register_builtins()
