"""Differential guarantees of the server tier.

The load-bearing invariant: the degenerate configuration
``num_servers=1, byzantine_servers=0, num_shards=1`` is bit-for-bit the
pre-tier engine — same labels, same trajectories, in both executors —
and every active-tier grid still satisfies the loop/batched differential
identity.  ``benchmarks/bench_server_tier.py`` re-checks the same claims
at bench scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.average import Average
from repro.engine import ScenarioGrid, run_grid
from repro.engine.simulation import BatchedSimulation
from repro.exceptions import ConfigurationError
from repro.experiments.builders import build_quadratic_simulation
from repro.models.quadratic import QuadraticBowl
from repro.servers.attacks import StaleReplayBroadcastAttack

AGGREGATORS = (("krum", {}), ("average", {}))


def _grid(**kwargs):
    defaults = dict(
        seeds=(0, 1),
        aggregators=AGGREGATORS,
        f_values=(0,),
        num_workers=9,
        dimension=6,
        sigma=0.5,
        num_rounds=8,
        learning_rate=0.1,
    )
    defaults.update(kwargs)
    return ScenarioGrid(**defaults)


def _same(result_a, result_b) -> None:
    labels_a = [spec.label for spec in result_a.specs]
    labels_b = [spec.label for spec in result_b.specs]
    assert labels_a == labels_b
    for label in labels_a:
        assert (
            result_a.final_params[label].tobytes()
            == result_b.final_params[label].tobytes()
        )
        history_a = result_a.histories[label]
        history_b = result_b.histories[label]
        assert len(history_a) == len(history_b)
        assert all(a == b for a, b in zip(history_a, history_b))


class TestDegenerateIdentity:
    def test_pinned_axes_match_the_axis_free_grid(self):
        """Declaring the tier axes at their degenerate values must not
        change a single bit — or a single label."""
        pinned = _grid(
            num_servers_values=(1,),
            byzantine_servers_values=(0,),
            num_shards_values=(1,),
        )
        axis_free = _grid()
        _same(
            run_grid(pinned, mode="batched", eval_every=4),
            run_grid(axis_free, mode="batched", eval_every=4),
        )

    def test_degenerate_labels_carry_no_server_suffix(self):
        for spec in _grid(
            num_servers_values=(1,),
            byzantine_servers_values=(0,),
            num_shards_values=(1,),
        ).scenarios():
            assert "servers=" not in spec.label

    def test_active_labels_carry_the_server_suffix(self):
        specs = _grid(
            num_servers_values=(1, 3),
            byzantine_servers_values=(0, 1),
            server_attacks=(("sign-flip-broadcast", {}),),
        ).scenarios()
        suffixed = [spec for spec in specs if "servers=" in spec.label]
        assert suffixed  # every non-degenerate cell is labelled
        for spec in specs:
            degenerate = (
                spec.num_servers == 1
                and spec.byzantine_servers == 0
                and spec.num_shards == 1
            )
            assert ("servers=" in spec.label) == (not degenerate)


class TestLoopBatchedIdentity:
    @pytest.mark.parametrize(
        "server_attack",
        ["sign-flip-broadcast", "stale-replay-broadcast",
         "random-noise-broadcast"],
    )
    def test_tier_grid_is_executor_invariant(self, server_attack):
        grid = _grid(
            num_servers_values=(1, 3),
            byzantine_servers_values=(0, 1),
            num_shards_values=(1, 2),
            server_attacks=((server_attack, {}),),
        )
        _same(
            run_grid(grid, mode="loop", eval_every=4),
            run_grid(grid, mode="batched", eval_every=4),
        )

    def test_async_tier_grid_is_executor_invariant(self):
        """Staleness window + delay schedule + Byzantine servers: stale
        workers must read back the *view* history identically in both
        executors."""
        grid = _grid(
            seeds=(0,),
            max_staleness_values=(0, 2),
            delay_schedule="periodic",
            delay_kwargs={"tau": 2, "period": 3},
            num_servers_values=(3,),
            byzantine_servers_values=(1,),
            server_attacks=(("stale-replay-broadcast", {"delay": 2}),),
        )
        _same(
            run_grid(grid, mode="loop", eval_every=4),
            run_grid(grid, mode="batched", eval_every=4),
        )

    def test_grid_len_matches_materialized_cells(self):
        grid = _grid(
            num_servers_values=(1, 3),
            byzantine_servers_values=(0, 1),
            num_shards_values=(1, 2),
            server_attacks=(
                ("sign-flip-broadcast", {}),
                ("random-noise-broadcast", {}),
            ),
        )
        assert len(grid) == len(grid.scenarios())


class TestStatefulServerAttackSharing:
    def _simulation(self, attack, seed=0):
        return build_quadratic_simulation(
            QuadraticBowl(6),
            aggregator=Average(),
            num_workers=5,
            num_byzantine=0,
            sigma=0.5,
            num_servers=3,
            byzantine_servers=1,
            server_attack=attack,
            seed=seed,
        )

    def test_shared_stateful_server_attack_is_rejected(self):
        shared = StaleReplayBroadcastAttack(delay=2)
        sims = [self._simulation(shared, seed=s) for s in (0, 1)]
        with pytest.raises(ConfigurationError, match="stateful server attack"):
            BatchedSimulation(sims)

    def test_per_scenario_instances_are_accepted(self):
        sims = [
            self._simulation(StaleReplayBroadcastAttack(delay=2), seed=s)
            for s in (0, 1)
        ]
        batched = BatchedSimulation(sims)
        histories = batched.run(4, eval_every=2)
        assert len(histories) == 2
        assert np.all(np.isfinite(batched.params))
