"""Tests for the Krum choice function (Section 4)."""

import numpy as np
import pytest

from repro.core.krum import Krum, krum_scores, krum_scores_reference
from repro.exceptions import ByzantineToleranceError


class TestKrumScores:
    def test_matches_reference(self, rng):
        for _trial in range(10):
            n = int(rng.integers(5, 20))
            f = int(rng.integers(0, (n - 3) // 2 + 1))
            vectors = rng.standard_normal((n, 6))
            np.testing.assert_allclose(
                krum_scores(vectors, f),
                krum_scores_reference(vectors, f),
                rtol=1e-10,
            )

    def test_identical_vectors_score_zero(self):
        vectors = np.tile(np.array([1.0, 2.0, 3.0]), (6, 1))
        np.testing.assert_allclose(krum_scores(vectors, 1), np.zeros(6))

    def test_outlier_gets_highest_score(self, rng):
        cloud = rng.standard_normal((7, 4)) * 0.1
        cloud[3] = 100.0
        scores = krum_scores(cloud, 2)
        assert np.argmax(scores) == 3

    def test_rejects_too_few_neighbors(self):
        vectors = np.zeros((4, 2))
        with pytest.raises(ByzantineToleranceError):
            krum_scores(vectors, 2)  # n - f - 2 = 0

    def test_f_zero_uses_n_minus_two_neighbors(self, rng):
        # With f = 0, each score sums n-2 of the n-1 distances.
        vectors = rng.standard_normal((5, 3))
        scores = krum_scores(vectors, 0)
        assert np.all(scores > 0)
        np.testing.assert_allclose(
            scores, krum_scores_reference(vectors, 0), rtol=1e-10
        )


class TestKrumSelection:
    def test_output_is_one_of_the_inputs(self, rng):
        vectors = rng.standard_normal((9, 5))
        chosen = Krum(f=2).aggregate(vectors)
        assert any(np.array_equal(chosen, v) for v in vectors)

    def test_rejects_far_outliers(self, honest_cloud, rng):
        # 10 honest + 3 Byzantine very far away: Krum must pick honest.
        byzantine = 1e6 * rng.standard_normal((3, 8))
        stack = np.vstack([honest_cloud, byzantine])
        result = Krum(f=3).aggregate_detailed(stack)
        assert int(result.selected[0]) < 10

    def test_tie_break_smallest_identifier(self):
        # Two identical tight pairs; scores tie within each pair.
        vectors = np.array(
            [[0.0, 0.0], [0.0, 0.0], [0.0, 0.0], [5.0, 5.0], [5.0, 5.0], [9.0, 9.0]]
        )
        result = Krum(f=1, strict=False).aggregate_detailed(vectors)
        assert int(result.selected[0]) == 0

    def test_strict_enforces_2f_plus_2(self):
        vectors = np.zeros((6, 2))
        with pytest.raises(ByzantineToleranceError, match="2f"):
            Krum(f=2).aggregate(vectors)  # 2*2+2 = 6, not < 6

    def test_non_strict_allows_structural_minimum(self):
        vectors = np.arange(12, dtype=float).reshape(6, 2)
        chosen = Krum(f=2, strict=False).aggregate(vectors)
        assert chosen.shape == (2,)

    def test_non_strict_still_needs_neighbors(self):
        vectors = np.zeros((5, 2))
        with pytest.raises(ByzantineToleranceError):
            Krum(f=3, strict=False).aggregate(vectors)

    def test_minimum_viable_cluster(self, rng):
        # n = 2f + 3 is the smallest n satisfying the precondition.
        f = 2
        n = 2 * f + 3
        vectors = rng.standard_normal((n, 3))
        chosen = Krum(f=f).aggregate(vectors)
        assert any(np.array_equal(chosen, v) for v in vectors)

    def test_f_zero_picks_most_central(self, rng):
        cloud = rng.standard_normal((8, 3))
        result = Krum(f=0).aggregate_detailed(cloud)
        assert result.scores is not None
        assert int(result.selected[0]) == int(np.argmin(result.scores))

    def test_scores_returned(self, honest_cloud):
        result = Krum(f=3).aggregate_detailed(honest_cloud)
        assert result.scores.shape == (10,)

    def test_handles_non_finite_byzantine_values(self, honest_cloud):
        # A Byzantine worker may send NaN/Inf; Krum must not crash and
        # must not select it.
        bad = np.full((2, 8), np.nan)
        stack = np.vstack([honest_cloud, bad])
        result = Krum(f=2).aggregate_detailed(stack)
        assert int(result.selected[0]) < 10
        assert np.all(np.isfinite(result.vector))

    def test_negative_f_rejected(self):
        with pytest.raises(Exception):
            Krum(f=-1)

    def test_name_contains_f(self):
        assert "f=3" in Krum(f=3).name


class TestKrumAgainstTheAttackOfFigure2:
    def test_collusion_does_not_fool_krum(self, rng):
        # Construct the Figure 2 scenario manually: honest cluster, f-1
        # remote decoys, one trojan at the overall barycenter.
        honest = np.full((9, 4), 3.0) + 0.05 * rng.standard_normal((9, 4))
        f = 3
        decoy = np.full(4, 1e5)
        n = 9 + f
        trojan = (honest.sum(axis=0) + (f - 1) * decoy) / (n - 1)
        stack = np.vstack([honest, np.tile(decoy, (f - 1, 1)), trojan[None, :]])
        result = Krum(f=f).aggregate_detailed(stack)
        assert int(result.selected[0]) < 9, "Krum must select an honest vector"
