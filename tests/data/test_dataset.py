"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, train_test_split
from repro.exceptions import ConfigurationError, DimensionMismatchError


def _toy(n=10):
    return Dataset(
        np.arange(n * 2, dtype=float).reshape(n, 2),
        np.arange(n) % 3,
        task="multiclass",
        num_classes=3,
    )


class TestDataset:
    def test_basic_properties(self):
        ds = _toy()
        assert len(ds) == 10
        assert ds.num_features == 2
        assert ds.targets.dtype == np.int64

    def test_regression_targets_float(self):
        ds = Dataset(np.zeros((4, 2)), np.arange(4), task="regression")
        assert ds.targets.dtype == np.float64

    def test_subset(self):
        ds = _toy()
        sub = ds.subset(np.array([1, 3, 5]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.targets, ds.targets[[1, 3, 5]])

    def test_shuffled_preserves_pairs(self):
        ds = _toy()
        shuffled = ds.shuffled(seed=0)
        # Every (input, target) pair must survive the shuffle.
        original = {(tuple(x), int(y)) for x, y in zip(ds.inputs, ds.targets)}
        after = {(tuple(x), int(y)) for x, y in zip(shuffled.inputs, shuffled.targets)}
        assert original == after

    def test_rejects_label_out_of_range(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            Dataset(np.zeros((2, 1)), [0, 5], task="multiclass", num_classes=3)

    def test_rejects_unknown_task(self):
        with pytest.raises(ConfigurationError):
            Dataset(np.zeros((2, 1)), [0, 1], task="ranking")

    def test_rejects_length_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Dataset(np.zeros((3, 1)), [0, 1], task="binary", num_classes=2)

    def test_rejects_1d_inputs(self):
        with pytest.raises(DimensionMismatchError):
            Dataset(np.zeros(3), [0, 1, 0], task="binary", num_classes=2)

    def test_missing_num_classes(self):
        with pytest.raises(ConfigurationError):
            Dataset(np.zeros((2, 1)), [0, 1], task="binary")


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(_toy(100), test_fraction=0.25, seed=1)
        assert len(test) == 25
        assert len(train) == 75

    def test_disjoint_and_covering(self):
        ds = _toy(50)
        train, test = train_test_split(ds, test_fraction=0.2, seed=0)
        train_rows = {tuple(x) for x in train.inputs}
        test_rows = {tuple(x) for x in test.inputs}
        assert train_rows.isdisjoint(test_rows)
        assert len(train_rows | test_rows) == 50

    def test_reproducible(self):
        ds = _toy(30)
        a_train, _ = train_test_split(ds, seed=5)
        b_train, _ = train_test_split(ds, seed=5)
        np.testing.assert_array_equal(a_train.inputs, b_train.inputs)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            train_test_split(_toy(), test_fraction=0.0)
        with pytest.raises(ConfigurationError):
            train_test_split(_toy(), test_fraction=1.0)
