"""Tests for the Kardam-style staleness filter."""

import numpy as np
import pytest

from repro.baselines.average import Average
from repro.core.krum import Krum
from repro.core.registry import make_aggregator
from repro.core.staleness import KardamFilter, StalenessAwareAggregator
from repro.exceptions import (
    ByzantineToleranceError,
    ConfigurationError,
    DimensionMismatchError,
)


def _stack(rng, n=8, d=4):
    return rng.standard_normal((n, d))


class TestConstruction:
    def test_registry_builds_wrapped_rule(self):
        rule = make_aggregator("kardam", inner="krum", f=2)
        assert isinstance(rule, KardamFilter)
        assert isinstance(rule.inner, Krum)
        assert rule.inner.f == 2
        assert rule.name == "kardam(krum(f=2))"

    def test_f_not_forced_on_f_free_inner(self):
        rule = make_aggregator("kardam", inner="average", f=3)
        assert isinstance(rule.inner, Average)

    def test_name_encodes_non_default_config(self):
        rule = KardamFilter(
            Average(), dampening="exponential", gamma=0.9, drop_above=2
        )
        assert "dampening=exponential" in rule.name
        assert "gamma=0.9" in rule.name
        assert "drop_above=2" in rule.name

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="inner"):
            KardamFilter("not-a-rule")
        with pytest.raises(ConfigurationError, match="dampening"):
            KardamFilter(Average(), dampening="bogus")
        with pytest.raises(ConfigurationError, match="gamma"):
            KardamFilter(Average(), gamma=0.0)
        with pytest.raises(ConfigurationError, match="drop_above"):
            KardamFilter(Average(), drop_above=-1)
        with pytest.raises(ConfigurationError, match="lipschitz_quantile"):
            KardamFilter(Average(), lipschitz_quantile=1.5)
        with pytest.raises(ConfigurationError, match="window"):
            KardamFilter(Average(), window=0)

    def test_tolerance_delegates_to_inner(self):
        rule = KardamFilter(Krum(f=3))
        with pytest.raises(ByzantineToleranceError):
            rule.check_tolerance(6)  # krum needs 2f + 2 < n


class TestFreshIdentity:
    """Zero staleness must be *exactly* the inner rule — the degenerate
    case the async differential guarantee rests on."""

    def test_sync_call_equals_inner(self, rng):
        vectors = _stack(rng)
        rule = KardamFilter(Krum(f=2))
        expected = Krum(f=2).aggregate_detailed(vectors)
        got = rule.aggregate_detailed(vectors)
        assert got.vector.tobytes() == expected.vector.tobytes()
        np.testing.assert_array_equal(got.selected, expected.selected)

    def test_zero_staleness_equals_inner(self, rng):
        vectors = _stack(rng)
        rule = KardamFilter(Krum(f=2))
        expected = Krum(f=2).aggregate_detailed(vectors)
        got = rule.aggregate_detailed_stale(
            vectors,
            np.zeros(8, dtype=np.int64),
            used_params=np.zeros_like(vectors),
        )
        assert got.vector.tobytes() == expected.vector.tobytes()

    def test_dampening_factor_is_exactly_one_at_zero(self):
        for mode in ("none", "inverse", "exponential"):
            rule = KardamFilter(Average(), dampening=mode)
            assert rule.dampening_factor(np.array([0]))[0] == 1.0


class TestDampening:
    def test_inverse_dampening_scales_stale_rows(self, rng):
        vectors = np.ones((4, 3))
        staleness = np.array([0, 1, 3, 0])
        rule = KardamFilter(Average(), dampening="inverse")
        out = rule.aggregate_detailed_stale(vectors, staleness).vector
        expected = np.mean(
            vectors * (1.0 / (1.0 + staleness))[:, None], axis=0
        )
        np.testing.assert_allclose(out, expected)

    def test_exponential_dampening(self):
        vectors = np.ones((2, 2))
        rule = KardamFilter(
            Average(), dampening="exponential", gamma=0.5
        )
        out = rule.aggregate_detailed_stale(
            vectors, np.array([0, 2])
        ).vector
        np.testing.assert_allclose(out, np.mean([1.0, 0.25]) * np.ones(2))

    def test_none_dampening_keeps_values(self, rng):
        vectors = _stack(rng, n=5)
        rule = KardamFilter(Average(), dampening="none")
        out = rule.aggregate_detailed_stale(
            vectors, np.array([0, 1, 2, 3, 4])
        ).vector
        np.testing.assert_array_equal(out, vectors.mean(axis=0))


class TestDropping:
    def test_drop_above_removes_rows(self):
        vectors = np.stack([np.zeros(2), np.full(2, 100.0)])
        rule = KardamFilter(Average(), dampening="none", drop_above=1)
        out = rule.aggregate_detailed_stale(
            vectors, np.array([0, 5])
        ).vector
        np.testing.assert_array_equal(out, np.zeros(2))

    def test_selected_indices_map_back_to_original_rows(self, rng):
        vectors = _stack(rng, n=9)
        rule = KardamFilter(Krum(f=1), dampening="none", drop_above=0)
        staleness = np.array([3, 0, 0, 0, 0, 0, 0, 0, 3])
        result = rule.aggregate_detailed_stale(vectors, staleness)
        # The winner is a kept row, reported in *original* coordinates.
        assert result.selected[0] in range(1, 8)
        np.testing.assert_array_equal(
            result.vector, vectors[int(result.selected[0])]
        )
        # Scores expand back to n entries, NaN on dropped rows.
        assert result.scores.shape == (9,)
        assert np.isnan(result.scores[0]) and np.isnan(result.scores[8])

    def test_all_dropped_waives_the_drop(self):
        vectors = np.ones((3, 2))
        rule = KardamFilter(Average(), dampening="none", drop_above=0)
        out = rule.aggregate_detailed_stale(
            vectors, np.array([2, 2, 2])
        ).vector
        np.testing.assert_array_equal(out, np.ones(2))


class TestLipschitzFilter:
    def test_outlier_growth_rate_is_dropped(self):
        rule = KardamFilter(
            Average(),
            dampening="none",
            lipschitz_quantile=0.8,
            window=64,
        )
        rng = np.random.default_rng(0)
        n, d = 6, 3
        params = np.zeros((n, d))
        vectors = rng.standard_normal((n, d)) * 0.1
        # Warm up the coefficient window with tame rounds.
        for _ in range(6):
            new_params = params + 0.1
            new_vectors = vectors + 0.01 * rng.standard_normal((n, d))
            rule.aggregate_detailed_stale(
                new_vectors,
                np.zeros(n, dtype=np.int64),
                used_params=new_params,
            )
            params, vectors = new_params, new_vectors
        # Worker 0 suddenly jumps: huge ‖Δv‖ for the same ‖Δx‖.
        spiked = vectors.copy()
        spiked[0] += 1e6
        result = rule.aggregate_detailed_stale(
            spiked, np.zeros(n, dtype=np.int64), used_params=params + 0.1
        )
        assert abs(float(result.vector[0])) < 1e3  # spike filtered out

    def test_hard_dropped_rows_do_not_poison_the_window(self):
        """Regression: a proposal rejected by the drop_above cut must
        not contribute its growth rate to the accepted-coefficient
        window (else an adversary inflates the quantile threshold with
        always-dropped stale proposals, then slips a spike through)."""
        rule = KardamFilter(
            Average(),
            dampening="none",
            drop_above=0,
            lipschitz_quantile=0.5,
        )
        n, d = 4, 2
        params = np.zeros((n, d))
        vectors = np.full((n, d), 0.5)
        rule.aggregate_detailed_stale(
            vectors, np.zeros(n, dtype=np.int64), used_params=params
        )
        # Worker 0 is hard-dropped (stale) with an enormous growth rate.
        spiked = vectors.copy()
        spiked[0] += 1e9
        staleness = np.zeros(n, dtype=np.int64)
        staleness[0] = 5
        rule.aggregate_detailed_stale(
            spiked, staleness, used_params=params + 0.1
        )
        assert all(rate < 1e6 for rate in rule._coefficients)

    def test_without_used_params_filter_is_skipped(self, rng):
        rule = KardamFilter(
            Average(), dampening="none", lipschitz_quantile=0.5
        )
        vectors = _stack(rng, n=4)
        out = rule.aggregate_detailed_stale(
            vectors, np.zeros(4, dtype=np.int64)
        ).vector
        np.testing.assert_array_equal(out, vectors.mean(axis=0))


class TestValidationOfStaleInputs:
    def test_shape_checks(self, rng):
        rule = KardamFilter(Average())
        vectors = _stack(rng, n=4)
        with pytest.raises(DimensionMismatchError, match="staleness"):
            rule.aggregate_detailed_stale(vectors, np.zeros(3))
        with pytest.raises(DimensionMismatchError, match="used_params"):
            rule.aggregate_detailed_stale(
                vectors, np.zeros(4), used_params=np.zeros((4, 99))
            )
        with pytest.raises(ConfigurationError, match=">= 0"):
            rule.aggregate_detailed_stale(
                vectors, np.array([0, -1, 0, 0])
            )

    def test_is_staleness_aware(self):
        assert isinstance(KardamFilter(Average()), StalenessAwareAggregator)
        assert not isinstance(Average(), StalenessAwareAggregator)
