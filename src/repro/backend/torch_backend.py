"""The torch backend — optional accelerator drop-in for the kernels.

Importing this module requires ``torch`` (the ``[torch]`` packaging
extra); everything else in the library works without it.  The registry
(:mod:`repro.backend.registry`) imports it lazily from the ``"torch"``
factory, so a torch-less install pays nothing and gets a readable
:class:`~repro.exceptions.ConfigurationError` if it asks for the
backend anyway.

Numerical contract: per-kernel agreement with the numpy reference
backend on identical float64 inputs to within a small multiple of
float64 round-off (``tests/backend/test_torch_parity.py`` pins the
tolerance).  Bit-for-bit identity is *not* promised — BLAS reduction
orders differ between libraries — which is why the engine's
differential guarantee is anchored to the numpy backend and torch is
qualified by the parity suite instead.

Method-by-method notes live next to the non-obvious translations:
numpy ``axis`` → torch ``dim``, numpy's averaged even-count median
(torch's own ``median`` takes the lower), ``partition`` via full sort,
and scalar-operand promotion for ``where``/``maximum``-family calls.
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import nullcontext
from typing import Any

import numpy as np
import torch

from repro.backend.base import ArrayBackend
from repro.exceptions import ConfigurationError

__all__ = ["TorchBackend"]

_FLOAT_DTYPES = {"float64": torch.float64, "float32": torch.float32}
_NUMPY_FLOATS = {"float64": np.float64, "float32": np.float32}


class TorchBackend(ArrayBackend):
    """torch, presented through the :class:`ArrayBackend` namespace.

    ``dtype`` selects the floating precision (``"float64"`` keeps the
    parity guarantee; ``"float32"`` trades it for accelerator speed) and
    ``device`` any valid torch device string (``"cpu"``, ``"cuda"``,
    ``"cuda:1"``, ...).  The device is validated eagerly — a grid should
    fail at configuration time, not mid-round.
    """

    name = "torch"

    def __init__(self, dtype: str = "float64", device: str = "cpu"):
        if dtype not in _FLOAT_DTYPES:
            raise ConfigurationError(
                f"torch backend dtype must be one of "
                f"{sorted(_FLOAT_DTYPES)}, got {dtype!r}"
            )
        try:
            self._device = torch.device(device)
            # A malformed-but-parseable device ("cuda" on a CPU-only
            # build) only fails on first allocation; probe it now.
            # CPU-only builds raise AssertionError ("Torch not compiled
            # with CUDA enabled") rather than RuntimeError.
            torch.empty(0, device=self._device)
        except (AssertionError, RuntimeError, ValueError) as error:
            raise ConfigurationError(
                f"torch backend cannot use device {device!r}: {error}"
            ) from error
        self._dtype_name = dtype
        self.float_dtype = _FLOAT_DTYPES[dtype]
        self.int_dtype = torch.int64
        self.bool_dtype = torch.bool

    @property
    def numpy_float_dtype(self) -> np.dtype:
        return np.dtype(_NUMPY_FLOATS[self._dtype_name])

    @property
    def device(self) -> str:
        return str(self._device)

    # -- scalar promotion ----------------------------------------------

    def _tensor_pair(self, a: Any, b: Any) -> tuple[torch.Tensor, torch.Tensor]:
        """Promote python scalars against the tensor operand (numpy's
        ufuncs do this implicitly; torch's binary ops want tensors of a
        concrete dtype on the right device)."""
        if not isinstance(a, torch.Tensor):
            anchor = b if isinstance(b, torch.Tensor) else None
            a = torch.as_tensor(
                a,
                dtype=anchor.dtype if anchor is not None else self.float_dtype,
                device=self._device,
            )
        if not isinstance(b, torch.Tensor):
            b = torch.as_tensor(b, dtype=a.dtype, device=a.device)
        return a, b

    # -- creation & movement -------------------------------------------

    def asarray(self, x: Any, dtype: Any = None) -> torch.Tensor:
        target = self.float_dtype if dtype is None else dtype
        if isinstance(x, torch.Tensor):
            return x.to(device=self._device, dtype=target)
        # Route python sequences through numpy first: torch.as_tensor
        # on nested lists is slow, and numpy-backed memory transfers in
        # one copy.
        if not isinstance(x, np.ndarray):
            x = np.asarray(x)
        return torch.as_tensor(x, device=self._device).to(target)

    def to_numpy(self, x: Any) -> np.ndarray:
        if isinstance(x, torch.Tensor):
            return x.detach().cpu().numpy()
        return np.asarray(x)

    def empty(self, shape: Sequence[int], dtype: Any = None) -> torch.Tensor:
        return torch.empty(
            tuple(shape),
            dtype=self.float_dtype if dtype is None else dtype,
            device=self._device,
        )

    def zeros(self, shape: Sequence[int], dtype: Any = None) -> torch.Tensor:
        return torch.zeros(
            tuple(shape),
            dtype=self.float_dtype if dtype is None else dtype,
            device=self._device,
        )

    def full(
        self, shape: Sequence[int], fill_value: Any, dtype: Any = None
    ) -> torch.Tensor:
        return torch.full(
            tuple(shape),
            fill_value,
            dtype=self.float_dtype if dtype is None else dtype,
            device=self._device,
        )

    def arange(self, stop: int, dtype: Any = None) -> torch.Tensor:
        return torch.arange(
            stop,
            dtype=self.int_dtype if dtype is None else dtype,
            device=self._device,
        )

    def copy(self, x: torch.Tensor) -> torch.Tensor:
        return x.clone()

    def astype(self, x: torch.Tensor, dtype: Any) -> torch.Tensor:
        return x.to(dtype)

    # -- elementwise ---------------------------------------------------

    def where(self, condition, a, b) -> torch.Tensor:
        a, b = self._tensor_pair(a, b)
        return torch.where(condition, a, b)

    def maximum(self, a, b) -> torch.Tensor:
        return torch.maximum(*self._tensor_pair(a, b))

    def minimum(self, a, b) -> torch.Tensor:
        return torch.minimum(*self._tensor_pair(a, b))

    def fmax(self, a, b) -> torch.Tensor:
        return torch.fmax(*self._tensor_pair(a, b))

    def abs(self, x) -> torch.Tensor:
        return torch.abs(x)

    def sqrt(self, x) -> torch.Tensor:
        return torch.sqrt(x)

    def isfinite(self, x) -> torch.Tensor:
        return torch.isfinite(x)

    # -- contractions --------------------------------------------------

    def einsum(self, subscripts: str, *operands) -> torch.Tensor:
        return torch.einsum(subscripts, *operands)

    def transpose(self, x, axes: Sequence[int]) -> torch.Tensor:
        return x.permute(*axes)

    # -- reductions ----------------------------------------------------

    def sum(self, x, axis: int | None = None):
        return torch.sum(x) if axis is None else torch.sum(x, dim=axis)

    def mean(self, x, axis: int | None = None):
        return torch.mean(x) if axis is None else torch.mean(x, dim=axis)

    def median(self, x, axis: int):
        # numpy semantics, twice over: even counts average the two
        # middle order statistics (torch.median returns the *lower*
        # one), and any NaN along the axis poisons that slice's median
        # (a sorted NaN parks at the high end and would otherwise be
        # silently skipped).
        ordered = torch.sort(x, dim=axis).values
        m = x.shape[axis]
        if m % 2 == 1:
            result = ordered.select(axis, (m - 1) // 2).clone()
        else:
            lower = ordered.select(axis, m // 2 - 1)
            upper = ordered.select(axis, m // 2)
            result = 0.5 * (lower + upper)
        if torch.is_floating_point(x):
            nan_slices = torch.isnan(x).any(dim=axis)
            if bool(torch.any(nan_slices)):
                result = result.masked_fill(nan_slices, float("nan"))
        return result

    def max(self, x, axis: int | None = None):
        return torch.max(x) if axis is None else torch.amax(x, dim=axis)

    def min(self, x, axis: int | None = None):
        return torch.min(x) if axis is None else torch.amin(x, dim=axis)

    def any(self, x, axis: int | None = None):
        return torch.any(x) if axis is None else torch.any(x, dim=axis)

    def all(self, x, axis: int | None = None):
        return torch.all(x) if axis is None else torch.all(x, dim=axis)

    def count_nonzero(self, x, axis: int | None = None):
        return torch.count_nonzero(x, dim=axis)

    def argmin(self, x, axis: int | None = None):
        # torch's arg-reductions reject bool tensors (numpy accepts
        # them — the Bulyan committee loop arg-reduces candidate
        # masks); widen to int8 first, preserving first-index ties.
        if x.dtype is torch.bool:
            x = x.to(torch.int8)
        return torch.argmin(x) if axis is None else torch.argmin(x, dim=axis)

    def argmax(self, x, axis: int | None = None):
        if x.dtype is torch.bool:
            x = x.to(torch.int8)
        return torch.argmax(x) if axis is None else torch.argmax(x, dim=axis)

    def norm(self, x, axis: int | None = None):
        if axis is None:
            return torch.linalg.vector_norm(x)
        return torch.linalg.vector_norm(x, dim=axis)

    # -- ordering ------------------------------------------------------

    def sort(self, x, axis: int = -1) -> torch.Tensor:
        return torch.sort(x, dim=axis).values

    def argsort(self, x, axis: int = -1, stable: bool = False) -> torch.Tensor:
        return torch.argsort(x, dim=axis, stable=stable)

    def partition(self, x, kth: int, axis: int = -1) -> torch.Tensor:
        # torch has no partial sort; a full sort satisfies the partition
        # contract (kth smallest in the first kth+1 slots) and n is tiny
        # (worker counts) on the partitioned axis.
        return torch.sort(x, dim=axis).values

    def take_along_axis(self, x, indices, axis: int) -> torch.Tensor:
        return torch.take_along_dim(x, indices, dim=axis)

    # -- numerics control ----------------------------------------------

    def errstate(self):
        # torch does not emit numpy-style floating-point warnings for
        # inf/NaN arithmetic; nothing to silence.
        return nullcontext()
