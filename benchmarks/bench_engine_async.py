"""Engine bench — asynchronous rounds: convergence vs bounded staleness.

Sweeps the bounded-staleness window ``max_staleness ∈ {0, 1, 4}`` under
a seeded-random delay schedule (``max_delay = 4``) on the quadratic
reference workload, for three aggregators (krum, coordinate-median,
trimmed-mean) each with and without the Kardam-style staleness filter,
under the gaussian and omniscient attacks — how much accuracy each rule
loses to staleness, and how much the filter buys back.

Two engine guarantees are asserted alongside the measurement:

* **degenerate identity** — the ``max_staleness = 0`` arm (delay
  schedule configured, window closed) reproduces the plain synchronous
  grid's trajectories bit-for-bit;
* **differential identity** — the batched executor reproduces the loop
  executor's async trajectories bit-for-bit, with exactly the
  Kardam-wrapped half of the cells riding the per-scenario fallback
  (reported via ``native_fraction``).

Writes the measurement to ``BENCH_engine_async.json`` at the repo root.

Standalone usage (CI smoke / regenerating the JSON)::

    PYTHONPATH=src python benchmarks/bench_engine_async.py          # full grid
    PYTHONPATH=src python benchmarks/bench_engine_async.py --smoke  # tiny grid
    PYTHONPATH=src python benchmarks/bench_engine_async.py --smoke \\
        --output BENCH_engine_async.smoke.json   # CI artifact
"""

from __future__ import annotations

import json
import platform
import sys
from collections import defaultdict
from pathlib import Path

import numpy as np

from repro.engine import ScenarioGrid, run_grid
from repro.experiments.reporting import format_table

try:
    from benchmarks.conftest import emit, run_once
except ImportError:  # executed as a script: python benchmarks/bench_engine_async.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import emit, run_once

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine_async.json"

STALENESS_VALUES = (0, 1, 4)
MAX_DELAY = 4

AGGREGATORS = (
    ("krum", {}),
    ("kardam", {"inner": "krum"}),
    ("coordinate-median", {}),
    ("kardam", {"inner": "coordinate-median"}),
    ("trimmed-mean", {}),
    ("kardam", {"inner": "trimmed-mean"}),
)

ATTACKS = (
    ("gaussian", {"sigma": 200.0}),
    ("omniscient", {"scale": 10.0}),
)


def _grid(
    *,
    seeds=(0, 1, 2),
    num_rounds=100,
    dimension=200,
    staleness_values=STALENESS_VALUES,
    delay: bool = True,
) -> ScenarioGrid:
    return ScenarioGrid(
        seeds=seeds,
        attacks=ATTACKS,
        aggregators=AGGREGATORS,
        f_values=(3,),
        num_workers=15,
        dimension=dimension,
        sigma=0.5,
        num_rounds=num_rounds,
        learning_rate=0.1,
        lr_timescale=100.0,
        max_staleness_values=tuple(staleness_values),
        **(
            {
                "delay_schedule": "random",
                "delay_kwargs": {"max_delay": MAX_DELAY},
            }
            if delay
            else {}
        ),
    )


def _identical_trajectories(result_a, result_b, *, by_position=False) -> bool:
    labels_a = [spec.label for spec in result_a.specs]
    labels_b = (
        [spec.label for spec in result_b.specs] if by_position else labels_a
    )
    for label_a, label_b in zip(labels_a, labels_b):
        if (
            result_a.final_params[label_a].tobytes()
            != result_b.final_params[label_b].tobytes()
        ):
            return False
        history_a = result_a.histories[label_a]
        history_b = result_b.histories[label_b]
        if len(history_a) != len(history_b) or any(
            a != b for a, b in zip(history_a, history_b)
        ):
            return False
    return True


def _convergence_rows(result) -> list[dict]:
    """Mean final loss / distance-to-optimum per (aggregator, attack,
    max_staleness) cell group, averaged over seeds."""
    groups: dict[tuple, list] = defaultdict(list)
    for spec in result.specs:
        history = result.histories[spec.label]
        final = history.evaluated[-1]
        key = (
            spec.aggregator,
            spec.aggregator_kwargs.get("inner"),
            spec.attack,
            spec.max_staleness,
        )
        groups[key].append(
            (final.loss, final.extras.get("dist_to_opt"))
        )
    rows = []
    for (aggregator, inner, attack, staleness), values in sorted(
        groups.items(), key=lambda item: tuple(map(str, item[0]))
    ):
        losses = [loss for loss, _dist in values]
        dists = [dist for _loss, dist in values if dist is not None]
        rows.append(
            {
                "aggregator": aggregator,
                "inner": inner,
                "kardam_filtered": aggregator == "kardam",
                "attack": attack,
                "max_staleness": staleness,
                "final_loss_mean": float(np.mean(losses)),
                "dist_to_opt_mean": (
                    float(np.mean(dists)) if dists else None
                ),
                "seeds": len(values),
            }
        )
    return rows


def run_comparison(grid: ScenarioGrid, sync_grid: ScenarioGrid) -> dict:
    """Execute the async grid in both modes, check the degenerate arm
    against the synchronous grid, and summarize."""
    loop_result = run_grid(grid, mode="loop", eval_every=25)
    batched_result = run_grid(grid, mode="batched", eval_every=25)
    speedup = loop_result.wall_time / max(batched_result.wall_time, 1e-12)

    # Degenerate arm: the async grid restricted to max_staleness = 0
    # must reproduce the no-delay synchronous grid bit for bit.
    degenerate_grid = _grid(
        seeds=tuple(grid.seeds),
        num_rounds=grid.num_rounds,
        dimension=grid.dimension,
        staleness_values=(0,),
        delay=True,
    )
    degenerate = run_grid(degenerate_grid, mode="batched", eval_every=25)
    sync_result = run_grid(sync_grid, mode="batched", eval_every=25)
    sync_equivalent = _identical_trajectories(
        sync_result, degenerate, by_position=True
    )

    return {
        "grid": {
            "cells": len(grid),
            "num_workers": grid.num_workers,
            "dimension": grid.dimension,
            "num_rounds": grid.num_rounds,
            "seeds": list(grid.seeds),
            "f_values": list(grid.f_values),
            "attacks": [name for name, _ in ATTACKS],
            "aggregators": [
                f"kardam({kwargs['inner']})" if name == "kardam" else name
                for name, kwargs in AGGREGATORS
            ],
            "max_staleness_values": list(grid.max_staleness_values),
            "delay_schedule": f"random(max_delay={MAX_DELAY})",
        },
        "backend": batched_result.backend,
        "loop_seconds": round(loop_result.wall_time, 4),
        "batched_seconds": round(batched_result.wall_time, 4),
        "speedup": round(speedup, 2),
        "trajectories_identical": _identical_trajectories(
            loop_result, batched_result
        ),
        "zero_staleness_equals_sync": sync_equivalent,
        # Kardam cells (half the aggregator axis) aggregate through the
        # per-scenario fallback; plain rules keep their native kernels
        # even under staleness.
        "native_fraction": batched_result.native_fraction,
        "convergence": _convergence_rows(batched_result),
        "python": platform.python_version(),
    }


def _emit_summary(summary: dict) -> None:
    emit(
        format_table(
            [
                "cells", "n", "d", "rounds", "loop s", "batched s",
                "speedup", "identical", "stale0==sync", "native",
            ],
            [
                [
                    summary["grid"]["cells"],
                    summary["grid"]["num_workers"],
                    summary["grid"]["dimension"],
                    summary["grid"]["num_rounds"],
                    summary["loop_seconds"],
                    summary["batched_seconds"],
                    f"{summary['speedup']}x",
                    summary["trajectories_identical"],
                    summary["zero_staleness_equals_sync"],
                    round(summary["native_fraction"], 3),
                ]
            ],
            title="Engine — async rounds (staleness sweep)",
        )
    )
    rows = [
        [
            (
                f"kardam({row['inner']})"
                if row["kardam_filtered"]
                else row["aggregator"]
            ),
            row["attack"],
            row["max_staleness"],
            f"{row['dist_to_opt_mean']:.4g}",
        ]
        for row in summary["convergence"]
    ]
    emit(
        format_table(
            ["aggregator", "attack", "max_staleness", "dist_to_opt"],
            rows,
            title="Convergence vs staleness (mean over seeds)",
        )
    )


def _check(summary: dict) -> list[str]:
    failures = []
    if not summary["trajectories_identical"]:
        failures.append(
            "batched engine diverged from the per-scenario loop on the "
            "async grid"
        )
    if not summary["zero_staleness_equals_sync"]:
        failures.append(
            "max_staleness=0 async arm forked from the synchronous "
            "trajectories"
        )
    if summary["native_fraction"] != 0.5:
        failures.append(
            f"expected exactly the kardam half of the cells on the loop "
            f"fallback, got native_fraction={summary['native_fraction']}"
        )
    return failures


def bench_engine_async_staleness(benchmark):
    summary = run_once(
        benchmark, lambda: run_comparison(_grid(), _grid(delay=False,
                                                        staleness_values=(0,)))
    )
    _emit_summary(summary)
    RESULT_PATH.write_text(json.dumps(summary, indent=1) + "\n")
    for failure in _check(summary):
        raise AssertionError(failure)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run a small grid (1 seed, 10 rounds, d=30) without "
        "writing BENCH_engine_async.json — the CI sanity check",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the summary JSON to this path (used by CI to "
        "upload the smoke measurement as a workflow artifact)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        grid = _grid(seeds=(0,), num_rounds=10, dimension=30)
        sync_grid = _grid(
            seeds=(0,), num_rounds=10, dimension=30,
            staleness_values=(0,), delay=False,
        )
    else:
        grid = _grid()
        sync_grid = _grid(staleness_values=(0,), delay=False)
    summary = run_comparison(grid, sync_grid)
    print(json.dumps(summary, indent=1))
    if args.output is not None:
        args.output.write_text(json.dumps(summary, indent=1) + "\n")
        print(f"wrote {args.output}")
    failures = _check(summary)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    if not args.smoke:
        RESULT_PATH.write_text(json.dumps(summary, indent=1) + "\n")
        print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
