"""Learning-rate schedules.

Proposition 4.3 requires ``Σ γ_t = ∞`` and ``Σ γ_t² < ∞``;
:class:`InverseTimeSchedule` (γ_t ∝ 1/t) satisfies both and is the
schedule the convergence benches use.  The constant schedule violates
the square-summability condition but matches common practice for the
fixed-horizon MLP experiments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.exceptions import ConfigurationError

__all__ = [
    "LearningRateSchedule",
    "ConstantSchedule",
    "InverseTimeSchedule",
    "StepDecaySchedule",
]


class LearningRateSchedule(ABC):
    """Maps a round index t ≥ 0 to the step size γ_t."""

    @abstractmethod
    def rate(self, round_index: int) -> float:
        """The learning rate for round ``round_index``."""

    def __call__(self, round_index: int) -> float:
        if round_index < 0:
            raise ConfigurationError(f"round_index must be >= 0, got {round_index}")
        value = self.rate(round_index)
        if value <= 0:
            raise ConfigurationError(
                f"schedule produced non-positive rate {value} at t={round_index}"
            )
        return value


class ConstantSchedule(LearningRateSchedule):
    """γ_t = γ₀ for every round."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        self._rate = float(rate)

    def rate(self, round_index: int) -> float:
        return self._rate


class InverseTimeSchedule(LearningRateSchedule):
    """γ_t = γ₀ / (1 + t/τ): satisfies Prop. 4.3's conditions (ii)."""

    def __init__(self, initial: float, timescale: float = 100.0):
        if initial <= 0 or timescale <= 0:
            raise ConfigurationError(
                f"initial and timescale must be positive, got "
                f"({initial}, {timescale})"
            )
        self.initial = float(initial)
        self.timescale = float(timescale)

    def rate(self, round_index: int) -> float:
        return self.initial / (1.0 + round_index / self.timescale)


class StepDecaySchedule(LearningRateSchedule):
    """γ halves every ``period`` rounds (common deep-learning practice)."""

    def __init__(self, initial: float, period: int, factor: float = 0.5):
        if initial <= 0:
            raise ConfigurationError(f"initial must be positive, got {initial}")
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        if not 0.0 < factor < 1.0:
            raise ConfigurationError(f"factor must be in (0, 1), got {factor}")
        self.initial = float(initial)
        self.period = int(period)
        self.factor = float(factor)

    def rate(self, round_index: int) -> float:
        return self.initial * self.factor ** (round_index // self.period)
