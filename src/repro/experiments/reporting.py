"""ASCII rendering of the tables/series the benches print.

The paper's figures are line plots; the harness reproduces each as a
printed series (round → value per condition) plus a summary table, so
``pytest benchmarks/ --benchmark-only -s`` shows the reproduced shape
directly in the terminal.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["format_table", "format_series", "format_league_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str | None = None
) -> str:
    """Render rows as a fixed-width ASCII table."""
    if not headers:
        raise ConfigurationError("table needs at least one column")
    cells = [[_fmt(value) for value in row] for row in rows]
    for i, row in enumerate(cells):
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {i} has {len(row)} cells for {len(headers)} headers"
            )
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells)) if cells else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    rounds: np.ndarray,
    values_by_label: dict[str, np.ndarray],
    *,
    max_points: int = 12,
) -> str:
    """Render one figure's line series as a compact table of sampled rounds.

    ``values_by_label`` maps condition labels (e.g. "krum f=6") to series
    aligned with ``rounds``; long series are subsampled to ``max_points``
    rows so bench output stays readable.
    """
    rounds = np.asarray(rounds)
    if rounds.size == 0:
        raise ConfigurationError("empty series")
    for label, values in values_by_label.items():
        if np.asarray(values).shape != rounds.shape:
            raise ConfigurationError(
                f"series {label!r} length {np.asarray(values).size} does not "
                f"match {rounds.size} rounds"
            )
    if rounds.size > max_points:
        idx = np.unique(
            np.linspace(0, rounds.size - 1, max_points).astype(int)
        )
    else:
        idx = np.arange(rounds.size)
    headers = ["round", *values_by_label.keys()]
    table_rows = [
        [int(rounds[i]), *(np.asarray(v)[i] for v in values_by_label.values())]
        for i in idx
    ]
    return format_table(headers, table_rows, title=name)


def format_league_table(result, *, title: str | None = None) -> str:
    """Render a tournament's league as a GitHub-markdown table.

    ``result`` is a :class:`~repro.tournament.TournamentResult` (or any
    object with a compatible ``rows`` attribute).  Rows are grouped by
    attack in slate order; within an attack, defenses keep slate order
    so reruns diff cleanly.  The breakdown column flags pairings that
    diverged or raised, with the recorded reason.
    """
    rows = list(result.rows)
    if not rows:
        raise ConfigurationError("league table needs at least one row")
    headers = [
        "Attack",
        "Defense",
        "Final error",
        "vs baseline",
        "Rounds to 2x-baseline",
        "Breakdown",
    ]
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        ratio = "-" if row.error_ratio is None else f"{row.error_ratio:.2f}x"
        reach = (
            "-"
            if row.rounds_to_threshold is None
            else f"{row.rounds_to_threshold:.0f}"
        )
        if row.reached_fraction not in (0.0, 1.0):
            reach += f" ({row.reached_fraction:.0%} of cells)"
        breakdown = "no"
        if row.breakdown:
            breakdown = (
                f"**yes** ({row.breakdown_reason})"
                if row.breakdown_reason
                else "**yes**"
            )
        lines.append(
            "| "
            + " | ".join(
                [
                    row.attack,
                    row.defense,
                    _fmt(row.final_error),
                    ratio,
                    reach,
                    breakdown,
                ]
            )
            + " |"
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float) or isinstance(value, np.floating):
        if value == 0:
            return "0"
        magnitude = abs(float(value))
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)
