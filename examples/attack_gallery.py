"""Attack gallery: every adversary vs every aggregation rule.

Two views of the same question — who survives what:

1. the Monte-Carlo (α, f)-resilience matrix of Definition 3.2, for a
   curated slice of adversaries resolved through the attack registry;
2. the full attack × defense robustness league — every registered
   attack against every registered rule, rendered with the tournament
   reporter (the same machinery behind ``BENCH_tournament.json``).

This is the fastest way to see *why* Krum's shape — distance filtering,
then selection — matters, and where the adaptive adversaries bite.

Run:  PYTHONPATH=src python examples/attack_gallery.py
"""

from __future__ import annotations

from repro.analysis import estimate_resilience
from repro.attacks.registry import make_attack
from repro.core.registry import make_aggregator
from repro.experiments import format_table
from repro.experiments.reporting import format_league_table
from repro.tournament import AsyncCell, TournamentRunner

N, F = 13, 3
DIMENSION = 4
SIGMA = 0.02
TRIALS = 300

# Registry specs, not hand-built instances: the gallery exercises the
# same (name, kwargs) surface grids and the tournament resolve.
RULES = (
    ("krum", {"f": F}),
    ("multi-krum", {"f": F, "m": 6}),
    ("average", {}),
    ("closest-to-all", {}),
    ("coordinate-median", {}),
    ("trimmed-mean", {"f": F}),
    ("geometric-median", {}),
)
ATTACKS = (
    ("gaussian", {"sigma": 200.0}),
    ("omniscient", {"scale": 10.0}),
    ("sign-flip", {"scale": 5.0}),
    ("collusion", {"decoy_distance": 100.0, "against_gradient": True}),
    ("inner-product", {"epsilon": 0.5}),
    ("little-is-enough", {"z": 1.0}),
)
SELECTION_RULES = ("krum", "multi-krum", "closest-to-all")


def resilience_matrix() -> None:
    attacks = {name: make_attack(name, kwargs) for name, kwargs in ATTACKS}
    condition_rows, selection_rows = [], []
    for rule_name, rule_kwargs in RULES:
        rule = make_aggregator(rule_name, **rule_kwargs)
        condition_row, selection_row = [rule_name], [rule_name]
        for attack in attacks.values():
            report = estimate_resilience(
                rule,
                attack,
                n=N,
                f=F,
                dimension=DIMENSION,
                sigma=SIGMA,
                trials=TRIALS,
                seed=42,
            )
            condition_row.append("ok" if report.satisfied else "FAIL")
            selection_row.append(
                f"{100 * report.byzantine_selection_rate:.0f}%"
            )
        condition_rows.append(condition_row)
        selection_rows.append(selection_row)

    print(
        format_table(
            ["rule \\ attack", *attacks.keys()],
            condition_rows,
            title=(
                f"(α, f)-resilience condition (i), measured over {TRIALS} "
                f"trials (n={N}, f={F}, d={DIMENSION}, σ={SIGMA})"
            ),
        )
    )
    print()
    print(
        format_table(
            ["rule \\ attack", *attacks.keys()],
            [row for row in selection_rows if row[0] in SELECTION_RULES],
            title="Byzantine-proposal selection rate (selection-based rules)",
        )
    )
    print(
        "\nReading: 'ok' = the measured ⟨E F, ∇Q⟩ clears the paper's"
        "\n(1 − sin α)‖∇Q‖² bound under that attack; 'FAIL' = the adversary"
        "\nbroke the direction of descent.  The linear rule fails the"
        "\ndirection-reversing attacks (Lemma 3.1); the closest-to-all rule"
        "\nis fully controlled by the Figure 2 collusion (its selection is"
        "\nByzantine ~100% of rounds, and with gradient-aimed decoys its"
        "\ncondition (i) fails too); Krum holds throughout."
    )


def robustness_league() -> None:
    """The full-registry league on a small synchronous slate — every
    registered attack (adaptive adversaries included) against every
    registered rule, with breakdowns isolated into reasoned rows."""
    runner = TournamentRunner(
        seeds=(0,),
        num_workers=N + 2,  # bulyan needs n >= 4f + 3
        num_byzantine=F,
        num_rounds=20,
        eval_every=5,
        workloads=(("quadratic", {"dimension": DIMENSION, "sigma": 0.3}),),
        async_cells=(AsyncCell(),),
    )
    result = runner.run()
    assert result.covers_product()
    print(format_league_table(result, title="Robustness league (sync slate)"))
    print(
        "\nReading: 'vs baseline' is each pairing's final error over the"
        "\nsame rule's attack-free run; breakdown rows mark rules the"
        "\nattack destroyed (non-finite or >25x baseline).  The adaptive"
        "\nadversaries (staleness-gaming, lipschitz-mimicry, probe) adapt"
        "\nto the defense; the tournament measures whether it holds anyway."
    )


def main() -> None:
    resilience_matrix()
    print()
    robustness_league()


if __name__ == "__main__":
    main()
