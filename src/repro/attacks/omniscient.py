"""The full paper's "omniscient" attack.

The omniscient adversary knows the exact gradient (it can read every
worker's data and the cost function) and proposes its *opposite*, scaled
large, trying to drive gradient ascent.  Against averaging this erases
the progress of all correct workers; against Krum the proposal's distance
to the correct cluster grows with the scale, so it is filtered out.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.exceptions import ConfigurationError

__all__ = ["OmniscientAttack"]


class OmniscientAttack(Attack):
    """Propose ``−scale × ∇Q(x_t)`` (estimated by the honest mean if hidden).

    ``compensate_average=True`` strengthens the attack against linear
    rules: the proposal is chosen so the *average* of all n proposals
    equals ``−scale × g`` exactly, i.e. the adversary cancels the honest
    workers' contribution and injects pure ascent.
    """

    def __init__(self, scale: float = 10.0, *, compensate_average: bool = False):
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.scale = float(scale)
        self.compensate_average = bool(compensate_average)
        self.name = f"omniscient(scale={self.scale:g})"

    def craft(self, context: AttackContext) -> np.ndarray:
        gradient = (
            context.true_gradient
            if context.true_gradient is not None
            else context.honest_mean
        )
        gradient = np.asarray(gradient, dtype=np.float64)
        f = context.num_byzantine
        if not self.compensate_average:
            proposal = -self.scale * gradient
            return self._output(context, np.tile(proposal, (f, 1)))
        # Solve (Σ honest + f · V) / n = −scale · g for the shared V.
        n = context.num_workers
        honest_sum = context.honest_gradients.sum(axis=0)
        proposal = (-self.scale * gradient * n - honest_sum) / f
        return self._output(context, np.tile(proposal, (f, 1)))
