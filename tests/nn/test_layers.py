"""Gradient-checked tests for every layer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.nn.layers import Dense, Dropout, LeakyReLU, ReLU, Sigmoid, Tanh
from tests.helpers import assert_gradients_close, numerical_gradient


def _input_gradient_check(layer, inputs, rng):
    """Check dL/d(input) for L = sum(w * forward(x)) with random w."""
    out = layer.forward(inputs)
    weights = rng.standard_normal(out.shape)

    def scalar_loss(x):
        return float(np.sum(weights * layer.forward(x)))

    analytic = layer.backward(weights)
    numeric = numerical_gradient(scalar_loss, inputs.copy())
    assert_gradients_close(analytic, numeric, rtol=1e-4, atol=1e-6)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 3, rng=rng)
        out = layer.forward(rng.standard_normal((5, 4)))
        assert out.shape == (5, 3)

    def test_forward_values(self, rng):
        layer = Dense(2, 2, rng=rng)
        layer.weight.value = np.array([[1.0, 0.0], [0.0, 2.0]])
        layer.bias.value = np.array([1.0, -1.0])
        out = layer.forward(np.array([[3.0, 4.0]]))
        np.testing.assert_allclose(out, [[4.0, 7.0]])

    def test_input_gradient(self, rng):
        layer = Dense(4, 3, rng=rng)
        _input_gradient_check(layer, rng.standard_normal((6, 4)), rng)

    def test_weight_gradient(self, rng):
        layer = Dense(3, 2, rng=rng)
        inputs = rng.standard_normal((5, 3))
        weights = rng.standard_normal((5, 2))
        layer.forward(inputs)
        layer.backward(weights)
        analytic = layer.weight.grad.copy()

        def scalar_loss(w):
            layer.weight.value = w
            return float(np.sum(weights * layer.forward(inputs)))

        numeric = numerical_gradient(scalar_loss, layer.weight.value.copy())
        assert_gradients_close(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_bias_gradient(self, rng):
        layer = Dense(3, 2, rng=rng)
        inputs = rng.standard_normal((4, 3))
        upstream = rng.standard_normal((4, 2))
        layer.forward(inputs)
        layer.backward(upstream)
        np.testing.assert_allclose(layer.bias.grad, upstream.sum(axis=0))

    def test_no_bias_option(self, rng):
        layer = Dense(3, 2, rng=rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters) == 1

    def test_rejects_wrong_input_dim(self, rng):
        layer = Dense(3, 2, rng=rng)
        with pytest.raises(DimensionMismatchError):
            layer.forward(np.ones((2, 4)))

    def test_rejects_bad_sizes(self, rng):
        with pytest.raises(ConfigurationError):
            Dense(0, 2, rng=rng)

    def test_backward_before_forward(self, rng):
        layer = Dense(2, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))


@pytest.mark.parametrize(
    "layer_factory",
    [ReLU, Tanh, Sigmoid, lambda: LeakyReLU(0.1)],
    ids=["relu", "tanh", "sigmoid", "leaky_relu"],
)
class TestActivations:
    def test_gradient(self, layer_factory, rng):
        layer = layer_factory()
        # Shift away from 0 to avoid the ReLU kink in finite differences.
        inputs = rng.standard_normal((5, 4))
        inputs[np.abs(inputs) < 1e-2] += 0.1
        _input_gradient_check(layer, inputs, rng)

    def test_output_shape(self, layer_factory, rng):
        layer = layer_factory()
        out = layer.forward(rng.standard_normal((3, 7)))
        assert out.shape == (3, 7)

    def test_backward_before_forward(self, layer_factory, rng):
        with pytest.raises(RuntimeError):
            layer_factory().backward(np.ones((1, 2)))


class TestActivationValues:
    def test_relu_zeroes_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_leaky_relu_slope(self):
        out = LeakyReLU(0.1).forward(np.array([[-10.0, 10.0]]))
        np.testing.assert_allclose(out, [[-1.0, 10.0]])

    def test_leaky_relu_rejects_negative_slope(self):
        with pytest.raises(ConfigurationError):
            LeakyReLU(-0.5)

    def test_sigmoid_stable_at_extremes(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)

    def test_tanh_range(self, rng):
        out = Tanh().forward(rng.standard_normal((10, 10)) * 100)
        assert np.all(np.abs(out) <= 1.0)


class TestDropout:
    def test_identity_in_eval_mode(self, rng):
        layer = Dropout(0.5, rng=rng)
        inputs = rng.standard_normal((4, 6))
        np.testing.assert_array_equal(layer.forward(inputs, training=False), inputs)

    def test_preserves_expectation(self, rng):
        layer = Dropout(0.3, rng=rng)
        inputs = np.ones((200, 500))
        out = layer.forward(inputs, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_zero_probability_is_identity(self, rng):
        layer = Dropout(0.0, rng=rng)
        inputs = rng.standard_normal((3, 3))
        np.testing.assert_array_equal(layer.forward(inputs, training=True), inputs)

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng=rng)
        inputs = np.ones((10, 10))
        out = layer.forward(inputs, training=True)
        grad = layer.backward(np.ones_like(inputs))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_rejects_invalid_probability(self, rng):
        with pytest.raises(ConfigurationError):
            Dropout(1.0, rng=rng)
        with pytest.raises(ConfigurationError):
            Dropout(-0.1, rng=rng)
