"""Tests for the procedural MNIST substitute."""

import numpy as np
import pytest

from repro.data.mnist_like import IMAGE_SIDE, make_mnist_like, render_digit
from repro.exceptions import ConfigurationError
from repro.models.softmax import SoftmaxRegressionModel


class TestRenderDigit:
    def test_shape_and_range(self, rng):
        image = render_digit(5, rng)
        assert image.shape == (IMAGE_SIDE, IMAGE_SIDE)
        assert image.min() >= 0.0
        assert image.max() <= 1.0

    def test_all_digits_render(self, rng):
        for digit in range(10):
            image = render_digit(digit, rng)
            assert image.sum() > 5.0, f"digit {digit} renders almost empty"

    def test_digits_are_distinguishable_without_noise(self):
        rng = np.random.default_rng(0)
        clean = [
            render_digit(d, rng, noise=0.0, max_shift=0) for d in range(10)
        ]
        for i in range(10):
            for j in range(i + 1, 10):
                assert np.abs(clean[i] - clean[j]).sum() > 10.0

    def test_rejects_invalid_digit(self, rng):
        with pytest.raises(ConfigurationError):
            render_digit(10, rng)


class TestMakeMnistLike:
    def test_shapes(self):
        ds = make_mnist_like(64, seed=0)
        assert ds.inputs.shape == (64, 784)
        assert ds.num_classes == 10
        assert ds.task == "multiclass"

    def test_reproducible(self):
        a = make_mnist_like(16, seed=5)
        b = make_mnist_like(16, seed=5)
        np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_roughly_balanced_classes(self):
        ds = make_mnist_like(2000, seed=1)
        counts = np.bincount(ds.targets, minlength=10)
        assert counts.min() > 120  # uniform would be 200 each

    def test_rejects_zero_samples(self):
        with pytest.raises(ConfigurationError):
            make_mnist_like(0)

    def test_task_is_learnable(self, rng):
        # A linear softmax classifier should beat random (10%) easily —
        # this is what makes the dataset a valid MNIST stand-in.
        train = make_mnist_like(800, seed=2)
        test = make_mnist_like(200, seed=3)
        model = SoftmaxRegressionModel(784, 10)
        params = model.init_params(rng)
        for _step in range(60):
            params -= 0.5 * model.gradient(params, train.inputs, train.targets)
        assert model.accuracy(params, test.inputs, test.targets) > 0.8
