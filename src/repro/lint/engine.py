"""The lint driver: file discovery, rule execution, suppressions.

Running the linter is two passes.  The per-file pass parses each file
once, runs every selected module-local rule over the shared AST, and
records that file's suppressions; with ``jobs > 1`` it fans out across a
process pool (result order is by sorted path either way, so parallel
runs are byte-identical to serial ones).  The whole-program pass then
builds one :class:`~repro.lint.project.ProjectContext` over every file
that parsed and hands it to each selected project-scoped rule; project
findings are bucketed back onto the files they anchor in so one
suppression mechanism covers both passes.

Suppressions are line comments — ``# repro-lint: ignore[rule]`` — and a
suppression matches a finding when it sits on the finding's line *or*
anywhere in the finding's statement header: a comment on a decorator
line suppresses findings anchored on the decorated ``def``, and a
comment on any line of a multi-line statement suppresses findings
anchored at the statement's first line.  (Headers only: a suppression
inside a function body never silences a finding on the ``def`` itself.)

Two checks are engine built-ins rather than AST rules (they are about
the *lint run*, not the code): ``syntax-error`` (a file the compiler
cannot parse has every invariant unverifiable — that must fail the
gate, not skip silently) and ``unused-suppression`` (an ignore comment
that no longer matches a finding is a stale escape hatch; flagging it
keeps the suppression inventory honest).  Both are registered under
those names so ``--select``/``--ignore`` treat them like any other
rule.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.lint.base import LintRule, ModuleContext
from repro.lint.findings import Finding
from repro.lint.project import build_project_context
from repro.lint.registry import available_rules, make_rule, register_rule

__all__ = [
    "LintReport",
    "collect_python_files",
    "resolve_rules",
    "lint_source",
    "lint_paths",
    "SUPPRESSION_PATTERN",
]


class _SyntaxErrorRule(LintRule):
    """Placeholder for the engine's parse check (never runs itself)."""

    name = "syntax-error"
    description = "every linted file must parse (findings come from the engine)"

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        return ()


class _UnusedSuppressionRule(LintRule):
    """Placeholder for the engine's suppression audit (never runs itself)."""

    name = "unused-suppression"
    description = (
        "every '# repro-lint: ignore[...]' comment must suppress a finding"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        return ()


register_rule("syntax-error", _SyntaxErrorRule)
register_rule("unused-suppression", _UnusedSuppressionRule)


# One suppression comment per line: a bare ``ignore`` silences every
# rule on that line, ``ignore[a, b]`` only the named rules.
SUPPRESSION_PATTERN = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<rules>[^\]]*)\])?\s*$"
)
_DIRECTIVE_MARKER = re.compile(r"#\s*repro-lint\b")


@dataclass
class _Suppression:
    line: int
    column: int
    rules: frozenset[str] | None  # None = bare ignore (all rules)
    used: set[str] = field(default_factory=set)


def _parse_suppressions(
    source: str, path: str
) -> tuple[dict[int, _Suppression], list[Finding]]:
    """Extract suppression comments, flagging malformed directives.

    A comment that mentions ``repro-lint`` but does not parse as a
    suppression (typo'd keyword, empty or unknown rule list) is reported
    under ``unused-suppression``: a directive the engine silently drops
    would look exactly like a working escape hatch.
    """
    suppressions: dict[int, _Suppression] = {}
    malformed: list[Finding] = []

    def bad(line: int, column: int, message: str) -> None:
        malformed.append(
            Finding(
                rule="unused-suppression",
                path=path,
                line=line,
                column=column,
                message=message,
            )
        )

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return {}, []  # unparseable files are the syntax-error check's job
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        if not _DIRECTIVE_MARKER.search(token.string):
            continue
        line, column = token.start[0], token.start[1] + 1
        match = SUPPRESSION_PATTERN.search(token.string)
        if match is None:
            bad(
                line,
                column,
                f"malformed repro-lint directive {token.string.strip()!r}; "
                f"expected '# repro-lint: ignore[rule]'",
            )
            continue
        names = match.group("rules")
        if names is None:
            rules: frozenset[str] | None = None
        else:
            parts = [part.strip() for part in names.split(",")]
            if not all(parts) or not parts:
                bad(line, column, "empty rule list in repro-lint suppression")
                continue
            unknown = sorted(set(parts) - set(available_rules()))
            if unknown:
                bad(
                    line,
                    column,
                    f"suppression names unknown rule(s) {unknown}; "
                    f"available: {available_rules()}",
                )
                continue
            rules = frozenset(parts)
        suppressions[line] = _Suppression(line=line, column=column, rules=rules)
    return suppressions, malformed


def _line_anchors(tree: ast.Module) -> dict[int, int]:
    """Map each statement-header line to the line findings anchor on.

    A finding built from a statement node carries ``node.lineno`` — the
    ``def`` line for a decorated function, the first line of a
    multi-line call.  This map lets a suppression comment anywhere in
    the same header reach that anchor: decorator lines and continuation
    lines map to the statement's ``lineno``.  Statements with a body
    (def/class/if/for/...) contribute only their header — decorators
    through the line before ``body[0]`` — so a suppression inside the
    body never silences a finding on the header.  Overlapping spans are
    resolved smallest-wins (the innermost statement owns the line).
    """
    spans: list[tuple[int, int, int]] = []  # (start, end, anchor)
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        anchor = node.lineno
        start = anchor
        decorators = getattr(node, "decorator_list", None) or []
        for decorator in decorators:
            start = min(start, decorator.lineno)
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        else:
            end = int(getattr(node, "end_lineno", anchor) or anchor)
        spans.append((start, end, anchor))
    anchors: dict[int, int] = {}
    # Widest spans first, so narrower (inner) statements overwrite.
    for start, end, anchor in sorted(
        spans, key=lambda span: span[0] - span[1]
    ):
        for line in range(start, end + 1):
            anchors[line] = anchor
    return anchors


def _apply_suppressions(
    findings: list[Finding],
    suppressions: dict[int, _Suppression],
    selected: set[str],
    path: str,
    anchors: dict[int, int] | None = None,
) -> list[Finding]:
    # A suppression on line S silences findings on S itself and on S's
    # statement anchor (the decorated ``def``, the first line of a
    # multi-line statement).  Exact-line suppressions win conflicts.
    by_line: dict[int, _Suppression] = {}
    for suppression in suppressions.values():
        by_line.setdefault(suppression.line, suppression)
    if anchors:
        for suppression in suppressions.values():
            target = anchors.get(suppression.line, suppression.line)
            by_line.setdefault(target, suppression)

    kept: list[Finding] = []
    for finding in findings:
        suppression = by_line.get(finding.line)
        if suppression is not None and (
            suppression.rules is None or finding.rule in suppression.rules
        ):
            suppression.used.add(finding.rule)
            continue
        kept.append(finding)
    if "unused-suppression" not in selected:
        return kept
    for suppression in suppressions.values():
        if suppression.rules is None:
            if not suppression.used:
                kept.append(
                    Finding(
                        rule="unused-suppression",
                        path=path,
                        line=suppression.line,
                        column=suppression.column,
                        message="suppression does not match any finding",
                    )
                )
            continue
        # Named suppressions are audited per rule, but only for rules
        # that actually ran — a partial --select cannot prove a
        # suppression for an unselected rule stale.
        stale = sorted((suppression.rules & selected) - suppression.used)
        if stale:
            kept.append(
                Finding(
                    rule="unused-suppression",
                    path=path,
                    line=suppression.line,
                    column=suppression.column,
                    message=(
                        "suppression does not match any finding for "
                        f"rule(s) {stale}"
                    ),
                )
            )
    return kept


def resolve_rules(
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[LintRule]:
    """Instantiate the selected rules (default: every registered rule).

    ``select`` picks an explicit subset, ``ignore`` removes names from
    it; unknown names in either raise :class:`ConfigurationError` — a
    typo'd rule name silently linting nothing is how a gate rots.
    """
    known = available_rules()
    for names, option in ((select, "--select"), (ignore, "--ignore")):
        unknown = sorted(set(names or ()) - set(known))
        if unknown:
            raise ConfigurationError(
                f"unknown lint rule(s) {unknown} in {option}; "
                f"available: {known}"
            )
    chosen = list(select) if select else known
    dropped = set(ignore or ())
    return [make_rule(name) for name in chosen if name not in dropped]


@dataclass
class _FileAnalysis:
    """Per-file pass output: raw findings plus suppression machinery.

    Picklable (Finding and _Suppression are plain dataclasses), so the
    parallel per-file pass can ship analyses back from worker processes.
    Suppressions are *not* yet applied — project findings merge in
    first, so one suppression mechanism covers both passes.
    """

    path: str
    findings: list[Finding]
    suppressions: dict[int, _Suppression]
    malformed: list[Finding]
    anchors: dict[int, int]


def _analyze_source(
    source: str, path: str, rules: Sequence[LintRule]
) -> _FileAnalysis:
    """Run the module-local rules over one source string."""
    selected = {rule.name for rule in rules}
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        findings: list[Finding] = []
        if "syntax-error" in selected:
            findings.append(
                Finding(
                    rule="syntax-error",
                    path=path,
                    line=int(error.lineno or 1),
                    column=int(error.offset or 1),
                    message=f"cannot parse: {error.msg}",
                )
            )
        return _FileAnalysis(path, findings, {}, [], {})
    module = ModuleContext(path=path, source=source, tree=tree)
    findings = []
    for rule in rules:
        if not rule.project_scope:
            findings.extend(rule.check(module))
    suppressions, malformed = _parse_suppressions(source, path)
    return _FileAnalysis(
        path, findings, suppressions, malformed, _line_anchors(tree)
    )


def _analyze_file(path: str, rule_names: Sequence[str]) -> _FileAnalysis:
    """Per-file worker (module level so ``--jobs`` can pickle it).

    Rules are re-resolved by name inside the worker; built-in rules
    register at import time so name resolution is process-independent.
    (Rules registered at runtime rely on fork-style workers inheriting
    the registry — on platforms that spawn, run such rules with
    ``jobs=1``.)
    """
    source = Path(path).read_text(encoding="utf-8")
    rules = [make_rule(name) for name in rule_names]
    return _analyze_source(source, path, rules)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[LintRule] | None = None,
) -> list[Finding]:
    """Lint one source string (the fixture-test entry point).

    ``path`` participates in module-scoped rules (e.g. backend-purity
    only checks the kernel modules), so fixture snippets fake the
    library path they pretend to live at.  Project-scoped rules
    contribute nothing here — a single snippet has no whole-program
    context; use :func:`lint_paths` on a fixture tree instead.
    """
    if rules is None:
        rules = resolve_rules()
    selected = {rule.name for rule in rules}
    analysis = _analyze_source(source, path, rules)
    findings = _apply_suppressions(
        analysis.findings,
        analysis.suppressions,
        selected,
        path,
        analysis.anchors,
    )
    if "unused-suppression" in selected:
        findings.extend(analysis.malformed)
    return sorted(findings, key=Finding.sort_key)


def collect_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand path arguments into a sorted, deduplicated ``.py`` file list.

    Directories are searched recursively; a path that does not exist is
    a :class:`ConfigurationError` (a gate that "passes" because its
    target moved is worse than one that fails loudly).
    """
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.is_file():
            files.add(path)
        else:
            raise ConfigurationError(f"no such file or directory: {raw}")
    return sorted(files)


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: tuple[Finding, ...]
    files_checked: int
    rule_names: tuple[str, ...]

    @property
    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "rules": list(self.rule_names),
            "findings": [finding.as_dict() for finding in self.findings],
            "summary": {
                "total": len(self.findings),
                "by_rule": self.counts_by_rule,
            },
        }

    def as_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=False)


def lint_paths(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    *,
    project: bool = True,
    jobs: int = 1,
) -> LintReport:
    """Lint files/directories with the selected rules (the CLI core).

    ``project=False`` skips the whole-program pass (module-local rules
    only); ``jobs`` fans the per-file pass out over that many worker
    processes — output is independent of ``jobs``.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    rules = resolve_rules(select=select, ignore=ignore)
    selected = {rule.name for rule in rules}
    module_rule_names = tuple(
        rule.name for rule in rules if not rule.project_scope
    )
    project_rules = [rule for rule in rules if rule.project_scope]
    files = collect_python_files(paths)

    worker = partial(_analyze_file, rule_names=module_rule_names)
    if jobs > 1 and len(files) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            analyses = list(pool.map(worker, (str(f) for f in files)))
    else:
        analyses = [worker(str(f)) for f in files]

    # Whole-program pass: one ProjectContext over every file that
    # parsed, shared by all selected project rules.
    by_path: dict[str, list[Finding]] = {}
    if project and project_rules:
        modules = []
        for file in files:
            try:
                source = file.read_text(encoding="utf-8")
                tree = ast.parse(source)
            except (OSError, SyntaxError, UnicodeDecodeError):
                continue  # already a syntax-error finding, or unreadable
            modules.append(
                ModuleContext(path=str(file), source=source, tree=tree)
            )
        context = build_project_context(modules)
        for rule in project_rules:
            for finding in rule.check_project(context):
                by_path.setdefault(finding.path, []).append(finding)

    findings: list[Finding] = []
    for analysis in analyses:
        merged = analysis.findings + by_path.pop(analysis.path, [])
        kept = _apply_suppressions(
            merged,
            analysis.suppressions,
            selected,
            analysis.path,
            analysis.anchors,
        )
        if "unused-suppression" in selected:
            kept.extend(analysis.malformed)
        findings.extend(kept)
    # Project findings anchored outside the linted Python files (e.g. a
    # README drift finding) have no suppression machinery — pass through.
    for rest in by_path.values():
        findings.extend(rest)

    return LintReport(
        findings=tuple(sorted(findings, key=Finding.sort_key)),
        files_checked=len(files),
        rule_names=tuple(rule.name for rule in rules),
    )
