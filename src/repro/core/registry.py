"""Name-based aggregator factory used by experiment configs and the CLI.

Keeps experiment configuration declarative: a config names a rule
("krum", "average", ...) plus keyword arguments, and the registry builds
the :class:`~repro.core.aggregator.Aggregator`.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.aggregator import Aggregator
from repro.exceptions import ConfigurationError

__all__ = [
    "make_aggregator",
    "available_aggregators",
    "register_aggregator",
    "aggregator_factory",
]

_REGISTRY: dict[str, Callable[..., Aggregator]] = {}


def register_aggregator(name: str, factory: Callable[..., Aggregator]) -> None:
    """Register a rule under ``name``; later registrations override."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"aggregator name must be a non-empty string, got {name!r}")
    _REGISTRY[name] = factory


def available_aggregators() -> list[str]:
    """Sorted list of registered rule names."""
    return sorted(_REGISTRY)


def aggregator_factory(name: str) -> Callable[..., Aggregator]:
    """The registered factory for ``name`` (for signature introspection)."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown aggregator {name!r}; available: {available_aggregators()}"
        )
    return _REGISTRY[name]


def make_aggregator(name: str, **kwargs: object) -> Aggregator:
    """Build a rule by registry name, e.g. ``make_aggregator("krum", f=2)``."""
    return aggregator_factory(name)(**kwargs)


def _register_builtins() -> None:
    # Imported lazily to avoid a circular import at package load.
    from repro.baselines.average import Average, WeightedAverage
    from repro.baselines.distance_based import ClosestToAll
    from repro.baselines.majority import MinimalDiameterSubset
    from repro.baselines.medians import (
        CoordinateWiseMedian,
        GeometricMedian,
        TrimmedMean,
    )
    from repro.core.bulyan import Bulyan
    from repro.core.krum import Krum, MultiKrum

    register_aggregator("krum", Krum)
    register_aggregator("multi-krum", MultiKrum)
    register_aggregator("bulyan", Bulyan)
    register_aggregator("average", Average)
    register_aggregator("weighted-average", WeightedAverage)
    register_aggregator("closest-to-all", ClosestToAll)
    register_aggregator("minimal-diameter", MinimalDiameterSubset)
    register_aggregator("coordinate-median", CoordinateWiseMedian)
    register_aggregator("trimmed-mean", TrimmedMean)
    register_aggregator("geometric-median", GeometricMedian)


_register_builtins()
