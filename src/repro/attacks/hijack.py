"""The constructive attack behind Lemma 3.1.

Lemma 3.1: for any linear choice function ``F = Σ λ_i V_i`` with non-zero
coefficients and any target ``U``, a single Byzantine worker can make F
output exactly U.  The construction: the Byzantine worker in slot b sends

    V_b = (U − Σ_{i ≠ b} λ_i V_i) / λ_b.

With f > 1 Byzantine workers the extra ones send zero vectors (any known
value works); the designated one compensates for everything.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.exceptions import ConfigurationError, DimensionMismatchError

__all__ = ["LinearHijackAttack"]


class LinearHijackAttack(Attack):
    """Force a linear rule to output the target vector ``U``.

    Parameters
    ----------
    target:
        The vector U the server should be forced to apply.  Passing the
        negative of the current gradient direction makes SGD *ascend*;
        passing a fixed point's pull makes SGD converge to an
        attacker-chosen parameter vector.
    weights:
        The rule's coefficients λ.  ``None`` (default) means uniform
        averaging, λ_i = 1/n.
    """

    def __init__(self, target: np.ndarray, weights: np.ndarray | None = None):
        self.target = np.asarray(target, dtype=np.float64)
        if self.target.ndim != 1:
            raise DimensionMismatchError(
                f"target must be a 1-d vector, got shape {self.target.shape}"
            )
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.ndim != 1:
                raise DimensionMismatchError(
                    f"weights must be 1-d, got shape {weights.shape}"
                )
            if np.any(weights == 0.0):
                raise ConfigurationError("hijack requires non-zero coefficients")
        self.weights = weights
        self.name = "linear-hijack"

    def craft(self, context: AttackContext) -> np.ndarray:
        if context.dimension != self.target.shape[0]:
            raise DimensionMismatchError(
                f"target has dimension {self.target.shape[0]}, context has "
                f"{context.dimension}"
            )
        n = context.num_workers
        if self.weights is None:
            weights = np.full(n, 1.0 / n)
        else:
            if len(self.weights) != n:
                raise DimensionMismatchError(
                    f"weights built for {len(self.weights)} workers, round has {n}"
                )
            weights = self.weights

        proposals = np.zeros((context.num_byzantine, context.dimension))
        # All Byzantine workers except the last send zeros; the last sends
        # the compensating vector of Lemma 3.1.
        designated = context.num_byzantine - 1
        designated_slot = int(context.byzantine_indices[designated])
        lam = weights[designated_slot]
        contribution = weights[context.honest_indices] @ context.honest_gradients
        proposals[designated] = (self.target - contribution) / lam
        return self._output(context, proposals)
