"""Procedural spambase substitute: 57 mixed-scale features, 2 classes.

The full paper's second workload is the UCI spambase dataset (4601 rows,
57 features: 48 word frequencies, 6 character frequencies, 3 capital-run
statistics).  This generator reproduces that *shape*: zero-inflated
frequency features whose activation patterns differ by class, plus
heavy-tailed (lognormal) run-length features — so the learned model sees
the same mixed feature scales and class-conditional structure.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["make_spambase_like", "NUM_FEATURES"]

NUM_WORD_FEATURES = 48
NUM_CHAR_FEATURES = 6
NUM_RUN_FEATURES = 3
NUM_FEATURES = NUM_WORD_FEATURES + NUM_CHAR_FEATURES + NUM_RUN_FEATURES


def make_spambase_like(
    num_samples: int,
    *,
    spam_fraction: float = 0.4,
    separation: float = 1.0,
    structure_seed: int = 0,
    seed: SeedLike = None,
) -> Dataset:
    """Generate a spambase-shaped binary dataset.

    ``separation`` scales how strongly the class-conditional activation
    probabilities differ (1.0 gives a task on which logistic regression
    reaches roughly 90 % accuracy, similar to real spambase).

    ``seed`` controls the *samples*; ``structure_seed`` controls which
    features carry the class signal.  Keeping the structure seed fixed
    while varying the sample seed produces fresh draws from the *same*
    distribution (e.g. independent train/test splits).
    """
    if num_samples < 2:
        raise ConfigurationError(f"num_samples must be >= 2, got {num_samples}")
    if not 0.0 < spam_fraction < 1.0:
        raise ConfigurationError(
            f"spam_fraction must be in (0, 1), got {spam_fraction}"
        )
    rng = as_generator(seed)
    labels = (rng.random(num_samples) < spam_fraction).astype(np.int64)

    # Word/char frequencies: zero-inflated exponentials.  A fixed random
    # subset of "spammy" features activates more often (and hotter) in
    # spam; a disjoint "hammy" subset activates more in non-spam.  The
    # subsets come from the structure seed so the distribution itself is
    # independent of the sampling seed.
    num_freq = NUM_WORD_FEATURES + NUM_CHAR_FEATURES
    feature_perm = as_generator(structure_seed).permutation(num_freq)
    spam_cues = feature_perm[: num_freq // 3]
    ham_cues = feature_perm[num_freq // 3 : 2 * num_freq // 3]

    base_activation = np.full(num_freq, 0.15)
    spam_activation = base_activation.copy()
    spam_activation[spam_cues] = np.clip(0.15 + 0.35 * separation, 0.0, 0.95)
    spam_activation[ham_cues] = np.clip(0.15 - 0.10 * separation, 0.01, 1.0)
    ham_activation = base_activation.copy()
    ham_activation[ham_cues] = np.clip(0.15 + 0.25 * separation, 0.0, 0.95)
    ham_activation[spam_cues] = np.clip(0.15 - 0.10 * separation, 0.01, 1.0)

    activation = np.where(labels[:, None] == 1, spam_activation, ham_activation)
    active = rng.random((num_samples, num_freq)) < activation
    magnitudes = rng.exponential(0.5, size=(num_samples, num_freq))
    freq_features = np.where(active, magnitudes, 0.0)

    # Capital-run statistics: lognormal, heavier tail for spam.
    run_mu = np.where(labels == 1, 1.2 + 0.4 * separation, 0.8)[:, None]
    run_features = rng.lognormal(
        mean=run_mu, sigma=0.8, size=(num_samples, NUM_RUN_FEATURES)
    )

    inputs = np.hstack([freq_features, run_features])
    return Dataset(inputs, labels, task="binary", num_classes=2, name="spambase-like")
