"""E9 — Figure 1: correct estimates cluster around ∇Q; Byzantine is arbitrary.

The paper's Figure 1 is an illustration; this bench renders it as
statistics: the distance distribution of correct proposals around the
true gradient (concentrated at ~√d·σ), the Byzantine proposal's distance
(arbitrary — here enormous), and which of them Krum picks.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.attacks.base import AttackContext
from repro.attacks.random_noise import GaussianAttack
from repro.core.krum import Krum
from repro.experiments.reporting import format_table
from repro.models.quadratic import QuadraticBowl

DIMENSION = 2  # Figure 1 is drawn in the plane
NUM_WORKERS = 12
F = 2
SIGMA = 0.3
TRIALS = 300


def bench_fig1_gradient_cloud_statistics(benchmark):
    def run():
        bowl = QuadraticBowl(DIMENSION, optimum=np.zeros(DIMENSION))
        x = np.array([3.0, -2.0])
        gradient = bowl.exact_gradient(x)
        estimator = bowl.as_estimator(SIGMA)
        attack = GaussianAttack(sigma=50.0)
        rng = np.random.default_rng(0)

        honest_dists, byz_dists, krum_dists, byz_selected = [], [], [], 0
        num_honest = NUM_WORKERS - F
        for trial in range(TRIALS):
            honest = np.stack(
                [estimator.estimate(x, rng) for _ in range(num_honest)]
            )
            context = AttackContext(
                round_index=trial,
                params=x,
                honest_gradients=honest,
                byzantine_indices=np.arange(num_honest, NUM_WORKERS),
                honest_indices=np.arange(num_honest),
                num_workers=NUM_WORKERS,
                rng=rng,
                true_gradient=gradient,
            )
            byzantine = attack.craft(context)
            stack = np.vstack([honest, byzantine])
            result = Krum(f=F).aggregate_detailed(stack)
            honest_dists.extend(np.linalg.norm(honest - gradient, axis=1))
            byz_dists.extend(np.linalg.norm(byzantine - gradient, axis=1))
            krum_dists.append(float(np.linalg.norm(result.vector - gradient)))
            if int(result.selected[0]) >= num_honest:
                byz_selected += 1
        return (
            np.asarray(honest_dists),
            np.asarray(byz_dists),
            np.asarray(krum_dists),
            byz_selected,
            gradient,
        )

    honest_dists, byz_dists, krum_dists, byz_selected, gradient = run_once(
        benchmark, run
    )
    emit(
        format_table(
            ["population", "mean ‖V − ∇Q‖", "p95", "max"],
            [
                ["correct workers", honest_dists.mean(), np.percentile(honest_dists, 95), honest_dists.max()],
                ["byzantine workers", byz_dists.mean(), np.percentile(byz_dists, 95), byz_dists.max()],
                ["krum output", krum_dists.mean(), np.percentile(krum_dists, 95), krum_dists.max()],
            ],
            title=(
                f"Figure 1 — estimate cloud around ∇Q (‖∇Q‖={np.linalg.norm(gradient):.2f}, "
                f"√d·σ={np.sqrt(DIMENSION) * SIGMA:.2f})"
            ),
        )
    )
    # Correct estimates concentrate at ~sqrt(d)*sigma from the gradient.
    assert honest_dists.mean() < 3 * np.sqrt(DIMENSION) * SIGMA
    # Byzantine proposals are arbitrary (far); Krum's output stays with
    # the correct cluster and never selects the Byzantine vector.
    assert byz_dists.mean() > 10 * honest_dists.mean()
    assert krum_dists.mean() < 3 * np.sqrt(DIMENSION) * SIGMA
    assert byz_selected == 0
