"""The gate: the shipped library must satisfy its own invariants.

This is the acceptance criterion for the linter — ``repro.lint`` with
every registered rule runs over all of ``src/repro`` and must report
zero findings.  A failure here means either a real invariant violation
slipped in (fix the code) or a rule regressed (fix the rule); the
assertion message prints the rendered findings so CI logs show which.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.lint import lint_paths

PACKAGE_ROOT = Path(repro.__file__).parent


def test_library_has_zero_findings():
    report = lint_paths([PACKAGE_ROOT])
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == (), f"repro-lint findings in src:\n{rendered}"


def test_gate_actually_scanned_the_library():
    # Guard the gate itself: if package discovery broke (moved tree,
    # empty glob), the zero-findings assertion would pass vacuously.
    report = lint_paths([PACKAGE_ROOT])
    assert report.files_checked >= 90
    assert "backend-purity" in report.rule_names
    assert "rng-discipline" in report.rule_names
    assert "error-taxonomy" in report.rule_names
    assert "stateful-attack-declaration" in report.rule_names
    assert "registry-factory-contract" in report.rule_names
    # The whole-program rules run in the same gate; their own
    # anti-vacuity guards (bad fixtures that must fire) live in
    # tests/lint/test_project_rules.py.
    assert "registry-drift" in report.rule_names
    assert "seeded-query-purity" in report.rule_names
    assert "rng-stream-order" in report.rule_names
    assert "loop-batched-pairing" in report.rule_names


def test_project_rules_are_not_vacuous_on_the_real_tree():
    # The purity and stream-order rules must actually be *reaching* the
    # real library: the purity walk must find the Topology/DelaySchedule
    # overrides, and the stream-order rule must see both frozen-layout
    # spawn sites.  A resolution regression that silently walked nothing
    # would keep the zero-findings gate green forever.
    import ast

    from repro.lint import ModuleContext, build_project_context
    from repro.lint.rules.rng_stream_order import FROZEN_STREAM_LAYOUTS
    from repro.lint.rules.seeded_query_purity import SeededQueryPurityRule

    modules = []
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        modules.append(
            ModuleContext(path=str(path), source=source, tree=ast.parse(source))
        )
    project = build_project_context(modules)
    roots = SeededQueryPurityRule()._root_keys(project)
    assert len(roots) >= 8  # 5 topologies + 3 nontrivial schedules at least
    assert any("neighbors" in key[1] for key in roots)
    assert any("staleness" in key[1] for key in roots)
    for suffix in FROZEN_STREAM_LAYOUTS:
        assert any(m.is_module(suffix) for m in modules), suffix
