"""Pluggable array backends for the batched kernel layer.

The batched aggregation kernels (:mod:`repro.core.batched` and the
primitives under them) are pure tensor programs; this package is the
seam that lets them run on more than one array library:

* :class:`ArrayBackend` — the abstract namespace kernels are allowed to
  use (``asarray``/``einsum``/``sort``/``partition``/``where``/...,
  dtype and device handles, an ``errstate`` equivalent);
* :class:`NumpyBackend` — the reference implementation, a pure
  delegation to numpy that anchors the engine's bit-for-bit
  loop/batched differential guarantee;
* ``"torch"`` — an import-guarded accelerator backend, parity-tested
  against numpy at float64 tolerance (requires the optional ``[torch]``
  dependency extra);
* a name-based registry mirroring the aggregator/attack/workload
  registries (``register_backend`` / ``available_backends`` /
  ``make_backend``) with the shared ``ConfigurationError`` taxonomy.

Selection is threaded end to end: ``run_grid(grid, backend="torch")``,
``BatchedSimulation(sims, backend=...)``,
``SGDExperimentConfig(backend=...)`` and the CLI's ``--backend`` flag
all resolve through :func:`resolve_backend`.
"""

from repro.backend.base import ArrayBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import (
    available_backends,
    backend_factory,
    backend_installed,
    default_backend,
    make_backend,
    register_backend,
    resolve_backend,
)

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "register_backend",
    "available_backends",
    "backend_factory",
    "backend_installed",
    "make_backend",
    "resolve_backend",
    "default_backend",
]
