"""Running experiments from declarative configs."""

from __future__ import annotations

from dataclasses import replace

from repro.attacks.registry import make_attack
from repro.backend import make_backend
from repro.core.registry import make_aggregator
from repro.data.dataset import Dataset
from repro.distributed.delays import make_delay_schedule
from repro.distributed.metrics import TrainingHistory
from repro.distributed.simulator import TrainingSimulation
from repro.engine.simulation import BatchedSimulation
from repro.exceptions import ConfigurationError
from repro.experiments.builders import build_dataset_simulation
from repro.experiments.config import SGDExperimentConfig
from repro.models.base import Model

__all__ = [
    "build_experiment_simulation",
    "run_experiment",
    "compare_aggregators",
]


def build_experiment_simulation(
    config: SGDExperimentConfig,
    model: Model,
    train: Dataset,
    *,
    eval_dataset: Dataset | None = None,
) -> TrainingSimulation:
    """Materialize one dataset experiment described by ``config``."""
    aggregator = make_aggregator(config.aggregator, **config.aggregator_kwargs)
    attack = make_attack(config.attack, config.attack_kwargs)
    delay_schedule = make_delay_schedule(
        config.delay_schedule, config.delay_kwargs
    )
    return build_dataset_simulation(
        model,
        train,
        aggregator=aggregator,
        num_workers=config.num_workers,
        num_byzantine=config.num_byzantine,
        attack=attack,
        batch_size=config.batch_size,
        learning_rate=config.learning_rate,
        lr_timescale=config.lr_timescale,
        eval_dataset=eval_dataset,
        byzantine_slots=config.byzantine_slots,
        partition=config.partition,
        dirichlet_alpha=config.dirichlet_alpha,
        max_staleness=config.max_staleness,
        delay_schedule=delay_schedule,
        halt_on_nonfinite=config.halt_on_nonfinite,
        seed=config.seed,
    )


def run_experiment(
    config: SGDExperimentConfig,
    model: Model,
    train: Dataset,
    *,
    eval_dataset: Dataset | None = None,
) -> TrainingHistory:
    """Run one dataset experiment described by ``config``."""
    simulation = build_experiment_simulation(
        config, model, train, eval_dataset=eval_dataset
    )
    return simulation.run(config.num_rounds, eval_every=config.eval_every)


def compare_aggregators(
    base_config: SGDExperimentConfig,
    aggregator_specs: dict[str, tuple[str, dict]],
    model_factory,
    train: Dataset,
    *,
    eval_dataset: Dataset | None = None,
    engine: str = "batched",
) -> dict[str, TrainingHistory]:
    """Run the same workload under several choice functions.

    ``aggregator_specs`` maps display labels to (registry name, kwargs).
    ``model_factory`` is a zero-argument callable returning a fresh model
    per run (model instances hold scratch network state).  All runs share
    the config's seed, so honest gradients are identical across rules —
    differences in the histories are attributable to the rules alone.

    ``engine`` selects the executor: ``"batched"`` (default) stacks every
    arm into one :class:`~repro.engine.BatchedSimulation` round loop so
    the rules aggregate through batched kernels; ``"loop"`` runs each arm
    on its own.  On the default numpy backend both produce identical
    histories — the batched executor is trajectory-preserving by
    construction.  ``base_config.backend`` (batched engine only) routes
    the kernels through that array backend.
    """
    if engine not in ("batched", "loop"):
        raise ConfigurationError(
            f"engine must be 'batched' or 'loop', got {engine!r}"
        )
    if engine == "loop" and base_config.backend is not None:
        raise ConfigurationError(
            "config backend selection applies to engine='batched' only; "
            "engine='loop' always executes the per-scenario numpy rules"
        )
    configs: dict[str, SGDExperimentConfig] = {
        label: replace(
            base_config, aggregator=name, aggregator_kwargs=kwargs
        )
        for label, (name, kwargs) in aggregator_specs.items()
    }
    simulations = {
        label: build_experiment_simulation(
            config, model_factory(), train, eval_dataset=eval_dataset
        )
        for label, config in configs.items()
    }
    if engine == "loop":
        return {
            label: sim.run(
                base_config.num_rounds, eval_every=base_config.eval_every
            )
            for label, sim in simulations.items()
        }
    backend = (
        make_backend(base_config.backend, base_config.backend_kwargs)
        if base_config.backend is not None
        else None
    )
    batched = BatchedSimulation(list(simulations.values()), backend=backend)
    histories = batched.run(
        base_config.num_rounds, eval_every=base_config.eval_every
    )
    return dict(zip(simulations.keys(), histories))
